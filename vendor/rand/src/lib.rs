//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements exactly the API surface the workspace uses: a seedable
//! deterministic generator ([`rngs::StdRng`]), integer/float range sampling
//! ([`Rng::gen_range`]), Bernoulli draws ([`Rng::gen_bool`]), and the
//! [`Distribution`] trait that `rand_distr` builds on.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — a different
//! stream than upstream `rand`'s StdRng (ChaCha12), but every consumer in
//! this workspace only relies on determinism per seed, not on a particular
//! stream.

#![warn(missing_docs)]

/// Core trait for random number generators: a source of uniform `u64`s plus
/// the derived sampling helpers the workspace uses.
pub trait Rng {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Samples uniformly from a half-open range, e.g. `rng.gen_range(0..n)`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.next_f64() < p
    }

    /// Samples a value from a [`Distribution`].
    fn sample<T, D: Distribution<T>>(&mut self, distribution: &D) -> T
    where
        Self: Sized,
    {
        distribution.sample(self)
    }
}

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A distribution that can be sampled with any [`Rng`].
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Ranges a value can be drawn from; implemented for the half-open integer
/// and float ranges the workspace uses.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                // Lemire's widening-multiply reduction: unbiased enough for
                // simulation workloads and branch-free.
                let value = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + value as $t
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let state = [next(), next(), next(), next()];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// The commonly imported traits, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Distribution, Rng, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u32 = rng.gen_range(5..5);
    }
}
