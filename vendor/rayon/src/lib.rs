//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `par_iter().map(..).collect()` subset the workspace uses, implemented
//! with `std::thread::scope` over contiguous chunks instead of a work-stealing
//! pool. Results are returned in input order, matching rayon's indexed
//! parallel iterators.
//!
//! Threads are real: on a multi-core host a batch fans out across all
//! available cores (or `RAYON_NUM_THREADS` when set). Small inputs skip the
//! thread machinery entirely so the parallel path never loses to the
//! sequential one on trivial batches.

#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-internal thread-count override (0 = none). An extension over
/// upstream rayon: benchmark sweeps change the worker count mid-process
/// through this atomic instead of mutating the `RAYON_NUM_THREADS`
/// environment variable, which is undefined behavior to write while other
/// threads may be reading the environment.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent parallel operations in this
/// process (`None` clears the override). Takes precedence over
/// `RAYON_NUM_THREADS`.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

/// Number of worker threads a parallel operation will use: the process
/// override from [`set_thread_override`] when set, else the
/// `RAYON_NUM_THREADS` environment variable when set to a positive integer,
/// otherwise the number of available CPUs.
pub fn current_num_threads() -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Minimum number of items per worker before fanning out is worth it (only
/// applied when the thread count is auto-detected; an explicit
/// `RAYON_NUM_THREADS` is honoured exactly, capped at the item count).
const MIN_CHUNK: usize = 16;

/// Number of workers a parallel operation over `items` elements will use.
fn thread_plan(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden.min(items);
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n.min(items);
            }
        }
    }
    let available = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    available.min(items / MIN_CHUNK).max(1)
}

/// Maps `f` over `items` on up to [`current_num_threads`] scoped threads,
/// preserving input order in the result.
fn parallel_map<'data, T: Sync, U: Send, F>(items: &'data [T], f: F) -> Vec<U>
where
    F: Fn(&'data T) -> U + Sync,
{
    let threads = thread_plan(items.len());
    if threads <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunk_results: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(|| chunk.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        for handle in handles {
            chunk_results.push(handle.join().expect("parallel map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        out.extend(chunk);
    }
    out
}

/// Parallel iterator machinery (the subset of `rayon::iter` in use).
pub mod iter {
    use super::parallel_map;

    /// Conversion into a borrowing parallel iterator, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: Sync + 'data;

        /// Returns a parallel iterator over borrowed items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// A borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps every item through `f` in parallel.
        pub fn map<U, F>(self, f: F) -> ParMap<'data, T, F>
        where
            U: Send,
            F: Fn(&'data T) -> U + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// A mapped parallel iterator, ready to collect.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Executes the map in parallel and collects the results in input
        /// order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(&'data T) -> U + Sync,
            C: FromIterator<U>,
        {
            parallel_map(self.items, self.f).into_iter().collect()
        }
    }
}

/// The commonly imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), items.len());
        for (i, &d) in doubled.iter().enumerate() {
            assert_eq!(d, items[i] * 2);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn slices_and_vecs_are_both_iterable() {
        let v = vec![1u32, 2, 3];
        let s: &[u32] = &v;
        let from_vec: Vec<u32> = v.par_iter().map(|&x| x).collect();
        let from_slice: Vec<u32> = s.par_iter().map(|&x| x).collect();
        assert_eq!(from_vec, from_slice);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn thread_override_takes_precedence_and_clears() {
        // Serialize against any other test touching the global override.
        super::set_thread_override(Some(3));
        assert_eq!(super::current_num_threads(), 3);
        // Parallel execution under the override still preserves order.
        let items: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = items.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..101).collect::<Vec<u32>>());
        super::set_thread_override(None);
        assert!(super::current_num_threads() >= 1);
    }
}
