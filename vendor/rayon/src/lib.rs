//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the `par_iter().map(..).collect()` subset the workspace uses, implemented
//! with `std::thread::scope` over contiguous chunks instead of a work-stealing
//! pool. Results are returned in input order, matching rayon's indexed
//! parallel iterators.
//!
//! Threads are real: on a multi-core host a batch fans out across all
//! available cores (or `RAYON_NUM_THREADS` when set). Small inputs skip the
//! thread machinery entirely so the parallel path never loses to the
//! sequential one on trivial batches.

#![warn(missing_docs)]

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-internal thread-count override (0 = none). An extension over
/// upstream rayon: benchmark sweeps change the worker count mid-process
/// through this atomic instead of mutating the `RAYON_NUM_THREADS`
/// environment variable, which is undefined behavior to write while other
/// threads may be reading the environment.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for subsequent parallel operations in this
/// process (`None` clears the override). Takes precedence over
/// `RAYON_NUM_THREADS`.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.store(threads.unwrap_or(0), Ordering::Relaxed);
}

thread_local! {
    /// Per-thread worker-count override installed by [`ThreadPool::install`]
    /// (0 = none). Scoped to the calling thread so concurrent pools — e.g.
    /// two tests sweeping different thread counts — do not race on a global.
    static LOCAL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Builds a [`ThreadPool`] with an explicit worker count, mirroring the
/// upstream `rayon::ThreadPoolBuilder` API surface the workspace uses.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type returned by [`ThreadPoolBuilder::build`]. The offline stand-in
/// cannot actually fail to build a pool; the type exists for API parity.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (auto-detected) worker count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count (0 = auto-detect).
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Builds the pool. Never fails in the stand-in; the `Result` mirrors
    /// upstream rayon.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that pins the worker count of parallel operations run inside
/// [`ThreadPool::install`]. Unlike upstream rayon there are no persistent
/// worker threads: the stand-in spawns scoped threads per operation, so the
/// pool only carries the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's worker count installed for every parallel
    /// operation started on the current thread, restoring the previous
    /// setting afterwards (also on panic).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                LOCAL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(LOCAL_THREADS.with(|c| c.get()));
        LOCAL_THREADS.with(|c| c.set(self.num_threads));
        op()
    }

    /// The worker count parallel operations inside [`ThreadPool::install`]
    /// will use.
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            current_num_threads()
        }
    }
}

/// Number of worker threads a parallel operation will use: the calling
/// thread's [`ThreadPool::install`] scope when inside one, else the process
/// override from [`set_thread_override`] when set, else the
/// `RAYON_NUM_THREADS` environment variable when set to a positive integer,
/// otherwise the number of available CPUs.
pub fn current_num_threads() -> usize {
    let local = LOCAL_THREADS.with(|c| c.get());
    if local > 0 {
        return local;
    }
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden;
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Minimum number of items per worker before fanning out is worth it (only
/// applied when the thread count is auto-detected; an explicit
/// `RAYON_NUM_THREADS` is honoured exactly, capped at the item count).
const MIN_CHUNK: usize = 16;

/// Number of workers a parallel operation over `items` elements will use.
fn thread_plan(items: usize) -> usize {
    if items <= 1 {
        return 1;
    }
    let local = LOCAL_THREADS.with(|c| c.get());
    if local > 0 {
        return local.min(items);
    }
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if overridden > 0 {
        return overridden.min(items);
    }
    if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = value.parse::<usize>() {
            if n > 0 {
                return n.min(items);
            }
        }
    }
    let available = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    available.min(items / MIN_CHUNK).max(1)
}

/// Maps `f` over `items` on up to [`current_num_threads`] scoped threads,
/// preserving input order in the result. Stateless special case of
/// [`parallel_map_init`], so the scope/chunk/join machinery lives once.
fn parallel_map<'data, T: Sync, U: Send, F>(items: &'data [T], f: F) -> Vec<U>
where
    F: Fn(&'data T) -> U + Sync,
{
    parallel_map_init(items, || (), |(), item| f(item))
}

/// Maps `f` over `items` like [`parallel_map`], but gives every worker thread
/// a mutable state value created by `init` — the stand-in for rayon's
/// `map_init`. The sequential fallback creates the state once.
fn parallel_map_init<'data, T, S, U, INIT, F>(items: &'data [T], init: INIT, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    INIT: Fn() -> S + Sync,
    F: Fn(&mut S, &'data T) -> U + Sync,
{
    let threads = thread_plan(items.len());
    if threads <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk_len = items.len().div_ceil(threads);
    let mut chunk_results: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk_len)
            .map(|chunk| {
                scope.spawn(|| {
                    let mut state = init();
                    chunk
                        .iter()
                        .map(|item| f(&mut state, item))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for handle in handles {
            chunk_results.push(handle.join().expect("parallel map worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for chunk in chunk_results {
        out.extend(chunk);
    }
    out
}

/// Parallel iterator machinery (the subset of `rayon::iter` in use).
pub mod iter {
    use super::{parallel_map, parallel_map_init};

    /// Conversion into a borrowing parallel iterator, mirroring
    /// `rayon::iter::IntoParallelRefIterator`.
    pub trait IntoParallelRefIterator<'data> {
        /// The borrowed item type.
        type Item: Sync + 'data;

        /// Returns a parallel iterator over borrowed items.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;

        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// A borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps every item through `f` in parallel.
        pub fn map<U, F>(self, f: F) -> ParMap<'data, T, F>
        where
            U: Send,
            F: Fn(&'data T) -> U + Sync,
        {
            ParMap {
                items: self.items,
                f,
            }
        }

        /// Maps every item through `f` in parallel, giving each worker thread
        /// a mutable state created by `init` (rayon's `map_init`): reusable
        /// per-thread scratch without per-item allocation.
        pub fn map_init<S, U, INIT, F>(self, init: INIT, f: F) -> ParMapInit<'data, T, INIT, F>
        where
            U: Send,
            INIT: Fn() -> S + Sync,
            F: Fn(&mut S, &'data T) -> U + Sync,
        {
            ParMapInit {
                items: self.items,
                init,
                f,
            }
        }
    }

    /// A mapped parallel iterator, ready to collect.
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Executes the map in parallel and collects the results in input
        /// order.
        pub fn collect<C, U>(self) -> C
        where
            U: Send,
            F: Fn(&'data T) -> U + Sync,
            C: FromIterator<U>,
        {
            parallel_map(self.items, self.f).into_iter().collect()
        }
    }

    /// A mapped parallel iterator with per-thread state, ready to collect.
    pub struct ParMapInit<'data, T, INIT, F> {
        items: &'data [T],
        init: INIT,
        f: F,
    }

    impl<'data, T: Sync, INIT, F> ParMapInit<'data, T, INIT, F> {
        /// Executes the map in parallel and collects the results in input
        /// order.
        pub fn collect<C, S, U>(self) -> C
        where
            U: Send,
            INIT: Fn() -> S + Sync,
            F: Fn(&mut S, &'data T) -> U + Sync,
            C: FromIterator<U>,
        {
            parallel_map_init(self.items, self.init, self.f)
                .into_iter()
                .collect()
        }
    }
}

/// The commonly imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), items.len());
        for (i, &d) in doubled.iter().enumerate() {
            assert_eq!(d, items[i] * 2);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [7u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn slices_and_vecs_are_both_iterable() {
        let v = vec![1u32, 2, 3];
        let s: &[u32] = &v;
        let from_vec: Vec<u32> = v.par_iter().map(|&x| x).collect();
        let from_slice: Vec<u32> = s.par_iter().map(|&x| x).collect();
        assert_eq!(from_vec, from_slice);
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn map_init_reuses_per_thread_state_and_preserves_order() {
        let items: Vec<u32> = (0..1_000).collect();
        let out: Vec<u32> = items
            .par_iter()
            .map_init(
                || 0u32,
                |state, &x| {
                    *state += 1;
                    x * 2
                },
            )
            .collect();
        assert_eq!(out, (0..1_000).map(|x| x * 2).collect::<Vec<u32>>());
    }

    #[test]
    fn thread_pool_install_pins_count_and_restores() {
        let pool = super::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let before = super::current_num_threads();
        let (inside, out) = pool.install(|| {
            let items: Vec<u32> = (0..100).collect();
            let out: Vec<u32> = items.par_iter().map(|&x| x + 1).collect();
            (super::current_num_threads(), out)
        });
        assert_eq!(inside, 3);
        assert_eq!(out, (1..101).collect::<Vec<u32>>());
        assert_eq!(super::current_num_threads(), before);
    }

    #[test]
    fn nested_installs_restore_outer_scope() {
        let outer = super::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let inner = super::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        outer.install(|| {
            assert_eq!(super::current_num_threads(), 4);
            inner.install(|| assert_eq!(super::current_num_threads(), 2));
            assert_eq!(super::current_num_threads(), 4);
        });
    }

    #[test]
    fn thread_override_takes_precedence_and_clears() {
        // Serialize against any other test touching the global override.
        super::set_thread_override(Some(3));
        assert_eq!(super::current_num_threads(), 3);
        // Parallel execution under the override still preserves order.
        let items: Vec<u32> = (0..100).collect();
        let out: Vec<u32> = items.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, (1..101).collect::<Vec<u32>>());
        super::set_thread_override(None);
        assert!(super::current_num_threads() >= 1);
    }
}
