//! Offline stand-in for the `rand_distr` crate.
//!
//! Provides the [`Zipf`] distribution the graph generators use for label
//! assignment. Upstream `rand_distr` samples Zipf by rejection; the label
//! alphabets in this workspace are tiny (≤ 50 symbols), so exact inverse-CDF
//! sampling over a precomputed table is both simpler and faster here.

#![warn(missing_docs)]

pub use rand::Distribution;
use rand::Rng;

/// Error raised for invalid distribution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZipfError(&'static str);

impl core::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid Zipf parameters: {}", self.0)
    }
}

impl std::error::Error for ZipfError {}

/// The Zipf distribution over ranks `1..=n`: rank `i` has probability
/// proportional to `1 / i^s`. Sampling returns the rank as `f64`, matching
/// the upstream crate's API.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative probabilities, `cdf[i]` = P(rank <= i + 1).
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s`.
    pub fn new(n: u64, s: f64) -> Result<Self, ZipfError> {
        if n == 0 {
            return Err(ZipfError("n must be at least 1"));
        }
        if !(s.is_finite() && s >= 0.0) {
            return Err(ZipfError("exponent must be finite and non-negative"));
        }
        let weights: Vec<f64> = (1..=n).map(|rank| (rank as f64).powf(-s)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = rng.next_f64();
        // First rank whose cumulative probability exceeds the draw.
        let idx = self.cdf.partition_point(|&c| c <= u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn ranks_stay_in_bounds() {
        let zipf = Zipf::new(8, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let rank = zipf.sample(&mut rng);
            assert!((1.0..=8.0).contains(&rank));
        }
    }

    #[test]
    fn exponent_two_mass_is_front_loaded() {
        // For s = 2 over 8 ranks, P(rank = 1) = 1 / H(8, 2) ≈ 0.645.
        let zipf = Zipf::new(8, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let ones = (0..n).filter(|_| zipf.sample(&mut rng) == 1.0).count();
        let rate = ones as f64 / n as f64;
        assert!((rate - 0.645).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Zipf::new(0, 2.0).is_err());
        assert!(Zipf::new(5, f64::NAN).is_err());
        assert!(Zipf::new(5, -1.0).is_err());
    }

    #[test]
    fn single_rank_always_returns_one() {
        let zipf = Zipf::new(1, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1.0);
        }
    }
}
