//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a simplified serialization framework with the same spelling as serde:
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! (via the vendored `serde_derive` proc macro, which honours
//! `#[serde(skip)]`), and impls for the std types the workspace serializes.
//!
//! Instead of serde's visitor architecture, values round-trip through a
//! self-describing [`Value`] tree — the natural model for the JSON-only
//! usage in this workspace. The vendored `serde_json` crate renders and
//! parses that tree.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;
use std::time::Duration;

/// A self-describing serialized value (the data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    UInt(u64),
    /// A negative integer.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value, if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of a sequence value, if this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(message: impl fmt::Display) -> Self {
        Error {
            message: message.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the data model.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Looks up and deserializes a named field of a map — used by the derive
/// macro's generated code.
pub fn map_field<T: Deserialize>(
    entries: &[(String, Value)],
    name: &str,
    type_name: &str,
) -> Result<T, Error> {
    let value = entries
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| value)
        .ok_or_else(|| Error::custom(format!("missing field `{name}` for {type_name}")))?;
    T::from_value(value)
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::UInt(v as u64)
                } else {
                    Value::Int(v)
                }
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i64 = match value {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u).map_err(|_| {
                        Error::custom(format!("integer {u} out of i64 range"))
                    })?,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, found {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(format!(
                        "integer {raw} out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    Value::Int(i) => Ok(*i as $t),
                    other => Err(Error::custom(format!(
                        "expected number, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_owned())
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom(format!("expected sequence, found {value:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected a 2-element sequence"))?;
        if seq.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2 elements, found {}",
                seq.len()
            )));
        }
        Ok((A::from_value(&seq[0])?, B::from_value(&seq[1])?))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        // Deterministic output independent of hash order.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected a map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_owned(), Value::UInt(self.as_secs())),
            ("nanos".to_owned(), Value::UInt(self.subsec_nanos() as u64)),
        ])
    }
}

impl Deserialize for Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::custom("expected a {secs, nanos} map for Duration"))?;
        let secs: u64 = map_field(entries, "secs", "Duration")?;
        let nanos: u32 = map_field(entries, "nanos", "Duration")?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.25f64.to_value()).unwrap(), 1.25);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), None);
        let some = Some(9u32);
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        let pair = (3u32, "x".to_string());
        assert_eq!(<(u32, String)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(7, 123_456_789);
        assert_eq!(Duration::from_value(&d.to_value()).unwrap(), d);
    }

    #[test]
    fn type_mismatches_error() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(999)).is_err());
    }
}
