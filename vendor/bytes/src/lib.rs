//! Offline stand-in for the `bytes` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the handful of external crates the workspace relies on are vendored as
//! minimal, dependency-free reimplementations of exactly the API surface the
//! workspace uses. This crate covers the little-endian cursor reading and
//! appending that `rlc-core` uses for its binary index format: [`Buf`] over
//! `&[u8]` and [`BufMut`] over `Vec<u8>`.

#![warn(missing_docs)]

/// Read side of a byte cursor. Implemented for `&[u8]`; every `get_*` call
/// consumes bytes from the front.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Consumes and returns one byte.
    ///
    /// # Panics
    ///
    /// Panics when no byte remains (as the real `bytes` crate does).
    fn get_u8(&mut self) -> u8;

    /// Consumes and returns a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Consumes and returns a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes and returns a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let (head, rest) = self.split_at(1);
        *self = rest;
        head[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes([head[0], head[1]])
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes([head[0], head[1], head[2], head[3]])
    }

    fn get_u64_le(&mut self) -> u64 {
        let (head, rest) = self.split_at(8);
        *self = rest;
        u64::from_le_bytes([
            head[0], head[1], head[2], head[3], head[4], head[5], head[6], head[7],
        ])
    }
}

/// Write side of a byte buffer. Implemented for `Vec<u8>`; every `put_*`
/// call appends.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, value: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, value: u16);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, value: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, value: u64);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, value: u8) {
        self.push(value);
    }

    fn put_u16_le(&mut self, value: u16) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u32_le(&mut self, value: u32) {
        self.extend_from_slice(&value.to_le_bytes());
    }

    fn put_u64_le(&mut self, value: u64) {
        self.extend_from_slice(&value.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(0xAB);
        buf.put_u16_le(0x1234);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        let mut cursor: &[u8] = &buf;
        assert_eq!(cursor.remaining(), 15);
        assert_eq!(cursor.get_u8(), 0xAB);
        assert_eq!(cursor.get_u16_le(), 0x1234);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_past_the_end_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
