//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the vendored `serde` data model ([`serde::Value`]) as JSON text
//! and parses JSON text back, providing the [`to_string`] / [`from_str`]
//! pair the workspace uses for persistence round trips. Floats are printed
//! with Rust's shortest round-trip formatting, so `to_string` → `from_str`
//! reproduces every finite `f64` exactly.

#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("JSON cannot represent NaN or infinity"));
            }
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected character {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or ']' in array, found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected ',' or '}}' in object, found {other:?}"
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(byte) = self.peek() else {
                return Err(Error::custom("unterminated string"));
            };
            match byte {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(escape) = self.peek() else {
                        return Err(Error::custom("unterminated escape"));
                    };
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::custom("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "invalid escape character {:?}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked byte implies a char");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::custom("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::custom("invalid unicode escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid unicode escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(byte) = self.peek() {
            match byte {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        } else if let Some(negative) = text.strip_prefix('-') {
            negative
                .parse::<u64>()
                .ok()
                .and_then(|u| i64::try_from(u).ok())
                .map(|i| Value::Int(-i))
                .ok_or_else(|| Error::custom(format!("invalid number {text:?}")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom(format!("invalid number {text:?}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(from_str::<bool>("true").unwrap());
        let pi = std::f64::consts::PI;
        assert_eq!(from_str::<f64>(&to_string(&pi).unwrap()).unwrap(), pi);
    }

    #[test]
    fn strings_escape_and_round_trip() {
        let tricky = "a\"b\\c\nd\te\u{1F600}";
        let json = to_string(&tricky.to_string()).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), tricky);
        assert_eq!(from_str::<String>(r#""A😀""#).unwrap(), "A😀");
    }

    #[test]
    fn sequences_and_options_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        assert_eq!(to_string(&Option::<u32>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>(" 7 ").unwrap(), Some(7));
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v: Vec<u32> = from_str(" [ 1 , 2 ,\n3 ] ").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("42 tail").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
