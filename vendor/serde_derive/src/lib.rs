//! Offline stand-in for the `serde_derive` crate.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for the
//! vendored `serde` data model without depending on `syn`/`quote`: the item
//! is parsed directly from the `proc_macro` token stream and the generated
//! impl is emitted as source text.
//!
//! Supported shapes — exactly what this workspace derives:
//!
//! * named-field structs, honouring `#[serde(skip)]` (skipped fields are not
//!   serialized and are reconstructed with `Default::default()`);
//! * tuple structs (newtype structs serialize as their inner value, wider
//!   tuples as a sequence);
//! * unit structs;
//! * enums with unit variants (serialized as the variant name), single- and
//!   multi-payload tuple variants, and struct variants (externally tagged,
//!   as upstream serde does).
//!
//! Generics are not supported; the workspace derives only on concrete types.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed named field.
struct Field {
    name: String,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    payload: Payload,
}

enum Payload {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(message) => compile_error(&message),
    }
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_deserialize(&item)
            .parse()
            .expect("generated code parses"),
        Err(message) => compile_error(&message),
    }
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});")
        .parse()
        .expect("error macro parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i)?;
    let name = expect_ident(&tokens, &mut i)?;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive: generic type {name} is not supported"
        ));
    }
    match keyword.as_str() {
        "struct" => parse_struct(name, &tokens, i),
        "enum" => parse_enum(name, &tokens, i),
        other => Err(format!(
            "serde derive: expected struct or enum, found {other}"
        )),
    }
}

fn parse_struct(name: String, tokens: &[TokenTree], i: usize) -> Result<Item, String> {
    match tokens.get(i) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
            let fields = parse_named_fields(group.stream())?;
            Ok(Item::NamedStruct { name, fields })
        }
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
            let arity = count_tuple_fields(group.stream());
            Ok(Item::TupleStruct { name, arity })
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
        other => Err(format!(
            "serde derive: unexpected token {other:?} in struct {name}"
        )),
    }
}

fn parse_enum(name: String, tokens: &[TokenTree], i: usize) -> Result<Item, String> {
    let group = match tokens.get(i) {
        Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => group,
        other => return Err(format!("serde derive: expected enum body, found {other:?}")),
    };
    let body: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut j = 0;
    while j < body.len() {
        skip_attributes(&body, &mut j);
        if j >= body.len() {
            break;
        }
        let variant_name = expect_ident(&body, &mut j)?;
        let payload = match body.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                j += 1;
                Payload::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                j += 1;
                Payload::Struct(parse_named_fields(g.stream())?)
            }
            _ => Payload::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while j < body.len() {
            if matches!(&body[j], TokenTree::Punct(p) if p.as_char() == ',') {
                j += 1;
                break;
            }
            j += 1;
        }
        variants.push(Variant {
            name: variant_name,
            payload,
        });
    }
    Ok(Item::Enum { name, variants })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let attrs = skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i)?;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde derive: expected `:` after field {name}, found {other:?}"
                ))
            }
        }
        // Consume the type up to the next comma at angle-bracket depth zero.
        let mut depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        let skip = attrs.iter().any(|a| is_serde_skip(a));
        fields.push(Field { name, skip });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth: i32 = 0;
    let mut count = 1;
    for token in &tokens {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

/// Advances past `#[...]` attribute groups, returning their normalized
/// content strings (whitespace stripped), e.g. `serde(skip)`.
fn skip_attributes(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut attrs = Vec::new();
    while *i + 1 < tokens.len() {
        let is_hash = matches!(&tokens[*i], TokenTree::Punct(p) if p.as_char() == '#');
        let group = match (&is_hash, &tokens[*i + 1]) {
            (true, TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
            _ => break,
        };
        let normalized: String = group
            .stream()
            .to_string()
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        attrs.push(normalized);
        *i += 2;
    }
    attrs
}

fn is_serde_skip(normalized_attr: &str) -> bool {
    normalized_attr
        .strip_prefix("serde(")
        .and_then(|rest| rest.strip_suffix(')'))
        .is_some_and(|inner| inner.split(',').any(|part| part == "skip"))
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(&tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> Result<String, String> {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            Ok(id.to_string())
        }
        other => Err(format!(
            "serde derive: expected identifier, found {other:?}"
        )),
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn generate_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "entries.push(({n:?}.to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = field.name
                ));
            }
            (
                name,
                format!(
                    "let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                     {pushes}::serde::Value::Map(entries)"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => {
            (name, "::serde::Serialize::to_value(&self.0)".to_string())
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            (
                name,
                format!("::serde::Value::Seq(vec![{}])", items.join(", ")),
            )
        }
        Item::UnitStruct { name } => (name, "::serde::Value::Null".to_string()),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.payload {
                    Payload::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string()),\n"
                    )),
                    Payload::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(f0) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Payload::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                             ::serde::Value::Seq(vec![{values}]))]),\n",
                            binds = binders.join(", "),
                            values = values.join(", "),
                        ));
                    }
                    Payload::Struct(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "({n:?}.to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![({v:?}.to_string(), \
                             ::serde::Value::Map(vec![{pushes}]))]),\n",
                            binds = binders.join(", "),
                            pushes = pushes.join(", "),
                        ));
                    }
                }
            }
            (name, format!("match self {{\n{arms}}}"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn generate_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for field in fields {
                if field.skip {
                    inits.push_str(&format!(
                        "{n}: ::core::default::Default::default(),\n",
                        n = field.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::map_field(entries, {n:?}, {name:?})?,\n",
                        n = field.name
                    ));
                }
            }
            (
                name,
                format!(
                    "let entries = value.as_map().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected a map for \", {name:?})))?;\n\
                     Ok({name} {{\n{inits}}})"
                ),
            )
        }
        Item::TupleStruct { name, arity: 1 } => (
            name,
            format!("Ok({name}(::serde::Deserialize::from_value(value)?))"),
        ),
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                .collect();
            (
                name,
                format!(
                    "let seq = value.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(concat!(\"expected a sequence for \", {name:?})))?;\n\
                     if seq.len() != {arity} {{\n\
                     return Err(::serde::Error::custom(concat!(\"wrong arity for \", {name:?})));\n\
                     }}\n\
                     Ok({name}({items}))",
                    items = items.join(", ")
                ),
            )
        }
        Item::UnitStruct { name } => (name, format!("Ok({name})")),
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.payload {
                    Payload::Unit => {
                        unit_arms.push_str(&format!("{v:?} => Ok({name}::{v}),\n"));
                    }
                    Payload::Tuple(1) => {
                        payload_arms.push_str(&format!(
                            "{v:?} => Ok({name}::{v}(::serde::Deserialize::from_value(payload)?)),\n"
                        ));
                    }
                    Payload::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                            .collect();
                        payload_arms.push_str(&format!(
                            "{v:?} => {{\n\
                             let seq = payload.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected a sequence payload\"))?;\n\
                             if seq.len() != {arity} {{\n\
                             return Err(::serde::Error::custom(\"wrong payload arity\"));\n\
                             }}\n\
                             Ok({name}::{v}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    Payload::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{n}: ::core::default::Default::default()", n = f.name)
                                } else {
                                    format!(
                                        "{n}: ::serde::map_field(entries, {n:?}, {name:?})?",
                                        n = f.name
                                    )
                                }
                            })
                            .collect();
                        payload_arms.push_str(&format!(
                            "{v:?} => {{\n\
                             let entries = payload.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected a map payload\"))?;\n\
                             Ok({name}::{v} {{ {inits} }})\n\
                             }}\n",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match value {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                     {unit_arms}\
                     other => Err(::serde::Error::custom(format!(\
                     \"unknown variant {{other}} for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(outer) if outer.len() == 1 => {{\n\
                     let (tag, payload) = &outer[0];\n\
                     let _ = payload;\n\
                     match tag.as_str() {{\n\
                     {payload_arms}\
                     other => Err(::serde::Error::custom(format!(\
                     \"unknown variant {{other}} for {name}\"))),\n\
                     }}\n\
                     }},\n\
                     other => Err(::serde::Error::custom(format!(\
                     \"expected an enum value for {name}, found {{other:?}}\"))),\n\
                     }}"
                ),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}
