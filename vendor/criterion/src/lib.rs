//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! a minimal wall-clock benchmark harness with the same API surface the
//! workspace's benches use: [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], benchmark groups with `sample_size` /
//! `warm_up_time` / `measurement_time`, `bench_function`, `bench_with_input`
//! and [`BenchmarkId`]. It reports the median, mean, and min iteration time
//! per benchmark on standard output — no statistics engine, no HTML reports.
//!
//! When invoked with `--test` (as `cargo test --benches` does), every
//! benchmark runs exactly once so the suite acts as a smoke test.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter only.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        run_benchmark(
            &id.to_string(),
            10,
            Duration::from_millis(300),
            Duration::from_secs(1),
            test_mode,
            f,
        );
        self
    }
}

/// A group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Sets the warm-up duration.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up_time = duration;
        self
    }

    /// Sets the measurement duration budget.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            self.criterion.test_mode,
            f,
        );
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one wall-clock sample per run.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        let warm_up_deadline = Instant::now() + self.warm_up_time;
        while Instant::now() < warm_up_deadline {
            black_box(routine());
        }
        let measurement_deadline = Instant::now() + self.measurement_time;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= measurement_deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        warm_up_time,
        measurement_time,
        test_mode,
    };
    f(&mut bencher);
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    println!(
        "  {label}: median {median:?}, mean {mean:?}, min {:?} ({} samples)",
        samples[0],
        samples.len()
    );
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
