//! End-to-end benchmark on a synthetic social-network-like graph: generate a
//! Barabási–Albert graph, build the RLC index, generate a verified query
//! workload, and compare the index against online traversals — a miniature
//! version of the paper's Fig. 3 experiment.
//!
//! Run with: `cargo run --release --example synthetic_benchmark`

use rlc::graph::generate::{barabasi_albert, SyntheticConfig};
use rlc::prelude::*;
use std::time::Instant;

fn main() {
    // A 50K-vertex preferential-attachment graph with 8 Zipfian labels —
    // about the shape of the paper's smaller real-world datasets.
    let config = SyntheticConfig::new(50_000, 4.0, 8, 42);
    let graph = barabasi_albert(&config);
    println!(
        "generated BA graph: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // Build the index (recursive k = 2, the practical value observed in
    // real-world query logs).
    let (index, build_stats) = build_index(&graph, &BuildConfig::new(2));
    println!(
        "built RLC index in {:.2?}: {} entries, {:.1} MB ({} attempts pruned by PR1/PR2)",
        build_stats.duration,
        index.entry_count(),
        index.stats().memory_megabytes(),
        build_stats.pruned_pr1 + build_stats.pruned_pr2,
    );

    // A verified workload of 200 true and 200 false queries with 2-label
    // constraints (the paper uses 1000 + 1000).
    let queries = generate_query_set(&graph, &QueryGenConfig::small(200, 200, 2, 7));
    println!("generated {} verified queries", queries.len());

    // Evaluate with the index.
    let start = Instant::now();
    let mut index_hits = 0usize;
    for (q, expected) in queries.iter() {
        let got = index.query(q);
        assert_eq!(got, expected);
        index_hits += got as usize;
    }
    let index_time = start.elapsed();

    // Evaluate with bidirectional online search (the strongest online
    // baseline of the paper).
    let start = Instant::now();
    let mut bibfs_hits = 0usize;
    for (q, expected) in queries.iter() {
        let got = bibfs_query(&graph, q);
        assert_eq!(got, expected);
        bibfs_hits += got as usize;
    }
    let bibfs_time = start.elapsed();
    assert_eq!(index_hits, bibfs_hits);

    println!("RLC index : {index_time:.2?} for {} queries", queries.len());
    println!("BiBFS     : {bibfs_time:.2?} for {} queries", queries.len());
    println!(
        "speed-up  : {:.0}x",
        bibfs_time.as_secs_f64() / index_time.as_secs_f64().max(1e-9)
    );
}
