//! End-to-end benchmark on a synthetic social-network-like graph: generate a
//! Barabási–Albert graph, build the RLC index, generate a verified query
//! workload, and compare the index against online traversals through the
//! uniform `ReachabilityEngine` interface — a miniature version of the
//! paper's Fig. 3 experiment, plus the rayon-parallel batch path.
//!
//! Run with: `cargo run --release --example synthetic_benchmark`

use rlc::graph::generate::{barabasi_albert, SyntheticConfig};
use rlc::prelude::*;
use std::time::Instant;

fn main() {
    // A 50K-vertex preferential-attachment graph with 8 Zipfian labels —
    // about the shape of the paper's smaller real-world datasets.
    let config = SyntheticConfig::new(50_000, 4.0, 8, 42);
    let graph = barabasi_albert(&config);
    println!(
        "generated BA graph: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // Build the index (recursive k = 2, the practical value observed in
    // real-world query logs) with the block-parallel build — byte-identical
    // to the sequential build, but fanned out across cores.
    let config = BuildConfig::new(2).with_parallel();
    let (index, build_stats) = build_index(&graph, &config);
    println!(
        "built RLC index in {:.2?} on {} threads: {} entries, {:.1} MB ({} attempts pruned by PR1/PR2)",
        build_stats.duration,
        rlc::index::engine::build_threads(&config),
        index.entry_count(),
        index.stats().memory_megabytes(),
        build_stats.pruned_pr1 + build_stats.pruned_pr2,
    );

    // A verified workload of 200 true and 200 false queries with 2-label
    // constraints (the paper uses 1000 + 1000).
    let workload = generate_query_set(&graph, &QueryGenConfig::small(200, 200, 2, 7));
    println!("generated {} verified queries", workload.len());
    let queries: Vec<RlcQuery> = workload.iter().map(|(q, _)| q.clone()).collect();
    let expected: Vec<bool> = workload.iter().map(|(_, e)| e).collect();

    // The index and the strongest online baseline of the paper, behind the
    // same trait.
    let engines: Vec<Box<dyn ReachabilityEngine + '_>> = vec![
        Box::new(IndexEngine::new(&graph, &index)),
        Box::new(BiBfsEngine::new(&graph)),
    ];
    let unified: Vec<Query> = queries.iter().map(Query::from).collect();
    let mut totals = Vec::new();
    for engine in &engines {
        let start = Instant::now();
        for (query, expected) in unified.iter().zip(&expected) {
            assert_eq!(engine.evaluate(query), Ok(*expected));
        }
        let elapsed = start.elapsed();
        println!(
            "{:<10}: {elapsed:.2?} for {} queries (sequential)",
            engine.name(),
            queries.len()
        );
        totals.push(elapsed);
    }
    println!(
        "speed-up  : {:.0}x",
        totals[1].as_secs_f64() / totals[0].as_secs_f64().max(1e-9)
    );

    // The same workload through the rayon batch path: answers must agree,
    // and on a multi-core machine the traversal baseline scales with cores.
    for engine in &engines {
        let start = Instant::now();
        let answers = engine.evaluate_batch(&unified);
        let elapsed = start.elapsed();
        let answers: Vec<bool> = answers.into_iter().map(|a| a.unwrap()).collect();
        assert_eq!(answers, expected);
        println!(
            "{:<10}: {elapsed:.2?} for {} queries (batch, {} threads)",
            engine.name(),
            queries.len(),
            rlc::index::engine::batch_threads()
        );
    }

    // The workload shares a handful of constraints across many pairs — the
    // case the constraint-grouping batch planner exists for: each distinct
    // constraint is prepared once, and the traversal engines answer all
    // same-source pairs of a group with one product search.
    let plan = BatchPlan::new(&unified);
    println!(
        "\nbatch planner: {} queries in {} constraint groups",
        plan.query_count(),
        plan.group_count()
    );
    for engine in &engines {
        let start = Instant::now();
        let answers = plan.execute(engine.as_ref());
        let elapsed = start.elapsed();
        let answers: Vec<bool> = answers.into_iter().map(|a| a.unwrap()).collect();
        assert_eq!(answers, expected);
        println!(
            "{:<10}: {elapsed:.2?} for {} queries (planned batch)",
            engine.name(),
            plan.query_count()
        );
    }
}
