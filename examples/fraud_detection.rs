//! Fraud detection on a financial transaction network — the motivating use
//! case of the paper (Example 1, Fig. 1).
//!
//! A money-laundering pattern is a chain of debit/credit hops between
//! accounts: `(debits, credits)+`. The RLC index answers such checks in
//! microseconds regardless of chain length, while an online traversal must
//! re-walk the graph for every suspicious pair. Both evaluators are driven
//! through the `ReachabilityEngine` trait, so swapping one for the other is
//! a one-line change.
//!
//! Run with: `cargo run --release --example fraud_detection`

use rlc::prelude::*;

fn main() {
    // The interleaved social / professional / financial network of Fig. 1.
    let graph = rlc::graph::examples::fig1_graph();
    let index = RlcIndex::build(&graph, 2);
    let engine = IndexEngine::new(&graph, &index);
    // What an engine without the index has to do: online traversal.
    let traversal = BfsEngine::new(&graph);

    // One fraud pattern, many suspicious pairs: compile the constraint once
    // with `prepare`, then execute it per pair — the batch-serving shape of
    // the new engine API.
    println!("== money-flow checks: (debits, credits)+ ==");
    let debits = graph.labels().resolve("debits").unwrap();
    let credits = graph.labels().resolve("credits").unwrap();
    let pattern = Constraint::single(vec![debits, credits]).unwrap();
    let prepared = engine.prepare(&pattern).unwrap();
    let prepared_traversal = traversal.prepare(&pattern).unwrap();
    for (source, target) in [
        ("A14", "A19"),
        ("A14", "A17"),
        ("A17", "A19"),
        ("A19", "A14"),
    ] {
        let s = graph.vertex_id(source).unwrap();
        let t = graph.vertex_id(target).unwrap();
        let index_answer = engine.evaluate_prepared(s, t, &prepared).unwrap();
        // Cross-check the index against the online traversal.
        assert_eq!(
            index_answer,
            traversal
                .evaluate_prepared(s, t, &prepared_traversal)
                .unwrap()
        );
        println!(
            "  money can flow {source} -> {target} through debit/credit chains: {index_answer}"
        );
    }

    println!("\n== social closeness checks: (knows)+ ==");
    for (source, target) in [("P10", "P16"), ("P16", "P10"), ("P12", "P13")] {
        let rlc = RlcQuery::from_names(&graph, source, target, &["knows"]).unwrap();
        println!(
            "  {source} reaches {target} through knows-chains: {}",
            engine.evaluate(&Query::from(&rlc)).unwrap()
        );
    }

    // An extended constraint (the paper's Q4 shape): first follow knows-hops
    // to a person, then a holds-hop to one of their accounts. The index alone
    // cannot answer the concatenation, but the unified `Query` model treats
    // it as just another constraint: the engine combines an online knows+
    // traversal with index lookups for the final block.
    println!("\n== extended constraint: knows+ . holds+ ==");
    let knows = graph.labels().resolve("knows").unwrap();
    let holds = graph.labels().resolve("holds").unwrap();
    for (source, target) in [("P10", "A19"), ("P10", "A14"), ("P13", "A14")] {
        let query = Query::concat(
            graph.vertex_id(source).unwrap(),
            graph.vertex_id(target).unwrap(),
            vec![vec![knows], vec![holds]],
        )
        .unwrap();
        let answer = engine.evaluate(&query).unwrap();
        assert_eq!(Ok(answer), traversal.evaluate(&query));
        println!("  {source} can reach account {target} via knows+ then holds: {answer}");
    }
}
