//! Sharding a graph across per-shard RLC indexes.
//!
//! When one machine cannot hold the whole index, the graph is cut into
//! vertex-disjoint shards, each shard gets its own RLC index, and
//! cross-shard queries are stitched through the cut edges. This example
//! partitions a synthetic graph, answers a batch through the sharded engine
//! (asserting identity with the unsharded answers), persists the `RSH1`
//! manifest, reloads it, and shows how rebuilding a single shard
//! invalidates cached plans.
//!
//! Run with: `cargo run --release --example sharded_engine`

use rlc::graph::generate::{erdos_renyi, SyntheticConfig};
use rlc::prelude::*;

fn main() {
    let graph = erdos_renyi(&SyntheticConfig::new(3_000, 4.0, 6, 7));
    println!(
        "graph: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // Partition into 4 degree-aware shards and build one index per shard
    // (the per-shard builds fan out across rayon workers).
    let config = ShardBuildConfig::new(2, 4).with_strategy(PartitionStrategy::DegreeAware);
    let (sharded, build_stats) = ShardedIndex::build(&graph, &config).expect("valid shard count");
    let stats = sharded.stats();
    println!(
        "built {} shards in {:.2?} total: {} cut edges, {:.1} MiB resident",
        sharded.shard_count(),
        build_stats
            .iter()
            .map(|s| s.duration)
            .sum::<std::time::Duration>(),
        stats.cut_edges,
        stats.memory_bytes as f64 / (1024.0 * 1024.0),
    );
    for (i, shard) in stats.shards.iter().enumerate() {
        println!(
            "  shard {i}: {} vertices, {} intra edges, {} index entries, {}/{} portals in/out",
            shard.vertices,
            shard.edges,
            shard.index_entries,
            shard.entry_portals,
            shard.exit_portals,
        );
    }

    // The sharded engine is a drop-in ReachabilityEngine: the planner
    // prepares each distinct constraint once and the stitcher answers
    // cross-shard pairs exactly like the unsharded reference.
    let (plain, _) = build_index(&graph, &BuildConfig::new(2));
    let reference = IndexEngine::new(&graph, &plain);
    let engine = ShardedEngine::new(&graph, &sharded);
    let l = |i: u16| Label(i);
    let queries: Vec<Query> = (0..200u32)
        .map(|i| {
            let s = (i * 37) % 3_000;
            let t = (i * 101 + 13) % 3_000;
            match i % 3 {
                0 => Query::rlc(s, t, vec![l(0)]).unwrap(),
                1 => Query::rlc(s, t, vec![l(0), l(1)]).unwrap(),
                _ => Query::concat(s, t, vec![vec![l(1)], vec![l(0)]]).unwrap(),
            }
        })
        .collect();
    let plan = BatchPlan::new(&queries);
    let sharded_answers = plan.execute(&engine);
    assert_eq!(
        sharded_answers,
        plan.execute(&reference),
        "sharded answers are identical to the unsharded reference"
    );
    let reachable = sharded_answers.iter().filter(|a| **a == Ok(true)).count();
    println!(
        "batch of {}: {reachable} reachable, identical to unsharded",
        queries.len()
    );

    // Persist the RSH1 manifest (partition map, cut edges, per-shard RLC2
    // blobs with digests) and reload it against the same graph.
    let manifest = sharded.try_to_bytes().expect("manifest fits field widths");
    let path = std::env::temp_dir().join("er-3000.rsh");
    std::fs::write(&path, &manifest).expect("write manifest");
    let restored = ShardedIndex::from_bytes(&std::fs::read(&path).expect("read manifest"), &graph)
        .expect("valid manifest");
    println!(
        "manifest: {} bytes at {}; reload answers match: {}",
        manifest.len(),
        path.display(),
        BatchPlan::new(&queries).execute(&ShardedEngine::new(&graph, &restored)) == sharded_answers,
    );

    // Rebuilding any shard changes the folded plan identity, so cached
    // plans resolved against the old shard set are dropped, not re-served.
    let mut rebuilt = restored;
    let cache = PlanCache::new();
    {
        let engine = ShardedEngine::new(&graph, &rebuilt);
        let constraint = queries[0].constraint().clone();
        cache.prepare(&engine, &constraint).unwrap();
        cache.prepare(&engine, &constraint).unwrap();
    }
    rebuilt
        .rebuild_shard(0, &BuildConfig::new(2))
        .expect("rebuild shard 0");
    let engine = ShardedEngine::new(&graph, &rebuilt);
    cache.prepare(&engine, queries[0].constraint()).unwrap();
    let cache_stats = cache.stats();
    println!(
        "plan cache across a shard rebuild: {} hit(s), {} stale drop(s) — stale plans never re-served",
        cache_stats.hits, cache_stats.stale_drops,
    );
    assert_eq!(cache_stats.stale_drops, 1);
}
