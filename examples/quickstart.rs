//! Quickstart: build a small edge-labeled graph, build the RLC index, and
//! answer recursive label-concatenated reachability queries.
//!
//! Run with: `cargo run --release --example quickstart`

use rlc::prelude::*;

fn main() {
    // The running-example graph of the paper (Fig. 2): six vertices, three
    // labels. You can also build your own with `GraphBuilder`.
    let graph = rlc::graph::examples::fig2_graph();
    println!(
        "graph: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // Build the RLC index with recursive k = 2: it will answer any query
    // whose constraint has at most 2 labels.
    let index = RlcIndex::build(&graph, 2);
    let stats = index.stats();
    println!(
        "index: {} entries ({} Lin + {} Lout), {} distinct minimum repeats",
        stats.total_entries(),
        stats.lin_entries,
        stats.lout_entries,
        stats.distinct_mrs
    );

    // The three example queries of the paper (Example 4).
    let q1 = RlcQuery::from_names(&graph, "v3", "v6", &["l2", "l1"]).unwrap();
    let q2 = RlcQuery::from_names(&graph, "v1", "v2", &["l2", "l1"]).unwrap();
    let q3 = RlcQuery::from_names(&graph, "v1", "v3", &["l1"]).unwrap();
    println!("Q1(v3, v6, (l2,l1)+) = {}", index.query(&q1)); // true
    println!("Q2(v1, v2, (l2,l1)+) = {}", index.query(&q2)); // true
    println!("Q3(v1, v3, (l1)+)    = {}", index.query(&q3)); // false

    // Kleene-star queries reduce to the plus variant plus an equality check.
    let star = RlcQuery::from_names(&graph, "v4", "v4", &["l3"]).unwrap();
    println!("Q4(v4, v4, (l3)*)    = {}", index.query_star(&star)); // true (empty path)

    // Every evaluator in the workspace — the index, the online traversals,
    // the simulated engines — implements `ReachabilityEngine`, so the same
    // code drives any of them, including rayon-parallel batches. The engine
    // layer speaks the unified `Query` model (a plain RLC constraint is the
    // one-block special case of a concatenation).
    let engine = IndexEngine::new(&graph, &index);
    let baseline = BfsEngine::new(&graph);
    let batch: Vec<Query> = [&q1, &q2, &q3].into_iter().map(Query::from).collect();
    let index_answers = engine.evaluate_batch(&batch);
    let baseline_answers = baseline.evaluate_batch(&batch);
    assert_eq!(index_answers, baseline_answers);
    println!(
        "\nbatch of {} queries via {}: {:?} (matches {})",
        batch.len(),
        engine.name(),
        index_answers
            .iter()
            .map(|a| a.as_ref().copied().unwrap_or(false))
            .collect::<Vec<bool>>(),
        baseline.name()
    );

    // Constraint reuse? Prepare once, execute per pair — and `BatchPlan`
    // does the grouping automatically for mixed batches.
    let plan = BatchPlan::new(&batch);
    println!(
        "batch planner groups {} queries into {} constraint groups",
        plan.query_count(),
        plan.group_count()
    );
    assert_eq!(plan.execute(&engine), index_answers);

    // The full index content, with vertex and label names resolved.
    println!("\nindex entries:\n{}", index.describe(&graph));
}
