//! Persisting and reloading an RLC index.
//!
//! Building the index is the expensive part (Table IV); production use
//! builds it offline, stores it next to the graph, and memory-maps or loads
//! it at query time. This example shows the binary round trip and verifies
//! that the reloaded index answers exactly like the original.
//!
//! Run with: `cargo run --release --example index_persistence`

use rlc::prelude::*;
use rlc::workloads::datasets::dataset_by_code;

fn main() {
    // A scaled-down stand-in of the paper's Web-NotreDame graph.
    let spec = dataset_by_code("WN").expect("WN is in the catalog");
    let graph = spec.generate(1.0 / 256.0, 7);
    println!(
        "WN stand-in: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // The parallel build produces the same bytes as the sequential one, so
    // persisted blobs are reproducible no matter how the index was built.
    let (index, stats) = build_index(&graph, &BuildConfig::new(2).with_parallel());
    println!(
        "built index in {:.2?} with {} entries",
        stats.duration,
        index.entry_count()
    );

    // Serialize to a compact binary blob (format v2, magic "RLC2") and write
    // it to a temporary file; `try_to_bytes` reports field overflow instead
    // of silently truncating.
    let blob = index.try_to_bytes().expect("index fits the binary format");
    let path = std::env::temp_dir().join("wn-standin.rlc");
    std::fs::write(&path, &blob).expect("write index blob");
    println!("wrote {} bytes to {}", blob.len(), path.display());

    // Reload and verify on a verified workload, driving both indexes through
    // the `ReachabilityEngine` trait (the batch path checks the whole
    // workload in one parallel call).
    let restored = rlc::index::RlcIndex::from_bytes(&std::fs::read(&path).expect("read blob"))
        .expect("valid index blob");
    let workload = generate_query_set(&graph, &QueryGenConfig::small(100, 100, 2, 3));
    let queries: Vec<Query> = workload.iter().map(|(q, _)| Query::from(q)).collect();
    let expected: Vec<Result<bool, QueryError>> = workload.iter().map(|(_, e)| Ok(e)).collect();
    let original_engine = IndexEngine::new(&graph, &index);
    let restored_engine = IndexEngine::new(&graph, &restored);
    let restored_answers = restored_engine.evaluate_batch(&queries);
    assert_eq!(restored_answers, expected);
    assert_eq!(restored_answers, original_engine.evaluate_batch(&queries));
    println!(
        "reloaded index answers all {} verified queries identically",
        workload.len()
    );

    // Generations are never part of the blob: the reloaded index gets a
    // fresh stamp, so plans prepared against the original re-prepare (and
    // cached plans are invalidated) instead of misreading catalog ids.
    assert_ne!(restored.generation(), index.generation());
    println!(
        "original generation {} != reloaded generation {} (stale plans re-prepare)",
        index.generation().value(),
        restored.generation().value()
    );
    std::fs::remove_file(&path).ok();
}
