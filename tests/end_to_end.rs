//! End-to-end integration tests spanning every crate of the workspace:
//! dataset stand-in generation → index construction → workload generation →
//! agreement of every evaluator (RLC index, online traversals, ETC, simulated
//! engines, hybrid evaluation), all driven through the `ReachabilityEngine`
//! trait.

use rlc::engines::all_engines;
use rlc::prelude::*;
use rlc::workloads::datasets::dataset_by_code;
use rlc::workloads::{generate_query_set, QueryGenConfig};

#[test]
fn dataset_standin_pipeline_all_evaluators_agree() {
    // A small Advogato stand-in: dense, with self loops — the stress case
    // for recursive constraints.
    let spec = dataset_by_code("AD").unwrap();
    let graph = spec.generate(1.0 / 64.0, 11);
    let (index, stats) = build_index(&graph, &BuildConfig::new(2));
    assert!(!stats.timed_out);
    assert!(index.entry_count() > 0);

    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let queries = generate_query_set(&graph, &QueryGenConfig::small(40, 40, 2, 5));
    assert_eq!(queries.true_queries.len(), 40);
    assert_eq!(queries.false_queries.len(), 40);

    let engines: Vec<Box<dyn ReachabilityEngine + '_>> = vec![
        Box::new(IndexEngine::new(&graph, &index)),
        Box::new(BfsEngine::new(&graph)),
        Box::new(BiBfsEngine::new(&graph)),
        Box::new(DfsEngine::new(&graph)),
        Box::new(EtcEngine::new(&graph, &etc)),
    ];
    for (q, expected) in queries.iter() {
        let q = Query::from(q);
        for engine in &engines {
            assert_eq!(
                engine.evaluate(&q),
                Ok(expected),
                "{} wrong on {q:?}",
                engine.name()
            );
        }
    }
}

#[test]
fn simulated_engines_agree_with_index_on_standin() {
    let spec = dataset_by_code("TW").unwrap();
    let graph = spec.generate(1.0 / 512.0, 3);
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let engines = all_engines(&graph);
    let queries = generate_query_set(&graph, &QueryGenConfig::small(15, 15, 2, 9));
    for (q, expected) in queries.iter() {
        let unified = Query::from(q);
        for engine in &engines {
            assert_eq!(
                engine.evaluate(&unified),
                Ok(expected),
                "{} wrong on {unified:?}",
                engine.name()
            );
        }
        assert_eq!(index.query(q), expected);
    }
}

#[test]
fn hybrid_evaluation_agrees_with_automaton_baseline() {
    let spec = dataset_by_code("EP").unwrap();
    let graph = spec.generate(1.0 / 256.0, 17);
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let hybrid = HybridEngine::new(&graph, &index);
    let oracle = BfsEngine::new(&graph);
    let labels: Vec<Label> = (0..graph.label_count().min(3))
        .map(Label::from_index)
        .collect();
    let mut checked = 0usize;
    for s in (0..graph.vertex_count() as u32).step_by(37) {
        for t in (0..graph.vertex_count() as u32).step_by(41) {
            for blocks in [
                vec![vec![labels[0]]],
                vec![vec![labels[0]], vec![labels[1]]],
                vec![vec![labels[0], labels[1]], vec![labels[2]]],
            ] {
                let q = Query::concat(s, t, blocks).unwrap();
                assert_eq!(
                    hybrid.evaluate(&q),
                    oracle.evaluate(&q),
                    "hybrid disagrees on ({s},{t})"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 50, "the sweep should cover a meaningful sample");
}

#[test]
fn graph_io_round_trip_preserves_index_answers() {
    let graph = rlc::graph::examples::fig1_graph();
    let text = rlc::graph::io::to_edge_list(&graph);
    let reloaded = rlc::graph::io::parse_edge_list(&text).unwrap();
    let index_a = RlcIndex::build(&graph, 2);
    let index_b = RlcIndex::build(&reloaded, 2);
    // Compare answers through the name mapping, which must be preserved.
    for (s, t) in [("A14", "A19"), ("P10", "P16"), ("P10", "P13")] {
        for labels in [vec!["debits", "credits"], vec!["knows"], vec!["holds"]] {
            let qa = RlcQuery::from_names(&graph, s, t, &labels).unwrap();
            let qb = RlcQuery::from_names(&reloaded, s, t, &labels).unwrap();
            assert_eq!(index_a.query(&qa), index_b.query(&qb));
        }
    }
}

#[test]
fn query_workloads_are_balanced_and_verified_on_ba_graphs() {
    let graph = rlc::graph::generate::barabasi_albert(&rlc::graph::generate::SyntheticConfig::new(
        2_000, 4.0, 8, 23,
    ));
    let set = generate_query_set(&graph, &QueryGenConfig::small(60, 60, 2, 2));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let mut true_count = 0;
    for (q, expected) in set.iter() {
        assert_eq!(index.query(q), expected);
        true_count += expected as usize;
    }
    assert_eq!(true_count, 60);
}

#[test]
fn batch_evaluation_agrees_with_single_across_the_facade() {
    let graph = rlc::graph::generate::erdos_renyi(&rlc::graph::generate::SyntheticConfig::new(
        500, 3.0, 4, 31,
    ));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let set = generate_query_set(&graph, &QueryGenConfig::small(50, 50, 2, 13));
    let queries: Vec<Query> = set.iter().map(|(q, _)| Query::from(q)).collect();
    let engine = IndexEngine::new(&graph, &index);
    let batch = engine.evaluate_batch(&queries);
    let singles: Vec<Result<bool, QueryError>> =
        queries.iter().map(|q| engine.evaluate(q)).collect();
    assert_eq!(batch, singles);
    // The planned path agrees and groups the workload's few constraints.
    let plan = BatchPlan::new(&queries);
    assert!(plan.group_count() < queries.len());
    assert_eq!(plan.execute(&engine), singles);
}

#[test]
fn facade_prelude_exposes_the_whole_pipeline() {
    // Compile-time check that the facade's prelude covers the common flow.
    let mut builder = GraphBuilder::new();
    builder.add_edge_named("a", "x", "b");
    builder.add_edge_named("b", "y", "a");
    let graph: LabeledGraph = builder.build();
    let index: RlcIndex = RlcIndex::build(&graph, 2);
    let x = graph.labels().resolve("x").unwrap();
    let y = graph.labels().resolve("y").unwrap();
    let a: VertexId = graph.vertex_id("a").unwrap();
    let q = RlcQuery::new(a, a, vec![x, y]).unwrap();
    assert!(index.query(&q));
    let unified = Query::from(&q);
    let bfs = BfsEngine::new(&graph);
    let bibfs = BiBfsEngine::new(&graph);
    assert_eq!(bfs.evaluate(&unified), Ok(true));
    assert_eq!(bibfs.evaluate(&unified), Ok(true));
}
