//! Cross-engine differential test: every `ReachabilityEngine` implementation
//! in the workspace — the RLC index, hybrid evaluation, the three online
//! traversals, the extended transitive closure, the three simulated
//! mainstream engines, and the sharded engine — must return identical
//! answers over seeded Erdős–Rényi graphs, on plain RLC constraints, on
//! concatenated constraints, and through every evaluation mode the
//! redesigned API offers: one-shot `evaluate`, the prepare/execute split,
//! the naive parallel batch path, and the constraint-grouping `BatchPlan`.
//! Invalid queries must produce identical *errors* across the modes of each
//! engine (error parity), and the planner must prepare each distinct
//! constraint exactly once while returning answers in submission order.
//! The whole ten-engine differential also holds under both forced frontier
//! kernel backends (`set_kernel`): the bit-parallel SIMD lane must be
//! observationally identical to the portable generic lane — same answers
//! AND same errors.

use rlc::engines::all_engines;
use rlc::graph::generate::{erdos_renyi, SyntheticConfig};
use rlc::index::repeats::enumerate_minimum_repeats;
use rlc::prelude::*;

/// Collects all ten evaluator implementations over one graph.
fn full_roster<'g>(
    graph: &'g LabeledGraph,
    index: &'g RlcIndex,
    etc: &'g EtcIndex,
    sharded: &'g ShardedIndex,
) -> Vec<Box<dyn ReachabilityEngine + 'g>> {
    let mut engines: Vec<Box<dyn ReachabilityEngine + 'g>> = vec![
        Box::new(IndexEngine::new(graph, index)),
        Box::new(HybridEngine::new(graph, index)),
        Box::new(BfsEngine::new(graph)),
        Box::new(BiBfsEngine::new(graph)),
        Box::new(DfsEngine::new(graph)),
        Box::new(EtcEngine::new(graph, etc)),
        Box::new(ShardedEngine::new(graph, sharded)),
    ];
    engines.extend(all_engines(graph));
    engines
}

/// Builds the sharded index for the roster: two hash-partitioned shards, so
/// cross-shard pairs genuinely exercise the boundary-hub stitcher.
fn build_sharded(graph: &LabeledGraph) -> ShardedIndex {
    let config = ShardBuildConfig::new(2, 2).with_strategy(PartitionStrategy::Hash { seed: 5 });
    let (sharded, _) = ShardedIndex::build(graph, &config).expect("shard count is valid");
    sharded
}

/// A shared query set covering every vertex-pair sample and every minimum
/// repeat of length at most `k`.
fn shared_queries(graph: &LabeledGraph, k: usize, stride: usize) -> Vec<Query> {
    let constraints = enumerate_minimum_repeats(graph.label_count(), k);
    let n = graph.vertex_count() as u32;
    let mut queries = Vec::new();
    for s in (0..n).step_by(stride) {
        for t in (0..n).step_by(stride + 2) {
            for constraint in &constraints {
                queries.push(Query::rlc(s, t, constraint.clone()).unwrap());
            }
        }
    }
    queries
}

/// A mixed batch: interleaved single-block and multi-block constraints with
/// heavy reuse, repeated sources, plus one constraint that is valid for the
/// traversal engines but exceeds the index-backed engines' k = 2.
fn mixed_batch(graph: &LabeledGraph) -> Vec<Query> {
    let n = graph.vertex_count() as u32;
    let l0 = Label(0);
    let l1 = Label(1);
    let l2 = Label(2);
    let mut queries = Vec::new();
    for i in 0..n / 2 {
        let s = i % n;
        let t = (i * 7 + 3) % n;
        match i % 5 {
            0 => queries.push(Query::rlc(s, t, vec![l0]).unwrap()),
            1 => queries.push(Query::rlc(s, t, vec![l0, l1]).unwrap()),
            2 => queries.push(Query::concat(s, t, vec![vec![l0], vec![l1]]).unwrap()),
            3 => queries.push(Query::concat(s, t, vec![vec![l2], vec![l0, l1]]).unwrap()),
            // Valid MR of length 3: errors on k = 2 index/hybrid/ETC
            // engines, succeeds on the traversals — error parity across
            // evaluation modes is what matters.
            _ => queries.push(Query::rlc(s, t, vec![l0, l1, l2]).unwrap()),
        }
    }
    // Repeated sources stress the grouped multi-target search.
    for t in 0..n / 4 {
        queries.push(Query::rlc(1 % n, (t * 3 + 1) % n, vec![l0, l1]).unwrap());
    }
    // Out-of-range vertex ids: queries are constructed without a graph, so
    // these are well-formed and must error (never panic) at evaluation,
    // identically in every mode.
    queries.push(Query::rlc(n + 7, 0, vec![l0]).unwrap());
    queries.push(Query::concat(0, n + 9, vec![vec![l0], vec![l1]]).unwrap());
    queries
}

#[test]
fn all_ten_engines_agree_on_rlc_queries() {
    for seed in [3u64, 17, 42] {
        let graph = erdos_renyi(&SyntheticConfig::new(90, 3.0, 3, seed));
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
        let sharded = build_sharded(&graph);
        let engines = full_roster(&graph, &index, &etc, &sharded);
        assert_eq!(
            engines.len(),
            10,
            "the differential roster must be complete"
        );

        let queries = shared_queries(&graph, 2, 7);
        assert!(queries.len() > 100, "sample must be meaningful");
        for query in &queries {
            let reference = engines[0].evaluate(query);
            assert!(reference.is_ok(), "valid query must evaluate");
            for engine in &engines[1..] {
                assert_eq!(
                    engine.evaluate(query),
                    reference,
                    "seed {seed}: {} disagrees with {} on {query:?}",
                    engine.name(),
                    engines[0].name()
                );
            }
        }
    }
}

#[test]
fn all_ten_engines_agree_on_concatenated_queries() {
    let graph = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 99));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let engines = full_roster(&graph, &index, &etc, &sharded);

    let l0 = Label(0);
    let l1 = Label(1);
    let l2 = Label(2);
    let n = graph.vertex_count() as u32;
    for s in (0..n).step_by(9) {
        for t in (0..n).step_by(11) {
            for blocks in [
                vec![vec![l0]],
                vec![vec![l0, l1]],
                vec![vec![l0], vec![l1]],
                vec![vec![l2], vec![l0, l1]],
            ] {
                let query = Query::concat(s, t, blocks).unwrap();
                let reference = engines[0].evaluate(&query);
                for engine in &engines[1..] {
                    assert_eq!(
                        engine.evaluate(&query),
                        reference,
                        "{} disagrees with {} on {query:?}",
                        engine.name(),
                        engines[0].name()
                    );
                }
            }
        }
    }
}

#[test]
fn batch_answers_equal_single_answers_for_every_engine() {
    let graph = erdos_renyi(&SyntheticConfig::new(80, 3.0, 3, 7));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let engines = full_roster(&graph, &index, &etc, &sharded);

    let queries = shared_queries(&graph, 2, 5);
    for engine in &engines {
        let batch = engine.evaluate_batch(&queries);
        let singles: Vec<Result<bool, QueryError>> =
            queries.iter().map(|q| engine.evaluate(q)).collect();
        assert_eq!(batch, singles, "{}: batch != single", engine.name());
    }
}

#[test]
fn prepared_and_planned_evaluation_match_one_shot_for_every_engine() {
    // The central differential of the prepare/execute redesign: for all ten engines, a mixed batch (shared constraints, repeated sources, and a
    // constraint invalid for the k-bounded engines) must produce identical
    // results — including identical errors — through all four evaluation
    // modes.
    let graph = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 23));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let engines = full_roster(&graph, &index, &etc, &sharded);

    let queries = mixed_batch(&graph);
    let plan = BatchPlan::new(&queries);
    assert!(plan.group_count() >= 5, "the batch must be truly mixed");

    for engine in &engines {
        let one_shot: Vec<Result<bool, QueryError>> =
            queries.iter().map(|q| engine.evaluate(q)).collect();
        let prepared: Vec<Result<bool, QueryError>> = queries
            .iter()
            .map(|q| {
                engine
                    .prepare(q.constraint())
                    .and_then(|p| engine.evaluate_prepared(q.source, q.target, &p))
            })
            .collect();
        let naive_batch = engine.evaluate_batch(&queries);
        let planned = plan.execute(engine.as_ref());

        assert_eq!(
            prepared,
            one_shot,
            "{}: prepare/execute != one-shot",
            engine.name()
        );
        assert_eq!(
            naive_batch,
            one_shot,
            "{}: naive batch != one-shot",
            engine.name()
        );
        assert_eq!(
            planned,
            one_shot,
            "{}: planned batch != one-shot (submission order violated?)",
            engine.name()
        );
    }

    // Error parity is real, not vacuous: the k-bounded engines must have
    // errored on the over-long constraint while the traversals answered it.
    let index_engine = IndexEngine::new(&graph, &index);
    let bfs = BfsEngine::new(&graph);
    let too_long = queries
        .iter()
        .find(|q| q.constraint().max_block_len() > 2)
        .expect("the mixed batch contains an over-long constraint");
    assert_eq!(
        index_engine.evaluate(too_long),
        Err(QueryError::BlockTooLong {
            block: 0,
            len: 3,
            k: 2
        })
    );
    assert!(bfs.evaluate(too_long).is_ok());

    // Out-of-range vertex ids error identically on every engine (the graph
    // is shared, so the reported vertex count matches too).
    let n = graph.vertex_count() as u32;
    let out_of_range = queries
        .iter()
        .find(|q| q.source >= n || q.target >= n)
        .expect("the mixed batch contains an out-of-range query");
    let expected = Err(QueryError::VertexOutOfRange {
        vertex: out_of_range.source.max(out_of_range.target),
        vertices: graph.vertex_count(),
    });
    for engine in &engines {
        assert_eq!(
            engine.evaluate(out_of_range),
            expected,
            "{} must reject out-of-range ids with the shared error",
            engine.name()
        );
    }
}

#[test]
fn cached_and_uncached_planned_batches_are_identical_for_every_engine() {
    // The cross-batch face of the differential: for all ten engines, three
    // repeated executions of a mixed batch through one shared PlanCache
    // must return exactly the uncached answers — including identical errors
    // (the cache retains rejections too) — while preparing each distinct
    // constraint once per process instead of once per batch.
    let graph = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 31));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let engines = full_roster(&graph, &index, &etc, &sharded);

    let queries = mixed_batch(&graph);
    let plan = BatchPlan::new(&queries);
    let cache = PlanCache::new();
    for engine in &engines {
        let uncached = plan.execute(engine.as_ref());
        let counting = PrepareCounting::new(engine.as_ref());
        for round in 0..3 {
            assert_eq!(
                plan.execute_cached(&counting, &cache),
                uncached,
                "{}: cached round {round} != uncached",
                engine.name()
            );
        }
        assert_eq!(
            counting.prepare_count(),
            plan.group_count(),
            "{}: the cache must collapse three batches to one prepare per constraint",
            engine.name()
        );
    }
    // Every engine kind keeps its own entries in the one shared cache.
    assert_eq!(
        cache.stats().entries,
        engines.len() * plan.group_count(),
        "per-kind keying must not let engines clobber each other"
    );
}

#[test]
fn a_rebuilt_index_invalidates_cached_plans_instead_of_misreading_them() {
    // ABA at the cache layer: plans cached against one index must be
    // dropped — not silently re-served — once an engine over a rebuilt
    // index (same kind, same k) consults the cache. A k = 3 rebuild makes
    // any misread observable: the old index rejected 3-label constraints,
    // the new one answers them.
    let graph = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 41));
    let queries = mixed_batch(&graph);
    let plan = BatchPlan::new(&queries);
    let cache = PlanCache::new();

    let (index_a, _) = build_index(&graph, &BuildConfig::new(2));
    let answers_a = {
        let engine_a = IndexEngine::new(&graph, &index_a);
        plan.execute_cached(&engine_a, &cache)
    };
    drop(index_a);

    let (index_b, _) = build_index(&graph, &BuildConfig::new(3));
    let engine_b = IndexEngine::new(&graph, &index_b);
    let cached_b = plan.execute_cached(&engine_b, &cache);
    assert_eq!(
        cached_b,
        plan.execute(&engine_b),
        "B's cached answers must be B's own answers, not A's"
    );
    assert_ne!(
        cached_b, answers_a,
        "k = 3 answers the constraint k = 2 rejected, so the batches differ"
    );
    assert_eq!(
        cache.stats().stale_drops,
        plan.group_count() as u64,
        "every one of A's entries was dropped on B's lookups"
    );
}

#[test]
fn batch_plan_prepares_each_constraint_once_for_every_engine() {
    let graph = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 11));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let engines = full_roster(&graph, &index, &etc, &sharded);

    let queries = mixed_batch(&graph);
    let plan = BatchPlan::new(&queries);
    for engine in &engines {
        let counting = PrepareCounting::new(engine.as_ref());
        let _ = plan.execute(&counting);
        assert_eq!(
            counting.prepare_count(),
            plan.group_count(),
            "{}: BatchPlan must prepare each distinct constraint exactly once",
            engine.name()
        );
        // The naive path, by contrast, prepares once per query.
        counting.reset();
        let _ = counting.evaluate_batch(&queries);
        assert_eq!(counting.prepare_count(), queries.len());
    }
}

#[test]
fn sharded_engines_match_unsharded_answers_and_errors() {
    // The PR 5 differential: for shard counts 1, 2 and 8 (and two
    // partition strategies), a ShardedEngine over per-shard indexes with
    // boundary-hub stitching must be indistinguishable from the unsharded
    // reference on a mixed batch — identical answers AND identical errors
    // (over-long blocks, out-of-range ids), through one-shot, prepared,
    // grouped-planned, and cached evaluation.
    use rlc::graph::PartitionStrategy;
    use rlc::shard::{ShardBuildConfig, ShardedEngine, ShardedIndex};

    let graph = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 57));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let reference = IndexEngine::new(&graph, &index);
    let queries = mixed_batch(&graph);
    let plan = BatchPlan::new(&queries);
    let expected: Vec<Result<bool, QueryError>> =
        queries.iter().map(|q| reference.evaluate(q)).collect();

    for strategy in [
        PartitionStrategy::Contiguous,
        PartitionStrategy::Hash { seed: 8 },
    ] {
        for shards in [1usize, 2, 8] {
            let config = ShardBuildConfig::new(2, shards).with_strategy(strategy);
            let (sharded, _) = ShardedIndex::build(&graph, &config).unwrap();
            if shards > 1 && matches!(strategy, PartitionStrategy::Hash { .. }) {
                assert!(
                    !sharded.cut_edges().is_empty(),
                    "the hash split must produce genuinely cross-shard pairs"
                );
            }
            let engine = ShardedEngine::new(&graph, &sharded);
            let one_shot: Vec<Result<bool, QueryError>> =
                queries.iter().map(|q| engine.evaluate(q)).collect();
            assert_eq!(
                one_shot, expected,
                "{strategy:?} x{shards}: sharded one-shot != unsharded"
            );
            let prepared: Vec<Result<bool, QueryError>> = queries
                .iter()
                .map(|q| {
                    engine
                        .prepare(q.constraint())
                        .and_then(|p| engine.evaluate_prepared(q.source, q.target, &p))
                })
                .collect();
            assert_eq!(
                prepared, expected,
                "{strategy:?} x{shards}: sharded prepare/execute != unsharded"
            );
            assert_eq!(
                plan.execute(&engine),
                expected,
                "{strategy:?} x{shards}: sharded planned batch != unsharded"
            );
            let cache = PlanCache::new();
            let counting = PrepareCounting::new(&engine);
            for round in 0..2 {
                assert_eq!(
                    plan.execute_cached(&counting, &cache),
                    expected,
                    "{strategy:?} x{shards}: sharded cached round {round} != unsharded"
                );
            }
            assert_eq!(
                counting.prepare_count(),
                plan.group_count(),
                "{strategy:?} x{shards}: the cache must hold sharded plans too"
            );
        }
    }
}

#[test]
fn ten_engine_differential_holds_with_tracing_enabled() {
    // The PR 10 differential: observation must never change answers. With
    // the global metrics registry *enabled* — every span site live, stitch
    // counters flushing, phase histograms recording — the explained
    // evaluation paths (`BatchPlan::execute_explained`, per-query
    // `explain_prepared`) must return exactly the plain results for all ten
    // engines: same answers AND same errors, cached and uncached. And the
    // traces must be real, not decorative: the batch trace carries one child
    // per query with the cache-hit flag, and the sharded engine's per-query
    // trace names its route.
    let graph = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 63));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let engines = full_roster(&graph, &index, &etc, &sharded);
    assert_eq!(
        engines.len(),
        10,
        "the differential roster must be complete"
    );

    let queries = mixed_batch(&graph);
    let plan = BatchPlan::new(&queries);
    let cache = PlanCache::new();

    let was_enabled = rlc::obs::global_enabled();
    rlc::obs::set_global_enabled(true);
    for engine in &engines {
        let expected = plan.execute(engine.as_ref());

        // Explained, uncached: identical result vector, one trace child per
        // query, every child stamped with its cache disposition.
        let (explained, trace) = plan.execute_explained(engine.as_ref(), None);
        assert_eq!(
            explained,
            expected,
            "{}: explained batch != plain batch",
            engine.name()
        );
        assert_eq!(trace.name(), "batch");
        assert_eq!(
            trace.children().len(),
            queries.len(),
            "{}: one trace child per query",
            engine.name()
        );
        assert!(
            trace
                .children()
                .iter()
                .all(|child| child.find_attr("group").is_some()),
            "{}: every per-query trace names its constraint group",
            engine.name()
        );

        // Explained, cached, twice: same answers both rounds, every child
        // stamped with its cache disposition, and the second round's trace
        // reports hits.
        for round in 0..2 {
            let (cached, trace) = plan.execute_explained(engine.as_ref(), Some(&cache));
            assert_eq!(
                cached,
                expected,
                "{}: explained cached round {round} != plain batch",
                engine.name()
            );
            assert!(
                trace
                    .children()
                    .iter()
                    .all(|child| child.find_attr("cache_hit").is_some()),
                "{}: every cached per-query trace carries the cache-hit flag",
                engine.name()
            );
            if round > 0 {
                assert!(
                    trace
                        .children()
                        .iter()
                        .any(|child| child.find_attr("cache_hit") == Some("true")),
                    "{}: the repeat round must trace cache hits",
                    engine.name()
                );
            }
        }

        // Per-query explained evaluation matches one-shot, errors included.
        for query in &queries {
            let one_shot = engine.evaluate(query);
            let explained = engine
                .prepare(query.constraint())
                .map(|p| engine.explain_prepared(query.source, query.target, &p).0)
                .unwrap_or_else(Err);
            assert_eq!(
                explained,
                one_shot,
                "{}: explain_prepared != evaluate on {query:?}",
                engine.name()
            );
        }
    }

    // The sharded engine's trace names its route, and a two-shard hash
    // split genuinely exercises both routes.
    let shard_engine = ShardedEngine::new(&graph, &sharded);
    let mut routes_seen = std::collections::BTreeSet::new();
    for query in &queries {
        if let Ok(prepared) = shard_engine.prepare(query.constraint()) {
            let (_, trace) = shard_engine.explain_prepared(query.source, query.target, &prepared);
            if let Some(route) = trace.find_attr_deep("route") {
                routes_seen.insert(route.to_owned());
            }
        }
    }
    assert!(
        routes_seen.contains("local") && routes_seen.contains("stitched"),
        "the mixed batch must exercise both shard routes, saw {routes_seen:?}"
    );
    rlc::obs::set_global_enabled(was_enabled);
}

#[test]
fn batch_answers_match_the_verified_workload() {
    // Batch evaluation against ground truth (not just self-consistency).
    let graph = erdos_renyi(&SyntheticConfig::new(200, 3.0, 4, 21));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let workload = generate_query_set(&graph, &QueryGenConfig::small(30, 30, 2, 4));
    let queries: Vec<Query> = workload.iter().map(|(q, _)| Query::from(q)).collect();
    let expected: Vec<Result<bool, QueryError>> = workload.iter().map(|(_, e)| Ok(e)).collect();
    let plan = BatchPlan::new(&queries);
    for engine in full_roster(&graph, &index, &etc, &sharded) {
        assert_eq!(
            engine.evaluate_batch(&queries),
            expected,
            "{} failed the verified workload (naive batch)",
            engine.name()
        );
        assert_eq!(
            plan.execute(engine.as_ref()),
            expected,
            "{} failed the verified workload (planned batch)",
            engine.name()
        );
    }
}

#[test]
fn ten_engine_differential_holds_under_both_forced_backends() {
    // The PR 6 differential: forcing the frontier-kernel backend must be
    // observationally invisible. Every one of the ten engines answers a
    // valid shared query set identically to the index reference under the
    // forced generic lane and under the forced SIMD lane, and on the mixed
    // batch (which contains over-long constraints and out-of-range ids)
    // the per-engine result vectors — answers AND errors, one-shot and
    // planned — are identical between the two backends. On hardware
    // without SIMD support the forced SIMD lane degrades to generic and
    // the comparison is trivially (but still soundly) exercised.
    let graph = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 77));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let sharded = build_sharded(&graph);
    let engines = full_roster(&graph, &index, &etc, &sharded);
    assert_eq!(
        engines.len(),
        10,
        "the differential roster must be complete"
    );

    let valid = shared_queries(&graph, 2, 9);
    let mixed = mixed_batch(&graph);
    let plan = BatchPlan::new(&mixed);

    type Results = Vec<Result<bool, QueryError>>;
    let mut per_backend: Vec<Vec<(Results, Results)>> = Vec::new();
    for choice in [KernelChoice::Generic, KernelChoice::Simd] {
        let backend = set_kernel(choice);
        // Within one forced backend, all ten engines agree on every valid
        // query.
        for query in &valid {
            let reference = engines[0].evaluate(query);
            assert!(reference.is_ok(), "valid query must evaluate");
            for engine in &engines[1..] {
                assert_eq!(
                    engine.evaluate(query),
                    reference,
                    "backend {backend}: {} disagrees with {} on {query:?}",
                    engine.name(),
                    engines[0].name()
                );
            }
        }
        // Record every engine's one-shot and planned results on the mixed
        // batch, error rows included.
        per_backend.push(
            engines
                .iter()
                .map(|engine| {
                    let one_shot: Results = mixed.iter().map(|q| engine.evaluate(q)).collect();
                    let planned = plan.execute(engine.as_ref());
                    (one_shot, planned)
                })
                .collect(),
        );
    }
    set_kernel(KernelChoice::Auto);

    let simd = per_backend.pop().unwrap();
    let generic = per_backend.pop().unwrap();
    for (i, engine) in engines.iter().enumerate() {
        assert_eq!(
            generic[i].0,
            simd[i].0,
            "{}: one-shot answers/errors differ between forced backends",
            engine.name()
        );
        assert_eq!(
            generic[i].1,
            simd[i].1,
            "{}: planned answers/errors differ between forced backends",
            engine.name()
        );
    }
    // Error parity between backends is non-vacuous: the mixed batch really
    // produced errors.
    assert!(
        generic
            .iter()
            .any(|(one_shot, _)| one_shot.iter().any(|r| r.is_err())),
        "the mixed batch must contain error rows"
    );
}
