//! Cross-engine differential test: every `ReachabilityEngine` implementation
//! in the workspace — the RLC index, hybrid evaluation, the three online
//! traversals, the extended transitive closure, and the three simulated
//! mainstream engines — must return identical answers over seeded
//! Erdős–Rényi graphs, on plain RLC queries, on concatenated constraints,
//! and through the parallel batch path (batch answers must equal
//! query-at-a-time answers for every engine).

use rlc::engines::all_engines;
use rlc::graph::generate::{erdos_renyi, SyntheticConfig};
use rlc::index::repeats::enumerate_minimum_repeats;
use rlc::prelude::*;

/// Collects all nine evaluator implementations over one graph.
fn full_roster<'g>(
    graph: &'g LabeledGraph,
    index: &'g RlcIndex,
    etc: &'g EtcIndex,
) -> Vec<Box<dyn ReachabilityEngine + 'g>> {
    let mut engines: Vec<Box<dyn ReachabilityEngine + 'g>> = vec![
        Box::new(IndexEngine::new(graph, index)),
        Box::new(HybridEngine::new(graph, index)),
        Box::new(BfsEngine::new(graph)),
        Box::new(BiBfsEngine::new(graph)),
        Box::new(DfsEngine::new(graph)),
        Box::new(EtcEngine::new(graph, etc)),
    ];
    engines.extend(all_engines(graph));
    engines
}

/// A shared query set covering every vertex-pair sample and every minimum
/// repeat of length at most `k`.
fn shared_queries(graph: &LabeledGraph, k: usize, stride: usize) -> Vec<RlcQuery> {
    let constraints = enumerate_minimum_repeats(graph.label_count(), k);
    let n = graph.vertex_count() as u32;
    let mut queries = Vec::new();
    for s in (0..n).step_by(stride) {
        for t in (0..n).step_by(stride + 2) {
            for constraint in &constraints {
                queries.push(RlcQuery::new(s, t, constraint.clone()).unwrap());
            }
        }
    }
    queries
}

#[test]
fn all_nine_engines_agree_on_rlc_queries() {
    for seed in [3u64, 17, 42] {
        let graph = erdos_renyi(&SyntheticConfig::new(90, 3.0, 3, seed));
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
        let engines = full_roster(&graph, &index, &etc);
        assert_eq!(engines.len(), 9, "the differential roster must be complete");

        let queries = shared_queries(&graph, 2, 7);
        assert!(queries.len() > 100, "sample must be meaningful");
        for query in &queries {
            let reference = engines[0].evaluate(query);
            for engine in &engines[1..] {
                assert_eq!(
                    engine.evaluate(query),
                    reference,
                    "seed {seed}: {} disagrees with {} on {query:?}",
                    engine.name(),
                    engines[0].name()
                );
            }
        }
    }
}

#[test]
fn all_nine_engines_agree_on_concatenated_queries() {
    let graph = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 99));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let engines = full_roster(&graph, &index, &etc);

    let l0 = Label(0);
    let l1 = Label(1);
    let l2 = Label(2);
    let n = graph.vertex_count() as u32;
    for s in (0..n).step_by(9) {
        for t in (0..n).step_by(11) {
            for blocks in [
                vec![vec![l0]],
                vec![vec![l0, l1]],
                vec![vec![l0], vec![l1]],
                vec![vec![l2], vec![l0, l1]],
            ] {
                let query = ConcatQuery::new(s, t, blocks);
                let reference = engines[0].evaluate_concat(&query);
                for engine in &engines[1..] {
                    assert_eq!(
                        engine.evaluate_concat(&query),
                        reference,
                        "{} disagrees with {} on {query:?}",
                        engine.name(),
                        engines[0].name()
                    );
                }
            }
        }
    }
}

#[test]
fn batch_answers_equal_single_answers_for_every_engine() {
    let graph = erdos_renyi(&SyntheticConfig::new(80, 3.0, 3, 7));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let engines = full_roster(&graph, &index, &etc);

    let queries = shared_queries(&graph, 2, 5);
    let concat_queries: Vec<ConcatQuery> = queries
        .iter()
        .take(60)
        .map(|q| ConcatQuery::new(q.source, q.target, vec![q.constraint.clone()]))
        .collect();
    for engine in &engines {
        let batch = engine.evaluate_batch(&queries);
        let singles: Vec<bool> = queries.iter().map(|q| engine.evaluate(q)).collect();
        assert_eq!(batch, singles, "{}: batch != single", engine.name());

        let concat_batch = engine.evaluate_concat_batch(&concat_queries);
        let concat_singles: Vec<bool> = concat_queries
            .iter()
            .map(|q| engine.evaluate_concat(q))
            .collect();
        assert_eq!(
            concat_batch,
            concat_singles,
            "{}: concat batch != single",
            engine.name()
        );
    }
}

#[test]
fn batch_answers_match_the_verified_workload() {
    // Batch evaluation against ground truth (not just self-consistency).
    let graph = erdos_renyi(&SyntheticConfig::new(200, 3.0, 4, 21));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
    let workload = generate_query_set(&graph, &QueryGenConfig::small(30, 30, 2, 4));
    let queries: Vec<RlcQuery> = workload.iter().map(|(q, _)| q.clone()).collect();
    let expected: Vec<bool> = workload.iter().map(|(_, e)| e).collect();
    for engine in full_roster(&graph, &index, &etc) {
        assert_eq!(
            engine.evaluate_batch(&queries),
            expected,
            "{} failed the verified workload",
            engine.name()
        );
    }
}
