//! Randomized-property tests of the index's central guarantees (Theorems 2
//! and 3): on randomly generated graphs, the RLC index must return exactly
//! the same answers as an online oracle for every vertex pair and every valid
//! constraint, must contain no redundant entries, and must survive a binary
//! serialization round trip unchanged.
//!
//! The environment builds without a property-testing framework, so the
//! random cases are driven by a small deterministic generator: every failure
//! reports the case seed, making reproduction a one-liner.

use rlc::index::engine::ReachabilityEngine;
use rlc::index::repeats::enumerate_minimum_repeats;
use rlc::index::{build_index, BuildConfig, KbsStrategy, OrderingStrategy};
use rlc::prelude::*;

/// Deterministic case generator (splitmix64).
struct CaseRng(u64);

impl CaseRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A random edge-labeled graph: between 2 and `max_vertices` vertices,
/// up to `max_edges` arbitrary labeled edges (self loops and parallel edges
/// included — both occur in the paper's datasets).
fn random_graph(
    rng: &mut CaseRng,
    max_vertices: usize,
    max_edges: usize,
    labels: u16,
) -> LabeledGraph {
    let n = 2 + rng.below(max_vertices as u64 - 1) as usize;
    let m = rng.below(max_edges as u64 + 1) as usize;
    let mut builder = GraphBuilder::with_capacity(n, labels as usize);
    for _ in 0..m {
        let s = rng.below(n as u64) as u32;
        let t = rng.below(n as u64) as u32;
        let l = Label(rng.below(labels as u64) as u16);
        builder.add_edge(s, l, t);
    }
    builder.build()
}

/// Exhaustively compares the index against the BFS oracle on every vertex
/// pair and every minimum repeat of length at most `k`.
fn assert_index_matches_oracle(graph: &LabeledGraph, k: usize, config: &BuildConfig, case: u64) {
    let (index, _) = build_index(graph, config);
    let oracle = rlc::baselines::engine::BfsEngine::new(graph);
    let constraints = enumerate_minimum_repeats(graph.label_count().max(1), k);
    for constraint in &constraints {
        // Prepare the oracle's automaton once per constraint; the inner
        // loops reuse it for every vertex pair.
        let prepared = oracle
            .prepare(&Constraint::single(constraint.clone()).unwrap())
            .unwrap();
        for s in graph.vertices() {
            for t in graph.vertices() {
                let query = RlcQuery::new(s, t, constraint.clone()).unwrap();
                let expected = oracle.evaluate_prepared(s, t, &prepared).unwrap();
                let got = index.query(&query);
                assert_eq!(
                    got, expected,
                    "case {case}: index disagrees with oracle on ({s}, {t}, {constraint:?})"
                );
            }
        }
    }
}

#[test]
fn index_is_sound_and_complete_k2() {
    let mut rng = CaseRng(0x5EED_0001);
    for case in 0..48 {
        let graph = random_graph(&mut rng, 12, 30, 3);
        assert_index_matches_oracle(&graph, 2, &BuildConfig::new(2), case);
    }
}

#[test]
fn index_is_sound_and_complete_k3() {
    let mut rng = CaseRng(0x5EED_0002);
    for case in 0..24 {
        let graph = random_graph(&mut rng, 9, 22, 2);
        assert_index_matches_oracle(&graph, 3, &BuildConfig::new(3), case);
    }
}

#[test]
fn index_without_pruning_is_sound_and_complete() {
    let mut rng = CaseRng(0x5EED_0003);
    for case in 0..32 {
        let graph = random_graph(&mut rng, 10, 24, 3);
        assert_index_matches_oracle(&graph, 2, &BuildConfig::new(2).without_pruning(), case);
    }
}

#[test]
fn lazy_strategy_is_sound_and_complete() {
    let mut rng = CaseRng(0x5EED_0004);
    for case in 0..32 {
        let graph = random_graph(&mut rng, 10, 24, 3);
        assert_index_matches_oracle(
            &graph,
            2,
            &BuildConfig::new(2).with_strategy(KbsStrategy::Lazy),
            case,
        );
    }
}

#[test]
fn alternative_orderings_are_sound_and_complete() {
    let mut rng = CaseRng(0x5EED_0005);
    for case in 0..12 {
        let graph = random_graph(&mut rng, 10, 24, 3);
        for ordering in [
            OrderingStrategy::VertexId,
            OrderingStrategy::OutDegree,
            OrderingStrategy::Random(7),
        ] {
            assert_index_matches_oracle(
                &graph,
                2,
                &BuildConfig::new(2).with_ordering(ordering),
                case,
            );
        }
    }
}

#[test]
fn index_is_condensed() {
    // Theorem 2: with all pruning rules the index has no redundant entries.
    let mut rng = CaseRng(0x5EED_0006);
    for case in 0..48 {
        let graph = random_graph(&mut rng, 12, 30, 3);
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        assert_eq!(index.redundant_entries(), 0, "case {case}");
    }
}

#[test]
fn online_baselines_agree_with_each_other() {
    let mut rng = CaseRng(0x5EED_0007);
    for case in 0..24 {
        let graph = random_graph(&mut rng, 12, 30, 3);
        let engines = rlc::baselines::engine::online_engines(&graph);
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = Query::rlc(s, t, constraint.clone()).unwrap();
                    let answers: Vec<bool> =
                        engines.iter().map(|e| e.evaluate(&q).unwrap()).collect();
                    assert!(
                        answers.windows(2).all(|w| w[0] == w[1]),
                        "case {case}: baselines disagree on ({s}, {t}, {constraint:?}): {answers:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn etc_agrees_with_index() {
    let mut rng = CaseRng(0x5EED_0008);
    for case in 0..24 {
        let graph = random_graph(&mut rng, 10, 26, 3);
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = RlcQuery::new(s, t, constraint.clone()).unwrap();
                    assert_eq!(index.query(&q), etc.query(&q), "case {case}");
                }
            }
        }
    }
}

#[test]
fn binary_round_trip_preserves_every_answer() {
    let mut rng = CaseRng(0x5EED_0009);
    for case in 0..24 {
        let graph = random_graph(&mut rng, 10, 26, 3);
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let restored = rlc::index::RlcIndex::from_bytes(&index.to_bytes()).unwrap();
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = RlcQuery::new(s, t, constraint.clone()).unwrap();
                    assert_eq!(index.query(&q), restored.query(&q), "case {case}");
                }
            }
        }
    }
}

#[test]
fn kleene_star_equals_plus_or_equality() {
    let mut rng = CaseRng(0x5EED_000A);
    for case in 0..24 {
        let graph = random_graph(&mut rng, 12, 30, 3);
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = RlcQuery::new(s, t, constraint.clone()).unwrap();
                    let star = index.query_star(&q);
                    assert_eq!(star, (s == t) || index.query(&q), "case {case}");
                }
            }
        }
    }
}

/// Minimum-repeat algebra properties, checked independently of any graph.
mod repeats_properties {
    use super::CaseRng;
    use rlc::index::repeats::{is_minimum_repeat, kernel_tail, minimum_repeat, minimum_repeat_len};
    use rlc::prelude::Label;

    fn random_sequence(rng: &mut CaseRng) -> Vec<Label> {
        let len = 1 + rng.below(23) as usize;
        (0..len).map(|_| Label(rng.below(4) as u16)).collect()
    }

    #[test]
    fn mr_divides_and_reconstructs() {
        let mut rng = CaseRng(0x5EED_000B);
        for case in 0..256 {
            let seq = random_sequence(&mut rng);
            let mr_len = minimum_repeat_len(&seq);
            assert!(mr_len >= 1 && mr_len <= seq.len(), "case {case}");
            assert_eq!(seq.len() % mr_len, 0, "case {case}");
            // Repeating the MR reconstructs the sequence.
            for (i, label) in seq.iter().enumerate() {
                assert_eq!(*label, seq[i % mr_len], "case {case}");
            }
            // The MR is itself irreducible.
            assert!(is_minimum_repeat(minimum_repeat(&seq)), "case {case}");
        }
    }

    #[test]
    fn mr_is_idempotent() {
        let mut rng = CaseRng(0x5EED_000C);
        for case in 0..256 {
            let seq = random_sequence(&mut rng);
            let mr = minimum_repeat(&seq).to_vec();
            assert_eq!(minimum_repeat(&mr).to_vec(), mr, "case {case}");
        }
    }

    #[test]
    fn mr_of_explicit_power_is_base() {
        let mut rng = CaseRng(0x5EED_000D);
        for case in 0..256 {
            let seq = random_sequence(&mut rng);
            let reps = 1 + rng.below(3) as usize;
            let base = minimum_repeat(&seq).to_vec();
            let mut power = Vec::new();
            for _ in 0..reps {
                power.extend_from_slice(&base);
            }
            assert_eq!(minimum_repeat(&power).to_vec(), base, "case {case}");
        }
    }

    #[test]
    fn kernel_decomposition_reconstructs_sequence() {
        let mut rng = CaseRng(0x5EED_000E);
        for case in 0..256 {
            let seq = random_sequence(&mut rng);
            if let Some((kernel, tail)) = kernel_tail(&seq) {
                assert!(is_minimum_repeat(kernel), "case {case}");
                assert!(tail.len() < kernel.len(), "case {case}");
                assert!(seq.len() >= 2 * kernel.len(), "case {case}");
                // seq = kernel^h ∘ tail.
                let h = (seq.len() - tail.len()) / kernel.len();
                assert!(h >= 2, "case {case}");
                let mut rebuilt: Vec<Label> = Vec::new();
                for _ in 0..h {
                    rebuilt.extend_from_slice(kernel);
                }
                rebuilt.extend_from_slice(tail);
                assert_eq!(rebuilt, seq, "case {case}");
            }
        }
    }
}
