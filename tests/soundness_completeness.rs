//! Property-based tests of the index's central guarantees (Theorems 2 and 3):
//! on randomly generated graphs, the RLC index must return exactly the same
//! answers as an online oracle for every vertex pair and every valid
//! constraint, must contain no redundant entries, and must survive a binary
//! serialization round trip unchanged.

use proptest::prelude::*;
use rlc::baselines::{bfs_query, bibfs_query, dfs_query, EtcBuildConfig, EtcIndex};
use rlc::index::repeats::enumerate_minimum_repeats;
use rlc::index::{build_index, BuildConfig, KbsStrategy, OrderingStrategy};
use rlc::prelude::*;

/// A random edge-labeled graph: `n` vertices, arbitrary labeled edges.
fn arb_graph(
    max_vertices: usize,
    max_edges: usize,
    labels: u16,
) -> impl Strategy<Value = LabeledGraph> {
    (2..=max_vertices).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..labels, 0..n as u32), 0..=max_edges).prop_map(
            move |edges| {
                let mut builder = GraphBuilder::with_capacity(n, labels as usize);
                for (source, label, target) in edges {
                    builder.add_edge(source, Label(label), target);
                }
                builder.build()
            },
        )
    })
}

/// Exhaustively compares the index against the BFS oracle on every vertex
/// pair and every minimum repeat of length at most `k`.
fn assert_index_matches_oracle(graph: &LabeledGraph, k: usize, config: &BuildConfig) {
    let (index, _) = build_index(graph, config);
    let constraints = enumerate_minimum_repeats(graph.label_count().max(1), k);
    for s in graph.vertices() {
        for t in graph.vertices() {
            for constraint in &constraints {
                let query = RlcQuery::new(s, t, constraint.clone()).unwrap();
                let expected = bfs_query(graph, &query);
                let got = index.query(&query);
                assert_eq!(
                    got, expected,
                    "index disagrees with oracle on ({s}, {t}, {constraint:?})"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn index_is_sound_and_complete_k2(graph in arb_graph(12, 30, 3)) {
        assert_index_matches_oracle(&graph, 2, &BuildConfig::new(2));
    }

    #[test]
    fn index_is_sound_and_complete_k3(graph in arb_graph(9, 22, 2)) {
        assert_index_matches_oracle(&graph, 3, &BuildConfig::new(3));
    }

    #[test]
    fn index_without_pruning_is_sound_and_complete(graph in arb_graph(10, 24, 3)) {
        assert_index_matches_oracle(&graph, 2, &BuildConfig::new(2).without_pruning());
    }

    #[test]
    fn lazy_strategy_is_sound_and_complete(graph in arb_graph(10, 24, 3)) {
        assert_index_matches_oracle(
            &graph,
            2,
            &BuildConfig::new(2).with_strategy(KbsStrategy::Lazy),
        );
    }

    #[test]
    fn alternative_orderings_are_sound_and_complete(graph in arb_graph(10, 24, 3)) {
        for ordering in [
            OrderingStrategy::VertexId,
            OrderingStrategy::OutDegree,
            OrderingStrategy::Random(7),
        ] {
            assert_index_matches_oracle(&graph, 2, &BuildConfig::new(2).with_ordering(ordering));
        }
    }

    #[test]
    fn index_is_condensed(graph in arb_graph(12, 30, 3)) {
        // Theorem 2: with all pruning rules the index has no redundant entries.
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        prop_assert_eq!(index.redundant_entries(), 0);
    }

    #[test]
    fn online_baselines_agree_with_each_other(graph in arb_graph(12, 30, 3)) {
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = RlcQuery::new(s, t, constraint.clone()).unwrap();
                    let bfs = bfs_query(&graph, &q);
                    prop_assert_eq!(bfs, bibfs_query(&graph, &q));
                    prop_assert_eq!(bfs, dfs_query(&graph, &q));
                }
            }
        }
    }

    #[test]
    fn etc_agrees_with_index(graph in arb_graph(10, 26, 3)) {
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2));
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = RlcQuery::new(s, t, constraint.clone()).unwrap();
                    prop_assert_eq!(index.query(&q), etc.query(&q));
                }
            }
        }
    }

    #[test]
    fn binary_round_trip_preserves_every_answer(graph in arb_graph(10, 26, 3)) {
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let restored = rlc::index::RlcIndex::from_bytes(&index.to_bytes()).unwrap();
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = RlcQuery::new(s, t, constraint.clone()).unwrap();
                    prop_assert_eq!(index.query(&q), restored.query(&q));
                }
            }
        }
    }

    #[test]
    fn kleene_star_equals_plus_or_equality(graph in arb_graph(12, 30, 3)) {
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let constraints = enumerate_minimum_repeats(3, 2);
        for s in graph.vertices() {
            for t in graph.vertices() {
                for constraint in &constraints {
                    let q = RlcQuery::new(s, t, constraint.clone()).unwrap();
                    let star = index.query_star(&q);
                    prop_assert_eq!(star, (s == t) || index.query(&q));
                }
            }
        }
    }
}

/// Minimum-repeat algebra properties, checked independently of any graph.
mod repeats_properties {
    use super::*;
    use rlc::index::repeats::{is_minimum_repeat, kernel_tail, minimum_repeat, minimum_repeat_len};

    fn arb_sequence() -> impl Strategy<Value = Vec<Label>> {
        proptest::collection::vec(0u16..4, 1..24).prop_map(|v| v.into_iter().map(Label).collect())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn mr_divides_and_reconstructs(seq in arb_sequence()) {
            let mr_len = minimum_repeat_len(&seq);
            prop_assert!(mr_len >= 1 && mr_len <= seq.len());
            prop_assert_eq!(seq.len() % mr_len, 0);
            // Repeating the MR reconstructs the sequence.
            for (i, label) in seq.iter().enumerate() {
                prop_assert_eq!(*label, seq[i % mr_len]);
            }
            // The MR is itself irreducible.
            prop_assert!(is_minimum_repeat(minimum_repeat(&seq)));
        }

        #[test]
        fn mr_is_idempotent(seq in arb_sequence()) {
            let mr = minimum_repeat(&seq).to_vec();
            prop_assert_eq!(minimum_repeat(&mr).to_vec(), mr.clone());
        }

        #[test]
        fn mr_of_explicit_power_is_base(seq in arb_sequence(), reps in 1usize..4) {
            let base = minimum_repeat(&seq).to_vec();
            let mut power = Vec::new();
            for _ in 0..reps {
                power.extend_from_slice(&base);
            }
            prop_assert_eq!(minimum_repeat(&power).to_vec(), base);
        }

        #[test]
        fn kernel_decomposition_reconstructs_sequence(seq in arb_sequence()) {
            if let Some((kernel, tail)) = kernel_tail(&seq) {
                prop_assert!(is_minimum_repeat(kernel));
                prop_assert!(tail.len() < kernel.len());
                prop_assert!(seq.len() >= 2 * kernel.len());
                // seq = kernel^h ∘ tail.
                let h = (seq.len() - tail.len()) / kernel.len();
                prop_assert!(h >= 2);
                let mut rebuilt: Vec<Label> = Vec::new();
                for _ in 0..h {
                    rebuilt.extend_from_slice(kernel);
                }
                rebuilt.extend_from_slice(tail);
                prop_assert_eq!(rebuilt, seq.clone());
            }
        }
    }
}
