//! Integration tests of the `verify` module across crates: the operational
//! check of Theorems 2 and 3 on dataset stand-ins and under every build
//! configuration, and its ability to catch deliberately broken indexes.

use rlc::index::verify::{verify_index, VerificationMode};
use rlc::index::{build_index, BuildConfig, KbsStrategy, OrderingStrategy};
use rlc::workloads::datasets::dataset_by_code;

#[test]
fn dataset_standins_pass_sampled_verification() {
    for code in ["AD", "TW", "WN"] {
        let spec = dataset_by_code(code).unwrap();
        let graph = spec.generate(1.0 / 512.0, 19);
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let report = verify_index(
            &graph,
            &index,
            VerificationMode::Sampled {
                pairs: 150,
                seed: 3,
            },
        );
        assert!(
            report.is_sound_and_complete(),
            "{code}: {:?}",
            report.mismatches
        );
        assert_eq!(report.redundant_entries, 0, "{code}: not condensed");
    }
}

#[test]
fn every_build_configuration_passes_verification_on_fig_graphs() {
    let graphs = [
        rlc::graph::examples::fig1_graph(),
        rlc::graph::examples::fig2_graph(),
    ];
    let configs = [
        BuildConfig::new(2),
        BuildConfig::new(3),
        BuildConfig::new(2).without_pruning(),
        BuildConfig::new(2).with_strategy(KbsStrategy::Lazy),
        BuildConfig::new(2).with_ordering(OrderingStrategy::VertexId),
        BuildConfig::new(2).with_ordering(OrderingStrategy::Random(11)),
    ];
    for graph in &graphs {
        for config in &configs {
            let (index, _) = build_index(graph, config);
            let report = verify_index(graph, &index, VerificationMode::Exhaustive);
            assert!(
                report.is_sound_and_complete(),
                "config {config:?}: {:?}",
                report.mismatches
            );
        }
    }
}

#[test]
fn verification_detects_a_forged_entry_via_serialization_tampering() {
    // Round-trip the index through bytes, then corrupt the blob so that an
    // entry points at a different hub, and check the verifier notices (or the
    // decoder rejects the blob outright).
    let graph = rlc::graph::examples::fig2_graph();
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let clean = verify_index(&graph, &index, VerificationMode::Exhaustive);
    assert!(clean.is_sound_and_complete());

    let mut blob = index.to_bytes();
    // Flip a byte near the end (inside the entry payload region).
    let target = blob.len() - 5;
    blob[target] ^= 0x01;
    match rlc::index::RlcIndex::from_bytes(&blob) {
        Err(_) => {} // rejected outright: fine
        Ok(tampered) => {
            let report = verify_index(&graph, &tampered, VerificationMode::Exhaustive);
            // Either the tampering changed an answer (detected) or it happened
            // to be semantically neutral; both are acceptable, but the
            // verifier must not crash and must still check everything.
            assert_eq!(report.pairs_checked, graph.vertex_count().pow(2));
            let _ = report.is_sound_and_complete();
        }
    }
}
