//! End-to-end tests of `rlc-serve` over real loopback TCP.
//!
//! Each test boots a server on an ephemeral port and speaks raw HTTP/1.1
//! from scratch — the client below shares no code with the server's parser,
//! so framing bugs cannot cancel out.
//!
//! The hot-reload test is the acceptance proof for the swap design: under
//! concurrent load, every response across a `POST /admin/reload` must be
//! well-formed, correct *for the generation it is stamped with*, and
//! stamped with either the old or the new generation — zero failed
//! requests, zero stale answers (an answer computed on one index but
//! stamped with the other would show up as a probe inconsistency).

use rlc::prelude::*;
use rlc::serve::{Epoch, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn fig2() -> Arc<LabeledGraph> {
    Arc::new(rlc::graph::examples::fig2_graph())
}

/// Boots a default-config server over a fresh k-index of Fig. 2.
fn boot(k: usize) -> (Arc<LabeledGraph>, Server) {
    let graph = fig2();
    let (index, _) = build_index(&graph, &BuildConfig::new(k));
    let server = Server::start(
        ServeConfig::default(),
        Epoch::rlc(Arc::clone(&graph), index),
    )
    .expect("server boots on an ephemeral port");
    (graph, server)
}

/// One raw HTTP exchange: connect, write, read to EOF, split the response.
fn exchange(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, String) {
    let raw = exchange_raw(addr, method, path, body).expect("request succeeds");
    parse_response(&raw).expect("response parses")
}

/// Like [`exchange`] but surfacing transport errors instead of panicking.
fn exchange_raw(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &[u8],
) -> std::io::Result<Vec<u8>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    Ok(response)
}

/// Splits a raw response into (status, body). `None` on malformed/empty.
fn parse_response(raw: &[u8]) -> Option<(u16, String)> {
    let text = std::str::from_utf8(raw).ok()?;
    let status: u16 = text.split(' ').nth(1)?.parse().ok()?;
    let head_end = text.find("\r\n\r\n")?;
    Some((status, text[head_end + 4..].to_owned()))
}

/// Extracts `"key":<u64>` from a compact JSON body.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let start = body.find(&needle)? + needle.len();
    let digits: String = body[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

fn query_body(source: u32, target: u32, labels: &[u16]) -> Vec<u8> {
    let blocks: Vec<String> = labels.iter().map(|l| l.to_string()).collect();
    format!(
        "{{\"source\":{source},\"target\":{target},\"constraint\":{{\"blocks\":[[{}]]}}}}",
        blocks.join(",")
    )
    .into_bytes()
}

#[test]
fn single_queries_answer_like_the_direct_engine() {
    let (graph, server) = boot(2);
    let addr = server.addr();
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let engine = IndexEngine::new(&graph, &index);
    let generation = server.slot().generation_value();
    for source in 0..6u32 {
        for target in 0..6u32 {
            let expected = engine
                .evaluate(&Query::rlc(source, target, vec![Label(1)]).unwrap())
                .unwrap();
            let (status, body) =
                exchange(addr, "POST", "/query", &query_body(source, target, &[1]));
            assert_eq!(status, 200, "{body}");
            assert!(
                body.contains(&format!("\"answer\":{expected}")),
                "({source},{target}): served answer must equal direct evaluation, got {body}"
            );
            assert_eq!(json_u64(&body, "generation"), Some(generation));
        }
    }
    server.shutdown();
}

#[test]
fn batches_constraint_errors_and_malformed_requests_map_to_envelopes() {
    let (graph, server) = boot(2);
    let addr = server.addr();

    // A batch mixing answers and a per-query rejection.
    let batch = format!(
        "{{\"queries\":[{},{},{}]}}",
        String::from_utf8(query_body(0, 5, &[1])).unwrap(),
        String::from_utf8(query_body(5, 0, &[1])).unwrap(),
        String::from_utf8(query_body(0, 5, &[0, 1, 2])).unwrap(), // len 3 > k = 2
    );
    let (status, body) = exchange(addr, "POST", "/batch", batch.as_bytes());
    assert_eq!(status, 200, "{body}");
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let engine = IndexEngine::new(&graph, &index);
    let a0 = engine
        .evaluate(&Query::rlc(0, 5, vec![Label(1)]).unwrap())
        .unwrap();
    let a1 = engine
        .evaluate(&Query::rlc(5, 0, vec![Label(1)]).unwrap())
        .unwrap();
    assert!(
        body.contains(&format!("\"answers\":[{a0},{a1},{{\"error\":")),
        "answers in submission order with the rejection in-place: {body}"
    );

    // A single query with a rejected constraint: 400 + rendered QueryError.
    let (status, body) = exchange(addr, "POST", "/query", &query_body(0, 5, &[0, 1, 2]));
    assert_eq!(status, 400);
    assert!(body.contains("\"ok\":false"), "{body}");
    assert!(
        body.contains("supports k = 2"),
        "rendered QueryError: {body}"
    );
    assert!(
        json_u64(&body, "generation").is_some(),
        "rejections are stamped too: {body}"
    );

    // Malformed JSON, wrong shapes, unknown routes, wrong methods.
    let (status, body) = exchange(addr, "POST", "/query", b"{\"source\":0");
    assert_eq!(status, 400, "{body}");
    let (status, _) = exchange(addr, "POST", "/query", b"{\"source\":0,\"target\":1}");
    assert_eq!(status, 400, "missing constraint field");
    let (status, _) = exchange(addr, "POST", "/batch", b"{\"nope\":[]}");
    assert_eq!(status, 400);
    let (status, body) = exchange(addr, "GET", "/nope", b"");
    assert_eq!(status, 404, "{body}");
    let (status, body) = exchange(addr, "GET", "/query", b"");
    assert_eq!(status, 405, "{body}");

    // Health and metrics.
    let (status, body) = exchange(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    assert!(body.contains("\"ok\":true"), "{body}");
    let (status, body) = exchange(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    assert!(body.contains("rlc_serve_ok_total "), "{body}");
    assert!(body.contains("plan_cache_hits_total "), "{body}");
    server.shutdown();
}

#[test]
fn oversized_and_slow_requests_are_bounded() {
    let graph = fig2();
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let config = ServeConfig {
        max_body_bytes: 256,
        max_header_bytes: 512,
        read_deadline: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start(config, Epoch::rlc(Arc::clone(&graph), index)).unwrap();
    let addr = server.addr();

    // Declared body over the cap: rejected from the Content-Length alone.
    let (status, body) = exchange(addr, "POST", "/query", &vec![b'x'; 300]);
    assert_eq!(status, 413, "{body}");

    // Head over the cap.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(format!("GET /healthz HTTP/1.1\r\nX-Pad: {}\r\n", "y".repeat(600)).as_bytes())
        .unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let (status, _) = parse_response(&response).expect("431 response");
    assert_eq!(status, 431);

    // Slow-loris: trickle and stall; the absolute read deadline answers 408.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"POST /query HTTP/1.1\r\n").unwrap();
    let mut response = Vec::new();
    let _ = stream.read_to_end(&mut response);
    let (status, _) = parse_response(&response).expect("408 response");
    assert_eq!(status, 408);

    // A valid request still works under the tightened limits.
    let (status, _) = exchange(addr, "GET", "/healthz", b"");
    assert_eq!(status, 200);
    server.shutdown();
}

#[test]
fn missed_deadlines_answer_504_not_silence() {
    let graph = fig2();
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let config = ServeConfig {
        // The batch window alone exceeds the request budget: every single
        // query must come back as a preformatted 504.
        request_deadline: Duration::from_millis(20),
        batch_window: Duration::from_millis(200),
        ..ServeConfig::default()
    };
    let server = Server::start(config, Epoch::rlc(Arc::clone(&graph), index)).unwrap();
    let addr = server.addr();
    let (status, body) = exchange(addr, "POST", "/query", &query_body(0, 5, &[1]));
    assert_eq!(status, 504, "{body}");
    assert!(body.contains("deadline exceeded"), "{body}");
    assert!(server.metrics().get(rlc::serve::Counter::Deadline504) >= 1);
    server.shutdown();
}

#[test]
fn hot_reload_under_concurrent_load_drops_and_stales_nothing() {
    let (graph, server) = boot(2);
    let addr = server.addr();
    let gen_old = server.slot().generation_value();

    // The valid stream's expected answer is identical under both indexes
    // (k only gates constraint length); the probe constraint [0,1,2] flips
    // outcome: k = 2 rejects it (400), k = 3 answers it (200).
    let (direct, _) = build_index(&graph, &BuildConfig::new(2));
    let expected = IndexEngine::new(&graph, &direct)
        .evaluate(&Query::rlc(0, 5, vec![Label(1)]).unwrap())
        .unwrap();

    // Per client thread: (probing, responses, transport failures).
    type ClientOutcome = (bool, Vec<(u16, String)>, usize);
    let stop = Arc::new(AtomicBool::new(false));
    let outcome = std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for worker in 0..4 {
            let stop = Arc::clone(&stop);
            let probing = worker % 2 == 1;
            clients.push(scope.spawn(move || {
                // Returns (responses, transport_failures, generations seen).
                let mut responses = Vec::new();
                let mut failures = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let body = if probing {
                        query_body(0, 5, &[0, 1, 2])
                    } else {
                        query_body(0, 5, &[1])
                    };
                    match exchange_raw(addr, "POST", "/query", &body) {
                        Ok(raw) => match parse_response(&raw) {
                            Some(parsed) => responses.push(parsed),
                            None => failures += 1,
                        },
                        Err(_) => failures += 1,
                    }
                }
                (probing, responses, failures)
            }));
        }

        // Let load build, then swap to k = 3 mid-flight over HTTP.
        std::thread::sleep(Duration::from_millis(50));
        let (k3, _) = build_index(&graph, &BuildConfig::new(3));
        let blob = k3.to_bytes();
        let (status, body) = exchange(addr, "POST", "/admin/reload", &blob);
        assert_eq!(status, 200, "reload must succeed: {body}");
        let gen_new = json_u64(&body, "generation").expect("reload reports the new stamp");
        assert_ne!(gen_new, gen_old);
        // Keep the load running past the swap so both generations appear.
        std::thread::sleep(Duration::from_millis(50));
        stop.store(true, Ordering::SeqCst);

        let mut all: Vec<ClientOutcome> = Vec::new();
        for client in clients {
            all.push(client.join().expect("client thread"));
        }
        (gen_new, all)
    });
    let (gen_new, all) = outcome;

    let mut total = 0usize;
    let mut saw_new = false;
    for (probing, responses, failures) in &all {
        assert_eq!(*failures, 0, "zero failed requests across the swap");
        for (status, body) in responses {
            total += 1;
            let generation =
                json_u64(body, "generation").unwrap_or_else(|| panic!("unstamped: {body}"));
            assert!(
                generation == gen_old || generation == gen_new,
                "generation {generation} is neither epoch: {body}"
            );
            saw_new |= generation == gen_new;
            if *probing {
                // The probe's outcome must match its stamp — a 200 stamped
                // old or a 400 stamped new would be a stale/torn answer.
                if generation == gen_old {
                    assert_eq!(*status, 400, "k=2 rejects the probe: {body}");
                } else {
                    assert_eq!(*status, 200, "k=3 answers the probe: {body}");
                    assert!(body.contains("\"answer\":"), "{body}");
                }
            } else {
                assert_eq!(*status, 200, "valid stream never fails: {body}");
                assert!(
                    body.contains(&format!("\"answer\":{expected}")),
                    "wrong answer during swap: {body}"
                );
            }
        }
    }
    assert!(total > 0, "the load generator actually ran");
    assert!(saw_new, "responses after the swap carry the new stamp");

    // The swap is complete: a fresh request must serve the new generation,
    // and the plan cache must have dropped the old epoch's plans as stale.
    let (status, body) = exchange(addr, "POST", "/query", &query_body(0, 5, &[1]));
    assert_eq!(status, 200);
    assert_eq!(json_u64(&body, "generation"), Some(gen_new));
    assert!(
        server.cache().counters().stale_drops >= 1,
        "old-generation plans were invalidated, not re-served"
    );
    server.shutdown();
}

/// Minimal structural JSON validator — objects, arrays, strings, numbers,
/// literals — enough to prove a served body is well-formed JSON without a
/// JSON dependency in the test (the client must share no code with the
/// server's renderer).
fn json_is_well_formed(text: &str) -> bool {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && b[i].is_ascii_whitespace() {
            i += 1;
        }
        i
    }
    fn string(b: &[u8], i: usize) -> Option<usize> {
        if b.get(i) != Some(&b'"') {
            return None;
        }
        let mut i = i + 1;
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'"' => return Some(i + 1),
                _ => i += 1,
            }
        }
        None
    }
    fn value(b: &[u8], i: usize) -> Option<usize> {
        let i = skip_ws(b, i);
        match b.get(i)? {
            b'{' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Some(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return None;
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b'}' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Some(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b']' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'"' => string(b, i),
            b't' => b[i..].starts_with(b"true").then(|| i + 4),
            b'f' => b[i..].starts_with(b"false").then(|| i + 5),
            b'n' => b[i..].starts_with(b"null").then(|| i + 4),
            _ => {
                let start = i;
                let mut i = i;
                while i < b.len() && matches!(b[i], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    i += 1;
                }
                (i > start).then_some(i)
            }
        }
    }
    let b = text.as_bytes();
    value(b, 0).map(|end| skip_ws(b, end) == b.len()) == Some(true)
}

#[test]
fn metrics_exposition_parses_with_cumulative_histograms() {
    // The observability acceptance half for `/metrics`: after real traffic,
    // the document must survive the strict exposition parser (every family
    // declared exactly once, every histogram with cumulative buckets, a
    // `+Inf` terminal, and a matching `_count`), serve at least three
    // histogram families, and the request histogram must have counted the
    // traffic we just sent.
    let (_graph, server) = boot(2);
    let addr = server.addr();
    for i in 0..4u32 {
        let (status, _) = exchange(
            addr,
            "POST",
            "/query",
            &query_body(i % 6, (i + 3) % 6, &[1]),
        );
        assert_eq!(status, 200);
    }
    let batch = format!(
        "{{\"queries\":[{}]}}",
        String::from_utf8(query_body(0, 5, &[1])).unwrap()
    );
    let (status, _) = exchange(addr, "POST", "/batch", batch.as_bytes());
    assert_eq!(status, 200);

    let (status, text) = exchange(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let expo = rlc::obs::expo::parse(&text)
        .unwrap_or_else(|error| panic!("the exposition must parse: {error}\n{text}"));

    let histograms = expo.histogram_families();
    assert!(
        histograms.len() >= 3,
        "at least three histogram families, got {histograms:?}"
    );
    for family in [
        "rlc_serve_request_seconds",
        "rlc_serve_queue_wait_seconds",
        "rlc_serve_parse_seconds",
        "rlc_serve_execute_seconds",
        "rlc_serve_write_seconds",
    ] {
        assert!(histograms.contains(&family), "missing family {family}");
    }
    // The gauges promised by the satellite: kernel lane, generation, and
    // resident index bytes.
    assert_eq!(
        expo.families
            .get("rlc_serve_index_bytes")
            .map(String::as_str),
        Some("gauge")
    );
    assert_eq!(
        expo.families
            .get("rlc_serve_kernel_info")
            .map(String::as_str),
        Some("gauge")
    );
    assert!(expo.value("rlc_serve_generation").is_some());
    let index_bytes = expo
        .samples
        .iter()
        .find(|s| s.name == "rlc_serve_index_bytes")
        .expect("index footprint gauge");
    assert!(index_bytes.value > 0.0, "the index is resident");
    assert!(
        index_bytes
            .labels
            .iter()
            .any(|(k, v)| k == "kind" && v == "rlc"),
        "the footprint gauge names the epoch kind"
    );
    let kernel_info = expo
        .samples
        .iter()
        .find(|s| s.name == "rlc_serve_kernel_info")
        .expect("kernel lane gauge");
    assert!(
        kernel_info
            .labels
            .iter()
            .any(|(k, v)| k == "lane" && v == kernel_name()),
        "the lane label matches the runtime dispatch"
    );
    // The request histogram really observed the five requests above.
    let query_count = expo
        .samples
        .iter()
        .find(|s| {
            s.name == "rlc_serve_request_seconds_count"
                && s.labels.iter().any(|(k, v)| k == "route" && v == "query")
        })
        .map(|s| s.value)
        .unwrap_or(0.0);
    assert!(query_count >= 4.0, "route=query counted {query_count}");
    server.shutdown();
}

#[test]
fn admin_explain_serves_trace_trees_through_the_sharded_stitcher() {
    // The EXPLAIN acceptance: a server over a two-shard hash-partitioned
    // epoch with every batch sampled must (a) answer exactly like an
    // unsharded engine and (b) serve, on `GET /admin/explain`, a valid
    // JSON tree per sampled batch whose query nodes carry the cache-hit
    // flag, the shard route (with cross-shard pairs really routed through
    // the stitcher), the kernel lane, and the per-phase wall-clock.
    use rlc::shard::{ShardBuildConfig, ShardedIndex};

    let graph = fig2();
    let shard_config =
        ShardBuildConfig::new(2, 2).with_strategy(PartitionStrategy::Hash { seed: 5 });
    let (sharded, _) = ShardedIndex::build(&graph, &shard_config).unwrap();
    assert!(
        !sharded.cut_edges().is_empty(),
        "the hash split must cut Fig. 2 so stitched routes exist"
    );
    let server = Server::start(
        ServeConfig {
            explain_capacity: 64,
            explain_sample: 1,
            ..ServeConfig::default()
        },
        Epoch::sharded(Arc::clone(&graph), sharded),
    )
    .unwrap();
    let addr = server.addr();

    // Tracing every batch must not change a single answer.
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let engine = IndexEngine::new(&graph, &index);
    for source in 0..6u32 {
        for target in 0..6u32 {
            let expected = engine
                .evaluate(&Query::rlc(source, target, vec![Label(1)]).unwrap())
                .unwrap();
            let (status, body) =
                exchange(addr, "POST", "/query", &query_body(source, target, &[1]));
            assert_eq!(status, 200, "{body}");
            assert!(
                body.contains(&format!("\"answer\":{expected}")),
                "({source},{target}): traced sharded answer must equal direct evaluation: {body}"
            );
        }
    }

    // An unparseable `last` is a 400, not a guess.
    let (status, _) = exchange(addr, "GET", "/admin/explain?last=bogus", b"");
    assert_eq!(status, 400);

    let (status, body) = exchange(addr, "GET", "/admin/explain?last=64", b"");
    assert_eq!(status, 200, "{body}");
    assert!(
        json_is_well_formed(&body),
        "the explain body must be valid JSON: {body}"
    );
    assert!(body.starts_with("{\"ok\":true,\"count\":"), "{body}");
    assert!(body.contains("\"name\":\"batch\""), "{body}");
    assert!(
        body.contains("\"origin\":\"microbatch\""),
        "traces come from the sampled micro-batcher: {body}"
    );
    assert!(body.contains("\"generation\":"), "{body}");
    assert!(
        body.contains(&format!("\"kernel_lane\":\"{}\"", kernel_name())),
        "the trace names the runtime kernel lane: {body}"
    );
    for phase in ["prepare_ns", "execute_ns", "scatter_ns"] {
        assert!(
            body.contains(&format!("\"{phase}\":")),
            "per-phase timing {phase} missing: {body}"
        );
    }
    assert!(
        body.contains("\"cache_hit\":\"true\""),
        "the repeated constraint must hit the shared plan cache: {body}"
    );
    assert!(
        body.contains("\"route\":\"stitched\""),
        "a cross-shard pair must be routed through the stitcher: {body}"
    );
    assert!(
        body.contains("\"route\":\"local\""),
        "a same-shard pair must take the local fast path: {body}"
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_answers_everything_admitted() {
    let graph = fig2();
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let config = ServeConfig {
        threads: 2,
        batch_window: Duration::from_millis(10),
        ..ServeConfig::default()
    };
    let server = Server::start(config, Epoch::rlc(Arc::clone(&graph), index)).unwrap();
    let addr = server.addr();

    let results = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..8)
            .map(|i| {
                scope.spawn(move || {
                    exchange_raw(
                        addr,
                        "POST",
                        "/query",
                        &query_body(i % 6, (i + 5) % 6, &[1]),
                    )
                })
            })
            .collect();
        // Give the requests a moment to be admitted, then shut down while
        // some are still in flight; shutdown must drain, not drop, them.
        std::thread::sleep(Duration::from_millis(30));
        server.shutdown();
        clients
            .into_iter()
            .map(|c| c.join().expect("client thread"))
            .collect::<Vec<_>>()
    });

    let mut answered = 0usize;
    for result in results {
        match result {
            Ok(raw) => {
                if raw.is_empty() {
                    // Accepted by the OS backlog but never admitted before
                    // shutdown: a clean EOF, never a torn response.
                    continue;
                }
                let (status, body) = parse_response(&raw).expect("complete response");
                assert_eq!(status, 200, "admitted requests get full answers: {body}");
                assert!(body.contains("\"answer\":"), "{body}");
                answered += 1;
            }
            Err(_) => {
                // Connection refused after the listener closed — also clean.
            }
        }
    }
    assert!(
        answered >= 1,
        "at least the in-flight requests were admitted and answered"
    );
}
