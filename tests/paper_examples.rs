//! Integration tests tying the implementation back to the worked examples of
//! the paper: Example 1 (Fig. 1), Examples 2–6 (Fig. 2, Table II), and the
//! definitions of §III.

use rlc::graph::examples::{fig1_graph, fig2_graph};
use rlc::index::repeats::{kernel_tail, minimum_repeat};
use rlc::prelude::*;

#[test]
fn example1_fraud_queries_on_fig1() {
    let graph = fig1_graph();
    let index = RlcIndex::build(&graph, 3);

    // Q1(A14, A19, (debits, credits)+) is true thanks to the path
    // A14 -debits-> E15 -credits-> A17 -debits-> E18 -credits-> A19.
    let q1 = RlcQuery::from_names(&graph, "A14", "A19", &["debits", "credits"]).unwrap();
    assert!(index.query(&q1));

    // Q2(P10, P13, (knows, knows, worksFor)+) is false.
    let q2 = RlcQuery::from_names(&graph, "P10", "P13", &["knows", "knows", "worksFor"]).unwrap();
    assert!(!index.query(&q2));
}

#[test]
fn section3_concise_label_sequences_on_fig1() {
    // §III-C: S2(P12, P16) = {(knows), (knows, worksFor)}.
    let graph = fig1_graph();
    let index = RlcIndex::build(&graph, 2);
    let p12 = graph.vertex_id("P12").unwrap();
    let p16 = graph.vertex_id("P16").unwrap();
    let knows = graph.labels().resolve("knows").unwrap();
    let works_for = graph.labels().resolve("worksFor").unwrap();
    let holds = graph.labels().resolve("holds").unwrap();

    assert!(index.reaches(p12, p16, &[knows]));
    assert!(index.reaches(p12, p16, &[knows, works_for]));
    assert!(!index.reaches(p12, p16, &[works_for]));
    assert!(!index.reaches(p12, p16, &[holds]));
    assert!(!index.reaches(p12, p16, &[works_for, knows]));
}

#[test]
fn section3_minimum_repeat_of_fig1_path() {
    // §III-A: the path P10 -knows-> P11 -worksFor-> P12 -knows-> P13
    // -worksFor-> P16 has MR (knows, worksFor).
    let graph = fig1_graph();
    let knows = graph.labels().resolve("knows").unwrap();
    let works_for = graph.labels().resolve("worksFor").unwrap();
    let seq = vec![knows, works_for, knows, works_for];
    assert_eq!(minimum_repeat(&seq), &[knows, works_for][..]);
}

#[test]
fn example2_kernel_of_knows_power() {
    // §IV Example 2 / Definition 3: (knows, knows, knows, knows) has kernel
    // (knows) and tail ε.
    let graph = fig1_graph();
    let knows = graph.labels().resolve("knows").unwrap();
    let seq = vec![knows; 4];
    let (kernel, tail) = kernel_tail(&seq).unwrap();
    assert_eq!(kernel, &[knows][..]);
    assert!(tail.is_empty());
}

#[test]
fn example4_queries_on_fig2() {
    let graph = fig2_graph();
    let index = RlcIndex::build(&graph, 2);

    let q1 = RlcQuery::from_names(&graph, "v3", "v6", &["l2", "l1"]).unwrap();
    assert!(index.query(&q1), "Example 4: Q1(v3, v6, (l2,l1)+) is true");

    let q2 = RlcQuery::from_names(&graph, "v1", "v2", &["l2", "l1"]).unwrap();
    assert!(index.query(&q2), "Example 4: Q2(v1, v2, (l2,l1)+) is true");

    let q3 = RlcQuery::from_names(&graph, "v1", "v3", &["l1"]).unwrap();
    assert!(!index.query(&q3), "Example 4: Q3(v1, v3, (l1)+) is false");

    // v1 does reach v3 (e.g. under (l2)+), only the (l1)+ constraint fails.
    let reach = RlcQuery::from_names(&graph, "v1", "v3", &["l2"]).unwrap();
    assert!(index.query(&reach));
}

#[test]
fn table2_entry_content_is_reflected_in_queries() {
    // Spot-check reachability facts that Table II's entries encode.
    let graph = fig2_graph();
    let index = RlcIndex::build(&graph, 2);
    let queries_true = [
        ("v1", "v1", vec!["l2"]),       // (v1, l2) ∈ Lout(v1): l2-cycle at v1
        ("v1", "v1", vec!["l1"]),       // l1-cycle through v2, v5
        ("v1", "v1", vec!["l2", "l1"]), // (l2,l1)-cycle
        ("v4", "v3", vec!["l1", "l2"]), // (v3,(l1,l2)) ∈ Lout(v4)
        ("v5", "v3", vec!["l1", "l2"]), // (v3,(l1,l2)) ∈ Lout(v5)
        ("v1", "v4", vec!["l2"]),       // (v1,l2) ∈ Lin(v4)
        ("v1", "v5", vec!["l1", "l2"]), // (v1,(l1,l2)) ∈ Lin(v5)
        ("v2", "v5", vec!["l2"]),       // (v2,l2) ∈ Lin(v5)
        ("v3", "v6", vec!["l2", "l3"]), // (v3,(l2,l3)) ∈ Lin(v6)
        ("v4", "v6", vec!["l3"]),       // (v4,l3) ∈ Lin(v6)
        ("v3", "v3", vec!["l1", "l2"]), // (v3,(l1,l2)) ∈ Lout(v3)
    ];
    for (s, t, labels) in queries_true {
        let q = RlcQuery::from_names(&graph, s, t, &labels.to_vec()).unwrap();
        assert!(index.query(&q), "expected true: ({s}, {t}, {labels:?})");
    }
    let queries_false = [
        ("v6", "v1", vec!["l1"]), // Lout(v6) is empty: v6 reaches nothing
        ("v1", "v6", vec!["l3"]), // no l3-only path from v1
        ("v2", "v4", vec!["l1"]), // no l1-only path v2 to v4
        ("v5", "v2", vec!["l2"]), // no l2-only path v5 to v2
    ];
    for (s, t, labels) in queries_false {
        let q = RlcQuery::from_names(&graph, s, t, &labels.to_vec()).unwrap();
        assert!(!index.query(&q), "expected false: ({s}, {t}, {labels:?})");
    }
}

#[test]
fn fig2_index_size_matches_table2_ballpark_and_is_condensed() {
    let graph = fig2_graph();
    let index = RlcIndex::build(&graph, 2);
    let entries = index.entry_count();
    assert!(
        (18..=26).contains(&entries),
        "Table II has 22 entries; got {entries}"
    );
    assert!(index.is_condensed(), "Theorem 2: index must be condensed");
    // Lin(v1) is empty and Lout(v6) is empty in Table II.
    let v1 = graph.vertex_id("v1").unwrap();
    let v6 = graph.vertex_id("v6").unwrap();
    assert!(index.lin(v1).is_empty(), "Lin(v1) should be empty");
    assert!(index.lout(v6).is_empty(), "Lout(v6) should be empty");
}

#[test]
fn definition1_rejects_non_minimum_repeat_constraints() {
    // Queries with L ≠ MR(L), e.g. (knows, knows)+, are outside the class
    // (they impose the even-path constraint).
    let graph = fig1_graph();
    let knows = graph.labels().resolve("knows").unwrap();
    assert!(RlcQuery::new(0, 1, vec![knows, knows]).is_err());
    assert!(RlcQuery::new(0, 1, vec![knows]).is_ok());
}
