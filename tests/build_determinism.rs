//! Determinism differential test for the block-parallel index build.
//!
//! The parallel build promises a result **byte-identical** to the sequential
//! build: the merge replays every pruning decision (PR1/PR2/duplicate, and
//! the PR3 cuts they drive) in access-id order against the live index, so
//! thread count, block size, and worker scheduling must never leak into the
//! produced index. This test pins that promise on seeded random graphs
//! across ordering strategies, thread counts, block sizes, and kernel-search
//! strategies — comparing serialized bytes and build counters exactly.

use rlc::graph::generate::{barabasi_albert, erdos_renyi, SyntheticConfig};
use rlc::index::{build_index, BuildConfig, BuildStats, KbsStrategy, OrderingStrategy};
use rlc::prelude::*;
use std::time::Duration;

/// Serialized index plus stats with the timing field zeroed.
fn fingerprint(graph: &LabeledGraph, config: &BuildConfig) -> (Vec<u8>, BuildStats) {
    let (index, stats) = build_index(graph, config);
    (
        index.to_bytes(),
        BuildStats {
            duration: Duration::ZERO,
            ..stats
        },
    )
}

/// Asserts byte-identical indexes and identical counters for the parallel
/// build at 1, 2 and 8 threads against the sequential baseline.
fn assert_deterministic(graph: &LabeledGraph, base: BuildConfig) {
    let sequential = fingerprint(graph, &base);
    for threads in [1usize, 2, 8] {
        let parallel = fingerprint(graph, &base.with_threads(threads));
        assert_eq!(
            parallel.0, sequential.0,
            "serialized index diverges at {threads} threads ({base:?})"
        );
        assert_eq!(
            parallel.1, sequential.1,
            "build stats diverge at {threads} threads ({base:?})"
        );
    }
}

#[test]
fn parallel_build_matches_sequential_across_ordering_strategies() {
    let graph = erdos_renyi(&SyntheticConfig::new(600, 3.0, 4, 11));
    for ordering in [
        OrderingStrategy::InOutDegree,
        OrderingStrategy::VertexId,
        OrderingStrategy::Random(0xF00D),
    ] {
        assert_deterministic(&graph, BuildConfig::new(2).with_ordering(ordering));
    }
}

#[test]
fn parallel_build_matches_sequential_across_seeds() {
    for seed in [1u64, 7, 23] {
        let graph = erdos_renyi(&SyntheticConfig::new(400, 4.0, 3, seed));
        assert_deterministic(&graph, BuildConfig::new(2));
    }
}

#[test]
fn parallel_build_matches_sequential_on_scale_free_graph_with_k3() {
    // Hub-heavy degree distribution plus k = 3: deeper phase-1 enumeration
    // and more kernel-BFS phases per root.
    let graph = barabasi_albert(&SyntheticConfig::new(300, 3.0, 3, 5));
    assert_deterministic(&graph, BuildConfig::new(3));
}

#[test]
fn parallel_build_matches_sequential_under_lazy_strategy() {
    let graph = erdos_renyi(&SyntheticConfig::new(300, 3.0, 4, 9));
    assert_deterministic(&graph, BuildConfig::new(2).with_strategy(KbsStrategy::Lazy));
}

#[test]
fn parallel_build_matches_sequential_without_pruning() {
    // With PR1–PR3 disabled the speculative exploration is exact, but the
    // merge must still reproduce duplicate suppression and intern order.
    let graph = erdos_renyi(&SyntheticConfig::new(150, 2.5, 3, 13));
    assert_deterministic(&graph, BuildConfig::new(2).without_pruning());
}

#[test]
fn block_size_never_changes_the_result() {
    let graph = erdos_renyi(&SyntheticConfig::new(300, 3.0, 4, 17));
    let sequential = fingerprint(&graph, &BuildConfig::new(2));
    for block_size in [1usize, 5, 64, 100_000] {
        let config = BuildConfig::new(2)
            .with_threads(2)
            .with_block_size(block_size);
        assert_eq!(
            fingerprint(&graph, &config),
            sequential,
            "block size {block_size} changed the result"
        );
    }
}

#[test]
fn parallel_build_produces_condensed_verified_index() {
    // Beyond equality with the sequential build, the parallel result must
    // satisfy the paper's own invariant (Theorem 2: no redundant entries).
    let graph = erdos_renyi(&SyntheticConfig::new(200, 3.0, 4, 29));
    let (index, stats) = build_index(&graph, &BuildConfig::new(2).with_threads(4));
    assert!(stats.inserted > 0);
    assert!(index.is_condensed());
}
