//! The boundary subsystem: portal vertices and per-shard reachability
//! expansion.
//!
//! A *portal* is a shard-local endpoint of a cut edge — the only places a
//! cross-shard path can enter or leave a shard. The stitcher
//! ([`crate::engine::ShardedEngine`]) moves between shards exclusively
//! through cut edges, and inside a shard it skips over arbitrarily long
//! stretches of whole block repetitions in one hop using that shard's RLC
//! index. The hop needs *enumeration* — "all vertices reachable from `v`
//! under `mr+` within this shard" — which the index's pair-query form
//! (`query(s, t, mr+)`) does not provide directly. [`ReachExpander`]
//! provides it by inverting the index's `Lin` sets once per shard:
//!
//! By Definition 4, `query(v, w, mr)` holds iff `(w, mr) ∈ Lout(v)`, or
//! `(v, mr) ∈ Lin(w)`, or some hub `x` has `(x, mr) ∈ Lout(v)` and
//! `(x, mr) ∈ Lin(w)`. With an inverted map `inv_lin[(h, mr)] = {w : (h,
//! mr) ∈ Lin(w)}`, the target set of `v` is the union of the hubs listed in
//! `Lout(v)` with `inv_lin[(v, mr)]` and `inv_lin[(hub, mr)]` for each of
//! those hubs — every case of the definition, so the enumeration is exactly
//! the set of vertices the index can prove reachable (which, by the index's
//! completeness theorem, is exactly the set reachable under `mr+` inside
//! the shard).

use rlc_core::catalog::MrId;
use rlc_core::index::RlcIndex;
use rlc_graph::{Edge, Partition, VertexId};
use std::collections::{HashMap, HashSet};

/// Per-shard target enumeration under an interned minimum repeat: the
/// index's `Lin` sets inverted by `(hub, mr)`. Built once per shard at
/// [`crate::ShardedIndex`] construction (and after a shard rebuild); the
/// size is exactly the shard's `Lin` entry count.
#[derive(Debug, Clone)]
pub struct ReachExpander {
    inv_lin: HashMap<(VertexId, MrId), Vec<VertexId>>,
}

impl ReachExpander {
    /// Inverts the `Lin` sets of `index` (vertex ids are shard-local).
    pub fn new(index: &RlcIndex) -> Self {
        let mut inv_lin: HashMap<(VertexId, MrId), Vec<VertexId>> = HashMap::new();
        for v in 0..index.vertex_count() as VertexId {
            for entry in index.lin(v) {
                inv_lin.entry((entry.hub, entry.mr)).or_default().push(v);
            }
        }
        ReachExpander { inv_lin }
    }

    /// Calls `visit` for every shard-local vertex reachable from `v` under
    /// `mr+` within the shard (duplicates possible — callers dedupe through
    /// their visited sets).
    ///
    /// `expanded` amortizes one search's hop work: many vertices share
    /// hubs, and a hub's inverted-`Lin` list is the same no matter which
    /// `v` reaches it, so a list already walked earlier in the **same
    /// search under the same `mr`** is skipped — every target on it was
    /// visited then. (The hub itself is still visited on every call: it is
    /// a reachable target of `v` in its own right.) Across calls sharing
    /// one `expanded` set, the union of visited targets therefore still
    /// equals the union of the per-vertex target sets, while total list
    /// work is bounded by the shard's index size instead of
    /// `|V| × |targets|`. Pass a fresh set per call to enumerate one
    /// vertex's full target set.
    pub fn for_each_target(
        &self,
        index: &RlcIndex,
        v: VertexId,
        mr: MrId,
        expanded: &mut HashSet<VertexId>,
        mut visit: impl FnMut(VertexId),
    ) {
        // Case 2 of Definition 4, Lin side: (v, mr) ∈ Lin(w). The owner v
        // doubles as the hub key of its own inverted list.
        if expanded.insert(v) {
            if let Some(targets) = self.inv_lin.get(&(v, mr)) {
                for &w in targets {
                    visit(w);
                }
            }
        }
        for entry in index.lout(v) {
            if entry.mr != mr {
                continue;
            }
            // Case 2, Lout side: the hub itself is reachable…
            visit(entry.hub);
            // …and Case 1: every w whose Lin shares the hub. (v ⇝ hub and
            // hub ⇝ w under mr+ compose to v ⇝ w under mr+.)
            if expanded.insert(entry.hub) {
                if let Some(targets) = self.inv_lin.get(&(entry.hub, mr)) {
                    for &w in targets {
                        visit(w);
                    }
                }
            }
        }
    }

    /// Approximate resident heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        let key = std::mem::size_of::<(VertexId, MrId)>();
        let header = std::mem::size_of::<Vec<VertexId>>();
        self.inv_lin
            .values()
            .map(|v| key + header + v.len() * std::mem::size_of::<VertexId>() + 16)
            .sum()
    }
}

/// The portal vertices of one shard, in local ids: `entries` are targets of
/// incoming cut edges (where cross-shard paths land), `exits` are sources of
/// outgoing cut edges (where they leave). Sorted and deduplicated.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortalSet {
    /// Local ids of cut-edge targets inside this shard.
    pub entries: Vec<VertexId>,
    /// Local ids of cut-edge sources inside this shard.
    pub exits: Vec<VertexId>,
}

impl PortalSet {
    /// Collects the portals of `shard` from the partition's cut edges.
    pub fn from_cut_edges(partition: &Partition, shard: usize, cut_edges: &[Edge]) -> Self {
        let mut entries = Vec::new();
        let mut exits = Vec::new();
        for edge in cut_edges {
            if partition.shard_of(edge.source) == shard {
                exits.push(partition.locate(edge.source).1);
            }
            if partition.shard_of(edge.target) == shard {
                entries.push(partition.locate(edge.target).1);
            }
        }
        entries.sort_unstable();
        entries.dedup();
        exits.sort_unstable();
        exits.dedup();
        PortalSet { entries, exits }
    }

    /// Whether cross-shard paths can leave the shard.
    pub fn has_exits(&self) -> bool {
        !self.exits.is_empty()
    }

    /// Whether cross-shard paths can enter the shard.
    pub fn has_entries(&self) -> bool {
        !self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_core::{build_index, BuildConfig, RlcQuery};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
    use rlc_graph::{Label, PartitionStrategy};
    use std::collections::HashSet;

    #[test]
    fn expander_enumerates_exactly_the_index_target_sets() {
        // The enumeration must match the pair query for every (v, w, mr):
        // no missing target (the stitcher would lose paths), no extra
        // target (it would fabricate reachability).
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 5));
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let expander = ReachExpander::new(&index);
        for (mr, seq) in index.catalog().iter().collect::<Vec<_>>() {
            for v in g.vertices() {
                let mut enumerated: HashSet<VertexId> = HashSet::new();
                // A fresh `expanded` set per vertex: the full target set.
                expander.for_each_target(&index, v, mr, &mut HashSet::new(), |w| {
                    enumerated.insert(w);
                });
                for w in g.vertices() {
                    let q = RlcQuery::new(v, w, seq.to_vec()).unwrap();
                    assert_eq!(
                        enumerated.contains(&w),
                        index.query(&q),
                        "target enumeration mismatch for ({v}, {w}, {seq:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_expanded_set_still_covers_the_union_of_target_sets() {
        // The hop-amortization contract: enumerating from many vertices
        // through ONE shared `expanded` set must visit, in union, exactly
        // the union of the per-vertex target sets (hub lists are walked
        // once, but no target — and no hub — is lost).
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 5));
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let expander = ReachExpander::new(&index);
        for (mr, _) in index.catalog().iter().collect::<Vec<_>>() {
            let mut shared_union: HashSet<VertexId> = HashSet::new();
            let mut expanded: HashSet<VertexId> = HashSet::new();
            let mut fresh_union: HashSet<VertexId> = HashSet::new();
            for v in g.vertices() {
                expander.for_each_target(&index, v, mr, &mut expanded, |w| {
                    shared_union.insert(w);
                });
                expander.for_each_target(&index, v, mr, &mut HashSet::new(), |w| {
                    fresh_union.insert(w);
                });
            }
            assert_eq!(shared_union, fresh_union, "mr {mr:?}");
        }
    }

    #[test]
    fn portals_are_the_cut_edge_endpoints() {
        let mut b = rlc_graph::GraphBuilder::new();
        // Vertices 0..4; edges 0→1 (intra with contiguous 2-shard split),
        // 1→2 (cut), 2→3 (intra), 3→0 (cut).
        for (s, t) in [(0u32, 1u32), (1, 2), (2, 3), (3, 0)] {
            b.add_edge(s, Label(0), t);
        }
        let g = b.build();
        let p = Partition::new(&g, PartitionStrategy::Contiguous, 2).unwrap();
        let cut = p.cut_edges(&g);
        assert_eq!(cut.len(), 2);
        let shard0 = PortalSet::from_cut_edges(&p, 0, &cut);
        let shard1 = PortalSet::from_cut_edges(&p, 1, &cut);
        // Shard 0 owns globals {0, 1}: vertex 1 (local 1) exits via 1→2,
        // vertex 0 (local 0) is entered via 3→0.
        assert_eq!(shard0.exits, vec![1]);
        assert_eq!(shard0.entries, vec![0]);
        // Shard 1 owns globals {2, 3}: vertex 3 (local 1) exits via 3→0,
        // vertex 2 (local 0) is entered via 1→2.
        assert_eq!(shard1.exits, vec![1]);
        assert_eq!(shard1.entries, vec![0]);
        assert!(shard0.has_exits() && shard0.has_entries());
    }

    #[test]
    fn expander_memory_is_positive_for_nonempty_indexes() {
        let g = erdos_renyi(&SyntheticConfig::new(40, 3.0, 3, 9));
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        if index.entry_count() > 0 {
            assert!(ReachExpander::new(&index).memory_bytes() > 0);
        }
    }
}
