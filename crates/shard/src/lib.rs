//! # rlc-shard
//!
//! A **vertex-partitioned sharded engine** for the RLC index reproduction:
//! the route to graphs whose index does not fit one machine's budget.
//!
//! The graph is cut into `S` vertex-disjoint shards
//! ([`rlc_graph::partition`]: contiguous, hash, or degree-aware), one RLC
//! index is built per shard subgraph (fanned out across rayon workers), and
//! the cut edges — the only places a path can change shards — drive a
//! *boundary-hub stitcher* that answers cross-shard queries exactly:
//! intra-shard hop (one whole-repetition jump through the shard's index) →
//! portal → cut edge → portal → intra-shard hop, as a product search over
//! the prepared constraint's block structure. Same-shard pairs short-cut
//! through the local index alone whenever that is provably sufficient.
//!
//! [`ShardedEngine`] implements the full
//! [`ReachabilityEngine`](rlc_core::ReachabilityEngine) surface —
//! prepare/execute, grouped evaluation, plan identity — so everything built
//! on the engine seam (the `BatchPlan` batch planner, the `PlanCache`
//! cross-batch cache, the differential harness) drives a sharded deployment
//! unchanged. Its `plan_identity()` folds every shard's construction-time
//! generation stamp, so rebuilding **any** shard invalidates cached plans,
//! extending PR 4's ABA discipline to the aggregate.
//!
//! Sharded indexes persist as `RSH1` manifests (partition map, cut edges,
//! per-shard `RLC2` blob offsets and digests) with the same hardened
//! validation as the other binary formats in the workspace.
//!
//! ## Quick example
//!
//! ```
//! use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
//! use rlc_core::{Query, ReachabilityEngine};
//! use rlc_shard::{ShardBuildConfig, ShardedEngine, ShardedIndex};
//! use rlc_graph::Label;
//!
//! let graph = erdos_renyi(&SyntheticConfig::new(200, 3.0, 3, 42));
//! let (sharded, _stats) = ShardedIndex::build(&graph, &ShardBuildConfig::new(2, 4)).unwrap();
//! let engine = ShardedEngine::new(&graph, &sharded);
//! let q = Query::rlc(0, 7, vec![Label(0)]).unwrap();
//! let answer = engine.evaluate(&q).unwrap();
//! // Identical to any unsharded engine's answer — asserted workspace-wide
//! // by the engine differential and the shard_scaling bench.
//! # let _ = answer;
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod boundary;
pub mod engine;
pub mod index;
mod persist;

pub use boundary::{PortalSet, ReachExpander};
pub use engine::{ShardedEngine, StitchCounts};
pub use index::{GraphShard, ShardBuildConfig, ShardStats, ShardedIndex, ShardedStats};
