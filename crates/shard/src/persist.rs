//! The `RSH1` manifest format: persistent form of a [`ShardedIndex`].
//!
//! A manifest carries the shard count and recursive `k`, the vertex→shard
//! assignment, the cut-edge list, and — per shard — the offset, length, and
//! 64-bit FNV-1a digest of that shard's `RLC2` blob, followed by the blobs
//! themselves. Shard subgraphs are *not* serialized: they are re-derived
//! from the graph the loader is given, and the loader cross-validates the
//! manifest against that graph (vertex count, a whole-graph topology
//! digest covering every edge, recomputed cut edges) so a manifest paired
//! with the wrong graph — even one differing only in intra-shard edges —
//! is rejected instead of silently answering for a different topology.
//!
//! The loader applies the same hardening discipline as `RLC2`/`ETC1`/`RLG1`:
//! untrusted size fields are bounded by the bytes actually present
//! (division form, immune to multiplication overflow) before any loop or
//! allocation they size, every id is range-checked, shard blob digests must
//! match, blob offsets must be exactly contiguous, and trailing bytes are
//! rejected. Loaded shard indexes mint fresh generation stamps (the `RLC2`
//! loader's contract), so a reloaded sharded index can never impersonate
//! the live one that wrote the manifest.

use crate::index::ShardedIndex;
use rayon::prelude::*;
use rlc_core::index::RlcIndex;
use rlc_graph::{Edge, Label, LabeledGraph, Partition};

/// Manifest magic, "RSH1".
const MAGIC: u32 = 0x5253_4831;

/// 64-bit FNV-1a over a byte slice — the per-shard blob digest. Not
/// cryptographic: it catches corruption and mix-ups, not adversaries (the
/// structural validation behind it is what bounds hostile input).
fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Streaming FNV-1a step, for digests over data that is never materialized
/// as one buffer (the whole-graph edge digest).
fn fnv1a64_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Digest of the indexed graph's full topology — vertex count and every
/// edge (source, label, target) in edge order. Stored in the manifest and
/// recomputed by the loader, so a manifest paired with a graph that
/// differs **anywhere** (including intra-shard edges, which the cut-edge
/// comparison alone cannot see) is rejected instead of silently answering
/// for the topology it was built on.
pub(crate) fn graph_digest(graph: &LabeledGraph) -> u64 {
    let mut hash = fnv1a64_update(
        0xcbf2_9ce4_8422_2325,
        &(graph.vertex_count() as u64).to_le_bytes(),
    );
    for edge in graph.edges() {
        hash = fnv1a64_update(hash, &edge.source.to_le_bytes());
        hash = fnv1a64_update(hash, &edge.label.0.to_le_bytes());
        hash = fnv1a64_update(hash, &edge.target.to_le_bytes());
    }
    hash
}

impl ShardedIndex {
    /// Serializes the sharded index to an `RSH1` manifest.
    ///
    /// Layout (all integers little-endian): header (`magic`, `k` as `u32`,
    /// shard count as `u32`, vertex count as `u64`, cut-edge count as
    /// `u64`, the whole-graph topology digest as `u64`), the per-vertex
    /// shard assignment (`u32` each), the cut edges
    /// (`u32` source, `u16` label, `u32` target each, in graph edge order),
    /// the shard table (`u64` blob offset, `u64` blob length, `u64` FNV-1a
    /// digest per shard), then the concatenated per-shard `RLC2` blobs.
    ///
    /// Returns an error instead of silently truncating when a field exceeds
    /// its on-disk width.
    pub fn try_to_bytes(&self) -> Result<Vec<u8>, String> {
        use bytes::BufMut;
        let blobs: Vec<Vec<u8>> = self
            .shards
            .iter()
            .map(|s| s.index.try_to_bytes())
            .collect::<Result<_, _>>()?;
        let mut buf = Vec::new();
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(
            u32::try_from(self.k).map_err(|_| format!("recursive k {} exceeds u32", self.k))?,
        );
        buf.put_u32_le(
            u32::try_from(self.shards.len())
                .map_err(|_| format!("shard count {} exceeds u32", self.shards.len()))?,
        );
        buf.put_u64_le(self.partition.vertex_count() as u64);
        buf.put_u64_le(self.cut_edges.len() as u64);
        buf.put_u64_le(self.graph_digest);
        for &shard in self.partition.assignment() {
            buf.put_u32_le(shard);
        }
        for edge in &self.cut_edges {
            buf.put_u32_le(edge.source);
            buf.put_u16_le(edge.label.0);
            buf.put_u32_le(edge.target);
        }
        let mut offset = 0u64;
        for blob in &blobs {
            buf.put_u64_le(offset);
            buf.put_u64_le(blob.len() as u64);
            buf.put_u64_le(fnv1a64(blob));
            offset = offset
                .checked_add(blob.len() as u64)
                .ok_or_else(|| "total shard blob size exceeds u64".to_owned())?;
        }
        for blob in &blobs {
            buf.extend_from_slice(blob);
        }
        Ok(buf)
    }

    /// Serializes, panicking on field overflow (theoretical; see
    /// [`ShardedIndex::try_to_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.try_to_bytes()
            // rlc-analyze: allow(panic-free-library) — documented panicking wrapper; the fallible twin is try_to_bytes, and the overflow is theoretical
            .expect("sharded index exceeds manifest field widths")
    }

    /// Deserializes an `RSH1` manifest against the graph it indexes.
    ///
    /// Every structural invariant is validated: magic, `k ≥ 1`, at least
    /// one shard, assignment entries in shard range, cut edges in vertex
    /// range and actually crossing shards, the cut-edge list **equal to the
    /// one recomputed from `graph` and the assignment** (which also pins
    /// the manifest to the right graph), contiguous blob offsets, matching
    /// digests, per-shard `RLC2` validation, shard `k` and vertex counts
    /// consistent with the header and the assignment, and no trailing
    /// bytes. Corrupt or mismatched input yields a descriptive error,
    /// never a silently wrong index.
    pub fn from_bytes(data: &[u8], graph: &LabeledGraph) -> Result<Self, String> {
        use bytes::Buf;
        let mut buf = data;
        let corrupt = |what: &str| -> String {
            format!("truncated or corrupt shard manifest while reading {what}")
        };
        let check = |ok: bool, what: &str| -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(corrupt(what))
            }
        };
        check(buf.remaining() >= 36, "header")?;
        let magic = buf.get_u32_le();
        if magic != MAGIC {
            return Err(format!("bad magic {magic:#x}, not an RSH1 shard manifest"));
        }
        let k = buf.get_u32_le() as usize;
        if k == 0 {
            return Err("corrupt shard manifest: recursive k must be at least 1".to_owned());
        }
        let shard_count = buf.get_u32_le() as usize;
        if shard_count == 0 {
            return Err("corrupt shard manifest: shard count must be at least 1".to_owned());
        }
        // The shard count sizes allocations (the partition's per-shard
        // lists, the shard table) before the table itself is reached:
        // bound it by the bytes present — every shard owes a 24-byte table
        // row — so a hostile header cannot drive a huge allocation.
        let shard_count = rlc_graph::checked_len(shard_count, 24, buf.remaining())
            .map_err(|_| corrupt("shard count"))?;
        let n = usize::try_from(buf.get_u64_le())
            .map_err(|_| "corrupt shard manifest: vertex count exceeds usize".to_owned())?;
        if n != graph.vertex_count() {
            return Err(format!(
                "shard manifest indexes {n} vertices but the supplied graph has {}; \
                 the manifest belongs to a different graph",
                graph.vertex_count()
            ));
        }
        let cut_count = usize::try_from(buf.get_u64_le())
            .map_err(|_| "corrupt shard manifest: cut-edge count exceeds usize".to_owned())?;
        // The whole-graph digest pins the manifest to the exact topology
        // it was built on: intra-shard edges are invisible to the cut-edge
        // comparison below, so without this a graph differing only inside
        // a shard would silently answer for the wrong topology.
        let stored_digest = buf.get_u64_le();
        if stored_digest != graph_digest(graph) {
            return Err(
                "shard manifest graph digest does not match the supplied graph; the manifest \
                 belongs to a different graph"
                    .to_owned(),
            );
        }
        // Size fields are untrusted: bound them by the bytes present before
        // any allocation or loop they size.
        let n = rlc_graph::checked_len(n, 4, buf.remaining())
            .map_err(|_| corrupt("shard assignment"))?;
        let assignment: Vec<u32> = (0..n).map(|_| buf.get_u32_le()).collect();
        let partition = Partition::from_assignment(shard_count, assignment)
            .map_err(|e| format!("corrupt shard manifest: {e}"))?;
        let cut_count = rlc_graph::checked_len(cut_count, 10, buf.remaining())
            .map_err(|_| corrupt("cut edge table"))?;
        let mut cut_edges = Vec::with_capacity(cut_count);
        for i in 0..cut_count {
            let source = buf.get_u32_le();
            let label = Label(buf.get_u16_le());
            let target = buf.get_u32_le();
            for id in [source, target] {
                if id as usize >= n {
                    return Err(format!(
                        "corrupt shard manifest: cut edge {i} references vertex {id}, out of \
                         range for {n} vertices"
                    ));
                }
            }
            let edge = Edge::new(source, label, target);
            if !partition.is_cut(&edge) {
                return Err(format!(
                    "corrupt shard manifest: cut edge {i} ({source} -> {target}) does not \
                     cross shards under the stored assignment"
                ));
            }
            cut_edges.push(edge);
        }
        // The cut-edge list must be exactly what the assignment implies for
        // this graph — this rejects missing/forged entries and, crucially,
        // a manifest paired with the wrong graph.
        if cut_edges != partition.cut_edges(graph) {
            return Err(
                "corrupt shard manifest: stored cut edges do not match the supplied graph \
                 under the stored assignment"
                    .to_owned(),
            );
        }
        let shard_count = rlc_graph::checked_len(shard_count, 24, buf.remaining())
            .map_err(|_| corrupt("shard table"))?;
        let mut expected_offset = 0u64;
        let mut spans: Vec<(usize, u64)> = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            let offset = buf.get_u64_le();
            let len = buf.get_u64_le();
            let digest = buf.get_u64_le();
            if offset != expected_offset {
                return Err(format!(
                    "corrupt shard manifest: shard {i} blob offset {offset} is not contiguous \
                     (expected {expected_offset})"
                ));
            }
            expected_offset = expected_offset.checked_add(len).ok_or_else(|| {
                "corrupt shard manifest: shard blob offsets overflow u64".to_owned()
            })?;
            let len = usize::try_from(len).map_err(|_| {
                "corrupt shard manifest: shard blob length exceeds usize".to_owned()
            })?;
            spans.push((len, digest));
        }
        let total: usize = spans.iter().map(|&(len, _)| len).sum();
        if buf.remaining() != total {
            return Err(format!(
                "corrupt shard manifest: blob section holds {} bytes but the shard table \
                 declares {total}",
                buf.remaining()
            ));
        }
        let mut blobs: Vec<(usize, &[u8], u64)> = Vec::with_capacity(shard_count);
        for (i, (len, digest)) in spans.into_iter().enumerate() {
            let blob = &buf[..len];
            buf = &buf[len..];
            blobs.push((i, blob, digest));
        }
        // Per-shard digesting and RLC2 validation are independent: fan them
        // out like the build path fans out the per-shard index builds.
        let loaded: Vec<Result<RlcIndex, String>> = blobs
            .par_iter()
            .map(|&(i, blob, digest)| {
                if fnv1a64(blob) != digest {
                    return Err(format!(
                        "corrupt shard manifest: shard {i} blob digest mismatch"
                    ));
                }
                let index = RlcIndex::from_bytes(blob)
                    .map_err(|e| format!("corrupt shard manifest: shard {i}: {e}"))?;
                if index.k() != k {
                    return Err(format!(
                        "corrupt shard manifest: shard {i} was built with k = {} but the header \
                         declares k = {k}",
                        index.k()
                    ));
                }
                if index.vertex_count() != partition.shard_vertices(i).len() {
                    return Err(format!(
                        "corrupt shard manifest: shard {i} index covers {} vertices but the \
                         assignment gives the shard {}",
                        index.vertex_count(),
                        partition.shard_vertices(i).len()
                    ));
                }
                Ok(index)
            })
            .collect();
        let indexes = loaded.into_iter().collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedIndex::assemble(
            graph, k, partition, cut_edges, indexes,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ShardedEngine;
    use crate::index::ShardBuildConfig;
    use rlc_core::engine::ReachabilityEngine;
    use rlc_core::Query;
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
    use rlc_graph::PartitionStrategy;

    fn sample() -> LabeledGraph {
        erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 11))
    }

    fn build(g: &LabeledGraph, shards: usize) -> ShardedIndex {
        let config =
            ShardBuildConfig::new(2, shards).with_strategy(PartitionStrategy::Hash { seed: 5 });
        ShardedIndex::build(g, &config).unwrap().0
    }

    #[test]
    fn round_trip_preserves_answers_and_is_canonical() {
        let g = sample();
        let sharded = build(&g, 3);
        let blob = sharded.try_to_bytes().unwrap();
        let restored = ShardedIndex::from_bytes(&blob, &g).unwrap();
        assert_eq!(restored.k(), sharded.k());
        assert_eq!(restored.shard_count(), sharded.shard_count());
        assert_eq!(restored.cut_edges(), sharded.cut_edges());
        assert_eq!(restored.partition(), sharded.partition());
        // Canonical: re-serializing yields identical bytes.
        assert_eq!(restored.try_to_bytes().unwrap(), blob);
        // Fresh generations: a reloaded sharded index never impersonates
        // the one that wrote the manifest.
        assert_ne!(restored.generation(), sharded.generation());
        // And the answers are identical, per pair and grouped.
        let live = ShardedEngine::new(&g, &sharded);
        let loaded = ShardedEngine::new(&g, &restored);
        for s in (0..g.vertex_count() as u32).step_by(5) {
            for t in (0..g.vertex_count() as u32).step_by(7) {
                for labels in [vec![Label(0)], vec![Label(0), Label(1)]] {
                    let q = Query::rlc(s, t, labels).unwrap();
                    assert_eq!(live.evaluate(&q), loaded.evaluate(&q));
                }
            }
        }
    }

    #[test]
    fn every_prefix_truncation_is_rejected() {
        let g = sample();
        let blob = build(&g, 2).try_to_bytes().unwrap();
        for len in 0..blob.len() {
            assert!(
                ShardedIndex::from_bytes(&blob[..len], &g).is_err(),
                "prefix of {len} bytes must be rejected"
            );
        }
    }

    #[test]
    fn header_corruptions_are_rejected_with_descriptive_errors() {
        let g = sample();
        let blob = build(&g, 2).try_to_bytes().unwrap();

        // Bad magic.
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert!(ShardedIndex::from_bytes(&bad, &g)
            .unwrap_err()
            .contains("magic"));

        // k = 0.
        let mut bad = blob.clone();
        bad[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(ShardedIndex::from_bytes(&bad, &g)
            .unwrap_err()
            .contains("k"));

        // Zero shards.
        let mut bad = blob.clone();
        bad[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(ShardedIndex::from_bytes(&bad, &g)
            .unwrap_err()
            .contains("shard count"));

        // Vertex count disagreeing with the graph.
        let mut bad = blob.clone();
        bad[12..20].copy_from_slice(&7u64.to_le_bytes());
        assert!(ShardedIndex::from_bytes(&bad, &g)
            .unwrap_err()
            .contains("different graph"));

        // Absurd cut-edge count: caught by the division-form bound before
        // any allocation.
        let mut bad = blob.clone();
        bad[20..28].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(ShardedIndex::from_bytes(&bad, &g).is_err());

        // Absurd shard count over an otherwise plausible body: must be
        // caught by the division-form bound before the per-shard partition
        // lists (or the shard table) are allocated — the old code reached
        // `Partition::from_assignment` first and allocated ~100 GiB of
        // empty Vecs from a ~50 KB hostile blob.
        let mut bad = blob.clone();
        bad[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = ShardedIndex::from_bytes(&bad, &g).unwrap_err();
        assert!(err.contains("shard count"), "unexpected error: {err}");

        // Trailing garbage.
        let mut bad = blob.clone();
        bad.push(0);
        assert!(ShardedIndex::from_bytes(&bad, &g).is_err());
    }

    #[test]
    fn bad_partition_maps_are_rejected() {
        let g = sample();
        let sharded = build(&g, 2);
        let blob = sharded.try_to_bytes().unwrap();
        // Assignment entries start at byte 36; point vertex 0 at shard 9.
        let mut bad = blob.clone();
        bad[36..40].copy_from_slice(&9u32.to_le_bytes());
        let err = ShardedIndex::from_bytes(&bad, &g).unwrap_err();
        assert!(err.contains("shard"), "unexpected error: {err}");
        // Flipping a vertex to the other shard desynchronizes the stored
        // cut edges from the recomputed ones.
        let original = u32::from_le_bytes(blob[36..40].try_into().unwrap());
        let mut bad = blob.clone();
        bad[36..40].copy_from_slice(&(1 - original).to_le_bytes());
        let err = ShardedIndex::from_bytes(&bad, &g).unwrap_err();
        assert!(
            err.contains("cut edge") || err.contains("shard"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn digest_mismatches_and_blob_corruption_are_rejected() {
        let g = sample();
        let sharded = build(&g, 2);
        let blob = sharded.try_to_bytes().unwrap();
        let table_start = 36 + 4 * g.vertex_count() + 10 * sharded.cut_edges().len();

        // Flip a digest byte: the (intact) blob no longer matches.
        let mut bad = blob.clone();
        bad[table_start + 16] ^= 0xFF;
        assert!(ShardedIndex::from_bytes(&bad, &g)
            .unwrap_err()
            .contains("digest"));

        // Flip a blob byte: the digest catches it first.
        let blob_start = table_start + 24 * sharded.shard_count();
        let mut bad = blob.clone();
        bad[blob_start + 8] ^= 0xFF;
        assert!(ShardedIndex::from_bytes(&bad, &g)
            .unwrap_err()
            .contains("digest"));

        // Non-contiguous offsets.
        let mut bad = blob.clone();
        bad[table_start..table_start + 8].copy_from_slice(&1u64.to_le_bytes());
        assert!(ShardedIndex::from_bytes(&bad, &g)
            .unwrap_err()
            .contains("contiguous"));
    }

    #[test]
    fn manifests_are_pinned_to_their_graph() {
        let g = sample();
        let other = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 12));
        assert_eq!(g.vertex_count(), other.vertex_count());
        let blob = build(&g, 3).try_to_bytes().unwrap();
        // Same vertex count, different topology: the whole-graph digest
        // cannot match.
        let err = ShardedIndex::from_bytes(&blob, &other).unwrap_err();
        assert!(err.contains("different graph"), "unexpected error: {err}");
    }

    #[test]
    fn graphs_differing_only_in_intra_shard_edges_are_rejected() {
        // The cut-edge comparison alone cannot see intra-shard changes;
        // the whole-graph digest must. Rebuild the same edge list plus one
        // extra edge between two vertices of the same shard.
        let g = sample();
        let sharded = build(&g, 2);
        let blob = sharded.try_to_bytes().unwrap();
        let p = sharded.partition();
        let (u, v) = {
            let shard0 = p.shard_vertices(0);
            (shard0[0], shard0[1])
        };
        let mut edges: Vec<rlc_graph::Edge> = g.edges().collect();
        edges.push(rlc_graph::Edge::new(u, Label(0), v));
        let modified = LabeledGraph::from_edges(g.vertex_count(), &edges, g.labels().clone(), None);
        assert_eq!(
            p.cut_edges(&modified),
            sharded.cut_edges(),
            "the added edge must be intra-shard for this test to bite"
        );
        let err = ShardedIndex::from_bytes(&blob, &modified).unwrap_err();
        assert!(err.contains("different graph"), "unexpected error: {err}");
        // Flipping the stored digest itself is likewise rejected.
        let mut bad = blob.clone();
        bad[28] ^= 0xFF;
        let err = ShardedIndex::from_bytes(&bad, &g).unwrap_err();
        assert!(err.contains("different graph"), "unexpected error: {err}");
    }

    #[test]
    fn hostile_blob_lengths_error_instead_of_panicking() {
        // Huge per-shard blob lengths must surface as errors: the u64
        // offset accumulation is checked, and the remaining-bytes equality
        // runs before any slice, so neither an overflowed sum nor an
        // oversized length can reach `&buf[..len]`.
        let g = sample();
        let sharded = build(&g, 2);
        let blob = sharded.try_to_bytes().unwrap();
        let table_start = 36 + 4 * g.vertex_count() + 10 * sharded.cut_edges().len();
        // Shard 0 claims 2^63 bytes; shard 1's offset must then be 2^63
        // with another 2^63 + extra of length, overflowing the u64 total.
        let mut bad = blob.clone();
        bad[table_start + 8..table_start + 16].copy_from_slice(&(1u64 << 63).to_le_bytes());
        bad[table_start + 24..table_start + 32].copy_from_slice(&(1u64 << 63).to_le_bytes());
        bad[table_start + 32..table_start + 40]
            .copy_from_slice(&((1u64 << 63) + 1024).to_le_bytes());
        assert!(ShardedIndex::from_bytes(&bad, &g).is_err());
        // A single oversized length (no overflow) fails the section-size
        // equality before slicing.
        let mut bad = blob.clone();
        let huge = (blob.len() as u64) * 2;
        bad[table_start + 8..table_start + 16].copy_from_slice(&huge.to_le_bytes());
        bad[table_start + 24..table_start + 32].copy_from_slice(&huge.to_le_bytes());
        assert!(ShardedIndex::from_bytes(&bad, &g).is_err());
    }

    #[test]
    fn single_shard_manifests_round_trip() {
        let g = sample();
        let sharded = build(&g, 1);
        assert!(sharded.cut_edges().is_empty());
        let blob = sharded.try_to_bytes().unwrap();
        let restored = ShardedIndex::from_bytes(&blob, &g).unwrap();
        assert_eq!(restored.shard_count(), 1);
        assert_eq!(restored.try_to_bytes().unwrap(), blob);
    }
}
