//! The sharded engine: full [`ReachabilityEngine`] surface over a
//! [`ShardedIndex`], with boundary-hub stitching for cross-shard queries.
//!
//! ## Routing
//!
//! * **Same-shard pairs** go to the local shard first: the shard's own RLC
//!   index answers the constraint over the shard subgraph (the hybrid
//!   index + traversal evaluation of the unsharded engines, via
//!   [`evaluate_blocks_with`]). A local *true* is globally true — every
//!   intra-shard path is a path of the full graph. A local *false* is
//!   definitive only when the shard is **closed** (no outgoing or no
//!   incoming cut edge: a same-shard path can never leave, or could never
//!   come back); otherwise the pair falls through to the stitcher, because
//!   the witnessing path may detour through other shards.
//! * **Cross-shard pairs** always go to the stitcher.
//!
//! ## The stitcher
//!
//! A cross-shard path under `B1+ ∘ … ∘ Bm+` decomposes into intra-shard
//! stretches joined by cut edges, and a cut edge may be crossed *mid-way*
//! through a block repetition — so the stitch search runs over `(vertex,
//! offset-within-block)` states, exactly the product the online
//! [`repetition closure`](rlc_core::repetition_closure) explores, with one
//! addition: whenever the search stands at a repetition boundary, it hops
//! over every whole-repetition stretch **inside the current shard in one
//! step**, by enumerating the shard index's target set
//! ([`crate::boundary::ReachExpander`]) instead of walking edges. The
//! edge-wise transitions keep the search exact (cut crossings at any
//! offset, partial stretches into portals), and the index hops land on the
//! boundary vertices — including the portals — from which the next cut
//! crossing departs: intra-shard hop → portal → cut edge → portal →
//! intra-shard hop. For single-label blocks every matching intra-shard
//! edge is itself a whole repetition the hop covers, so the edge-wise walk
//! is restricted to cut edges outright; for longer blocks the intra-shard
//! edge walk still runs (partial stretches can leave mid-repetition), so
//! the hops there serve to settle boundary states early rather than to
//! shrink the walk.
//!
//! Soundness: an index hop only adds vertices reachable inside one shard
//! (a fortiori in the full graph). Completeness: every edge of every
//! global path is explored by the edge-wise transitions. The stitched
//! answers are therefore **identical** to the unsharded engines' — the
//! property the engine differential and the `shard_scaling` bench assert.

use crate::index::ShardedIndex;
use rlc_core::catalog::MrId;
use rlc_core::engine::{
    check_vertex_range, ArtifactTag, PlanIdentity, Prepared, ReachabilityEngine,
};
use rlc_core::kernel::with_kernel_scratch;
use rlc_core::{evaluate_blocks_with, prefix_frontier, Constraint, Query, QueryError};
use rlc_graph::{Label, LabeledGraph, VertexId};
use rlc_obs::TraceNode;
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Work counters of one stitched search (or one chain of them): what the
/// EXPLAIN path reports per query, and what the engine aggregates into the
/// global observability registry (`rlc_stitch_*_total`) when it is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StitchCounts {
    /// Whole-repetition intra-shard hops taken (closure vertices reached
    /// through a shard index's target set instead of edge walking).
    pub hops: u64,
    /// Edge-wise transitions that crossed a shard boundary (cut edges, at
    /// any offset within the block).
    pub cut_crossings: u64,
    /// [`crate::boundary::ReachExpander`] invocations (one per first visit
    /// of a repetition-boundary vertex in a shard with the repeat).
    pub expander_calls: u64,
    /// Product states `(vertex, offset)` popped from the search frontier.
    pub expansions: u64,
}

impl StitchCounts {
    fn absorb(&mut self, other: &StitchCounts) {
        self.hops += other.hops;
        self.cut_crossings += other.cut_crossings;
        self.expander_calls += other.expander_calls;
        self.expansions += other.expansions;
    }
}

/// Adds one search's tally to the global `rlc_stitch_*_total` counters.
/// Called only when the global registry is enabled; counter handles are
/// resolved once per process.
fn flush_stitch_counts(tally: &StitchCounts) {
    static SITE: OnceLock<[Arc<rlc_obs::Counter>; 4]> = OnceLock::new();
    let [hops, crossings, calls, expansions] = SITE.get_or_init(|| {
        let g = rlc_obs::global();
        [
            g.counter("rlc_stitch_hops_total"),
            g.counter("rlc_stitch_cut_crossings_total"),
            g.counter("rlc_stitch_expander_calls_total"),
            g.counter("rlc_stitch_expansions_total"),
        ]
    });
    hops.add(tally.hops);
    crossings.add(tally.cut_crossings);
    calls.add(tally.expander_calls);
    expansions.add(tally.expansions);
}

/// Prepared artifact of [`ShardedEngine`]: the final block's minimum repeat
/// resolved against **every** shard's catalog (a shard that never recorded
/// the repeat contributes `None` — nothing inside it is reachable under the
/// final block), tagged with the sharded index's combined identity so a
/// same-kind engine over a different (or partially rebuilt) sharded index
/// re-prepares instead of misreading per-shard ids.
struct PreparedSharded {
    last_mrs: Vec<Option<MrId>>,
    index: ArtifactTag,
}

/// The identity tag of a sharded index: address, `k`, total catalog size,
/// and the fold of every shard's construction generation — rebuilding any
/// shard changes the fold, so stale plans (and [`rlc_core::cache::PlanCache`]
/// entries) are invalidated exactly like the single-index engines' ABA
/// discipline.
fn sharded_tag(index: &ShardedIndex) -> ArtifactTag {
    ArtifactTag::from_raw(
        index as *const ShardedIndex as usize,
        index.k(),
        index.catalog_len(),
        index.generation(),
    )
}

/// The sharded RLC index as a [`ReachabilityEngine`].
pub struct ShardedEngine<'g> {
    graph: &'g LabeledGraph,
    index: &'g ShardedIndex,
    /// The index's identity tag, computed once at construction: the engine
    /// holds a shared borrow of the sharded index for its whole lifetime,
    /// so no shard can be rebuilt (that needs `&mut`) while the tag is
    /// live — recomputing the generation fold per query would be pure
    /// waste.
    tag: ArtifactTag,
}

impl<'g> ShardedEngine<'g> {
    /// Wraps the full graph and its sharded index. The graph must be the
    /// one the sharded index was built from (same vertex ids, same label
    /// space) — the same pairing contract as [`rlc_core::IndexEngine`].
    pub fn new(graph: &'g LabeledGraph, index: &'g ShardedIndex) -> Self {
        ShardedEngine {
            graph,
            index,
            tag: sharded_tag(index),
        }
    }

    /// The wrapped sharded index.
    pub fn index(&self) -> &ShardedIndex {
        self.index
    }

    /// Runs `with` over the per-shard resolutions of a preparation: the
    /// artifact's own table is borrowed in place when the tag matches (the
    /// hot path allocates nothing), otherwise a fresh re-prepare supplies
    /// it (re-running the `k` validation).
    fn with_resolved<R>(
        &self,
        prepared: &Prepared,
        with: impl FnOnce(&[Option<MrId>]) -> R,
    ) -> Result<R, QueryError> {
        match prepared.artifact::<PreparedSharded>() {
            Some(artifact) if artifact.index == self.tag => Ok(with(&artifact.last_mrs)),
            _ => {
                let own = self.prepare(prepared.constraint())?;
                Ok(with(
                    &own.artifact::<PreparedSharded>()
                        // rlc-analyze: allow(panic-free-library) — prepare() of this engine always attaches a PreparedSharded artifact; a None is a broken engine contract, not an input error
                        .expect("ShardedEngine::prepare produces a PreparedSharded artifact")
                        .last_mrs,
                ))
            }
        }
    }

    /// Same-shard fast path: evaluates the constraint entirely inside one
    /// shard. Returns `Some(answer)` when the local answer is definitive
    /// (`true` always is; `false` is when the shard is closed), `None` when
    /// the stitcher must decide.
    fn local_fast_path(
        &self,
        source: VertexId,
        target: VertexId,
        blocks: &[Vec<Label>],
        last_mrs: &[Option<MrId>],
    ) -> Option<bool> {
        let (source_shard, local_source) = self.index.locate(source);
        let (target_shard, local_target) = self.index.locate(target);
        if source_shard != target_shard {
            return None;
        }
        let shard = self.index.shard(source_shard);
        let local = match last_mrs[source_shard] {
            Some(mr) => evaluate_blocks_with(shard.graph(), local_source, blocks, |v| {
                shard.index().query_mr(v, local_target, mr)
            }),
            None => false,
        };
        if local {
            return Some(true);
        }
        // A same-shard path that detours must both leave and re-enter the
        // shard; if it can do neither, the local false is the global false.
        if !shard.is_exitable() || !shard.is_enterable() {
            return Some(false);
        }
        None
    }

    /// The grouped form of [`ShardedEngine::local_fast_path`], for one
    /// source bucket: every same-shard target of the bucket is answered
    /// against the local shard, sharing **one** local prefix-block closure
    /// ([`prefix_frontier`]) across the bucket the way the unsharded
    /// grouped path does. Definitive answers land in `answers`; pairs the
    /// local shard cannot settle are returned for the stitcher.
    #[allow(clippy::too_many_arguments)]
    fn local_fast_path_group(
        &self,
        source: VertexId,
        indices: &[usize],
        pairs: &[(VertexId, VertexId)],
        blocks: &[Vec<Label>],
        last_mrs: &[Option<MrId>],
        answers: &mut [Result<bool, QueryError>],
    ) -> Vec<usize> {
        let (source_shard, local_source) = self.index.locate(source);
        let shard = self.index.shard(source_shard);
        let closed = !shard.is_exitable() || !shard.is_enterable();
        // The bucket's local prefix frontier, computed at most once.
        let mut local_frontier: Option<Vec<VertexId>> = None;
        let mut unresolved: Vec<usize> = Vec::new();
        for &i in indices {
            let (target_shard, local_target) = self.index.locate(pairs[i].1);
            if target_shard != source_shard {
                unresolved.push(i);
                continue;
            }
            let local = match last_mrs[source_shard] {
                None => false,
                Some(mr) if blocks.len() == 1 => {
                    shard.index().query_mr(local_source, local_target, mr)
                }
                Some(mr) => local_frontier
                    .get_or_insert_with(|| prefix_frontier(shard.graph(), local_source, blocks))
                    .iter()
                    .any(|&v| shard.index().query_mr(v, local_target, mr)),
            };
            if local {
                answers[i] = Ok(true);
            } else if closed {
                answers[i] = Ok(false);
            } else {
                unresolved.push(i);
            }
        }
        unresolved
    }

    /// The stitched repetition closure over the **global** graph: every
    /// vertex reachable from `sources` by one or more whole repetitions of
    /// `block`, crossing shards freely, returned in ascending vertex order
    /// (callers test membership by binary search). `last_mrs` supplies the
    /// per-shard resolutions when the caller already has them (the final
    /// block); otherwise the block is resolved against each shard's catalog
    /// here. With `stop_at`, the search short-circuits as soon as the
    /// target enters the closure (the returned closure may then be
    /// partial — early-exit callers only read the flag).
    ///
    /// The visited/boundary/hop sets are bit-parallel
    /// [`rlc_core::kernel::FrontierSet`]s from the thread-local
    /// kernel-scratch pool: the stitcher allocates nothing per query in the
    /// steady state beyond the returned vector and the per-shard hub memo.
    ///
    /// When `counts` is given (the EXPLAIN path) — or the global
    /// observability registry is enabled — the search tallies its work into
    /// a [`StitchCounts`]; counting never changes which states are explored,
    /// so observed and unobserved searches return identical closures.
    fn stitched_closure(
        &self,
        sources: &[VertexId],
        block: &[Label],
        last_mrs: Option<&[Option<MrId>]>,
        stop_at: Option<VertexId>,
        counts: Option<&mut StitchCounts>,
    ) -> (Vec<VertexId>, bool) {
        let counting = counts.is_some() || rlc_obs::global_enabled();
        let mut tally = StitchCounts::default();
        let klen = block.len();
        let resolved: Vec<Option<MrId>> = match last_mrs {
            Some(mrs) => mrs.to_vec(),
            None => (0..self.index.shard_count())
                .map(|s| self.index.resolve_in_shard(s, block))
                .collect(),
        };
        // Per-shard hub-expansion memo (local ids): a hub's inverted list
        // is walked once per search, bounding total hop work by index size.
        let mut expanded: Vec<HashSet<VertexId>> = vec![HashSet::new(); self.index.shard_count()];
        let result = with_kernel_scratch(|scratch| {
            // `visited` ranges over `(vertex, offset-within-block)` product
            // slots; `boundary` accumulates closure vertices; `hopped`
            // tracks vertices whose whole-repetition hop has been taken
            // (hop targets are the shard-complete reachable set, so hopping
            // again from a hopped-to vertex of the same shard adds nothing).
            scratch.visited.begin(self.graph.vertex_count() * klen);
            scratch.boundary.begin(self.graph.vertex_count());
            scratch.hopped.begin(self.graph.vertex_count());
            scratch.queue.clear();
            let slot = |v: VertexId, offset: usize| v as usize * klen + offset;
            for &s in sources {
                if !scratch.visited.test_and_set(slot(s, 0)) {
                    scratch.queue.push_back((s, 0));
                }
            }
            let mut found = false;
            'search: while let Some((v, offset)) = scratch.queue.pop_front() {
                let offset = offset as usize;
                tally.expansions += 1;
                if offset == 0 && !scratch.hopped.test_and_set(v as usize) {
                    // Intra-shard hop: every vertex the shard's index proves
                    // reachable from v under block+ joins the closure at a
                    // repetition boundary.
                    let (shard_id, local) = self.index.locate(v);
                    if let Some(mr) = resolved[shard_id] {
                        tally.expander_calls += 1;
                        let shard = self.index.shard(shard_id);
                        shard.expander().for_each_target(
                            shard.index(),
                            local,
                            mr,
                            &mut expanded[shard_id],
                            |local_target| {
                                let w = self.index.partition().global(shard_id, local_target);
                                if !scratch.boundary.test_and_set(w as usize) && stop_at == Some(w)
                                {
                                    found = true;
                                }
                                if !scratch.visited.test_and_set(slot(w, 0)) {
                                    // Hop targets are already shard-complete:
                                    // mark them hopped so only their edge-wise
                                    // expansion (toward cut edges) runs.
                                    tally.hops += 1;
                                    scratch.hopped.test_and_set(w as usize);
                                    scratch.queue.push_back((w, 0));
                                }
                            },
                        );
                        if found {
                            break 'search;
                        }
                    }
                }
                // Edge-wise product transition — exactness: cut edges can be
                // crossed at any offset, and partial in-shard stretches feed
                // the portals.
                let expected = block[offset];
                for (w, label) in self.graph.out_edges(v) {
                    if label != expected {
                        continue;
                    }
                    // The shard comparison is needed by the single-label skip
                    // below and by the cut-crossing tally; anyone else skips
                    // the two partition lookups entirely.
                    let same_shard = (counting || klen == 1).then(|| {
                        self.index.partition().shard_of(w) == self.index.partition().shard_of(v)
                    });
                    if counting && same_shard == Some(false) {
                        tally.cut_crossings += 1;
                    }
                    // Single-label blocks: a matching intra-shard edge IS a
                    // whole repetition, so the hop already covered its target
                    // (index completeness also guarantees a shard with any
                    // matching intra-shard edge has the repeat in its catalog);
                    // only cut edges need walking, which is where the stitched
                    // search genuinely beats a full-graph product BFS.
                    if klen == 1 && same_shard == Some(true) {
                        continue;
                    }
                    let next = (offset + 1) % klen;
                    if next == 0 {
                        // Record the boundary before the visited check (a
                        // cycle back to a source still closes a repetition),
                        // exactly like the unsharded repetition closure.
                        if !scratch.boundary.test_and_set(w as usize) && stop_at == Some(w) {
                            found = true;
                            break 'search;
                        }
                    }
                    if !scratch.visited.test_and_set(slot(w, next)) {
                        scratch.queue.push_back((w, next as u32));
                    }
                }
            }
            if !found {
                found = stop_at.is_some_and(|t| scratch.boundary.contains(t as usize));
            }
            let mut closure = Vec::with_capacity(scratch.boundary.count());
            scratch
                .boundary
                .for_each_set(|v| closure.push(v as VertexId));
            (closure, found)
        });
        if counting {
            if let Some(counts) = counts {
                counts.absorb(&tally);
            }
            if rlc_obs::global_enabled() {
                flush_stitch_counts(&tally);
            }
        }
        result
    }

    /// Evaluates a constraint with per-shard resolutions in hand: local
    /// fast path, then the stitched block chain (prefix closures feed the
    /// final block's early-exit search).
    fn evaluate_resolved(
        &self,
        source: VertexId,
        target: VertexId,
        blocks: &[Vec<Label>],
        last_mrs: &[Option<MrId>],
    ) -> bool {
        if let Some(answer) = self.local_fast_path(source, target, blocks, last_mrs) {
            return answer;
        }
        self.evaluate_stitched(source, target, blocks, last_mrs, None)
    }

    /// The stitched block chain after the local fast path declined: prefix
    /// closures feed the final block's early-exit search. Shared verbatim
    /// by the throughput path (`counts: None`) and the EXPLAIN path, so an
    /// explained answer is structurally the same computation.
    fn evaluate_stitched(
        &self,
        source: VertexId,
        target: VertexId,
        blocks: &[Vec<Label>],
        last_mrs: &[Option<MrId>],
        mut counts: Option<&mut StitchCounts>,
    ) -> bool {
        let mut frontier: Vec<VertexId> = vec![source];
        for block in &blocks[..blocks.len() - 1] {
            let (closure, _) =
                self.stitched_closure(&frontier, block, None, None, counts.as_deref_mut());
            if closure.is_empty() {
                return false;
            }
            frontier = closure;
        }
        let (_, found) = self.stitched_closure(
            &frontier,
            // rlc-analyze: allow(panic-free-library) — every Constraint constructor rejects an empty block list, so last() is total here
            blocks.last().expect("constraints have at least a block"),
            Some(last_mrs),
            Some(target),
            counts,
        );
        found
    }
}

impl ReachabilityEngine for ShardedEngine<'_> {
    fn name(&self) -> &str {
        "RLC sharded"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        // Blocks are validated once against the shared k (every shard is
        // built with the same k, enforced by ShardedIndex), then the final
        // block is resolved against every shard's catalog.
        constraint.check_block_len(self.index.k())?;
        let last_mrs: Vec<Option<MrId>> = (0..self.index.shard_count())
            .map(|s| self.index.resolve_in_shard(s, constraint.last_block()))
            .collect();
        let bytes = std::mem::size_of::<PreparedSharded>()
            + last_mrs.len() * std::mem::size_of::<Option<MrId>>();
        Ok(Prepared::new(
            constraint.clone(),
            self.name(),
            PreparedSharded {
                last_mrs,
                index: self.tag,
            },
        )
        .with_approx_bytes(bytes))
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        check_vertex_range(source, target, self.graph.vertex_count())?;
        self.with_resolved(prepared, |last_mrs| {
            self.evaluate_resolved(source, target, prepared.constraint().blocks(), last_mrs)
        })
    }

    /// The sharded EXPLAIN: the same `local fast path → stitched chain`
    /// decision as [`ShardedEngine::evaluate_prepared`] (identical answers
    /// by construction — both run [`ShardedEngine::evaluate_stitched`]),
    /// with the routing recorded on the trace node: source/target shards,
    /// whether the local shard settled the pair (`route = "local"`) or the
    /// stitcher ran (`route = "stitched"`, with its [`StitchCounts`] and
    /// wall-clock).
    fn explain_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> (Result<bool, QueryError>, TraceNode) {
        let started = Instant::now();
        let mut node = TraceNode::new("query");
        node.attr("engine", self.name())
            .attr("source", source)
            .attr("target", target);
        if let Err(error) = check_vertex_range(source, target, self.graph.vertex_count()) {
            node.attr("error", &error);
            return (Err(error), node);
        }
        let (source_shard, _) = self.index.locate(source);
        let (target_shard, _) = self.index.locate(target);
        node.attr("source_shard", source_shard)
            .attr("target_shard", target_shard)
            .attr("shard_count", self.index.shard_count());
        let answer = self.with_resolved(prepared, |last_mrs| {
            let blocks = prepared.constraint().blocks();
            let local_started = Instant::now();
            let local = self.local_fast_path(source, target, blocks, last_mrs);
            node.attr("local_ns", local_started.elapsed().as_nanos());
            match local {
                Some(answer) => {
                    node.attr("route", "local");
                    answer
                }
                None => {
                    node.attr("route", "stitched");
                    let mut counts = StitchCounts::default();
                    let stitch_started = Instant::now();
                    let answer =
                        self.evaluate_stitched(source, target, blocks, last_mrs, Some(&mut counts));
                    node.attr("stitch_ns", stitch_started.elapsed().as_nanos())
                        .attr("hops", counts.hops)
                        .attr("cut_crossings", counts.cut_crossings)
                        .attr("expander_calls", counts.expander_calls)
                        .attr("expansions", counts.expansions);
                    answer
                }
            }
        });
        node.attr("evaluate_ns", started.elapsed().as_nanos());
        match &answer {
            Ok(reachable) => node.attr("answer", reachable),
            Err(error) => node.attr("error", error),
        };
        (answer, node)
    }

    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        // One-shot fast path mirroring prepare-then-execute's validation
        // order (k check, then vertex range) without boxing a `Prepared`.
        let constraint = query.constraint();
        constraint.check_block_len(self.index.k())?;
        check_vertex_range(query.source, query.target, self.graph.vertex_count())?;
        let last_mrs: Vec<Option<MrId>> = (0..self.index.shard_count())
            .map(|s| self.index.resolve_in_shard(s, constraint.last_block()))
            .collect();
        Ok(self.evaluate_resolved(query.source, query.target, constraint.blocks(), &last_mrs))
    }

    /// Grouped execute: pairs the local fast path can settle cost one shard
    /// lookup each; the leftovers of every source bucket share one stitched
    /// closure chain (the sharded analogue of the index engines'
    /// once-per-source prefix closure), with the target-early-exit search
    /// when only a single pair of the bucket needs stitching.
    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        // Range-check every pair first, exactly like the per-pair path.
        let mut answers: Vec<Result<bool, QueryError>> = Vec::with_capacity(pairs.len());
        let mut by_source: HashMap<VertexId, Vec<usize>> = HashMap::new();
        for (i, &(s, t)) in pairs.iter().enumerate() {
            match check_vertex_range(s, t, self.graph.vertex_count()) {
                Ok(()) => {
                    answers.push(Ok(false));
                    by_source.entry(s).or_default().push(i);
                }
                Err(error) => answers.push(Err(error)),
            }
        }
        let blocks = prepared.constraint().blocks();
        let stitched = self.with_resolved(prepared, |last_mrs| {
            for (source, indices) in &by_source {
                // Local fast path first: same-shard targets share one local
                // prefix closure, definitive answers cost one shard lookup.
                let unresolved = self.local_fast_path_group(
                    *source,
                    indices,
                    pairs,
                    blocks,
                    last_mrs,
                    &mut answers,
                );
                if unresolved.is_empty() {
                    continue;
                }
                // One stitched chain for the bucket's leftovers.
                let mut frontier: Vec<VertexId> = vec![*source];
                let mut dead = false;
                for block in &blocks[..blocks.len() - 1] {
                    let (closure, _) = self.stitched_closure(&frontier, block, None, None, None);
                    if closure.is_empty() {
                        dead = true;
                        break;
                    }
                    frontier = closure;
                }
                if dead {
                    continue; // every unresolved target stays Ok(false)
                }
                // rlc-analyze: allow(panic-free-library) — every Constraint constructor rejects an empty block list, so last() is total here
                let last_block = blocks.last().expect("constraints have at least a block");
                if let [only] = unresolved[..] {
                    let (_, found) = self.stitched_closure(
                        &frontier,
                        last_block,
                        Some(last_mrs),
                        Some(pairs[only].1),
                        None,
                    );
                    answers[only] = Ok(found);
                } else {
                    let (closure, _) =
                        self.stitched_closure(&frontier, last_block, Some(last_mrs), None, None);
                    for &i in &unresolved {
                        // The closure is in ascending vertex order.
                        answers[i] = Ok(closure.binary_search(&pairs[i].1).is_ok());
                    }
                }
            }
        });
        if let Err(error) = stitched {
            // The constraint is invalid for this engine: every in-range
            // pair of the group gets the same error.
            for indices in by_source.values() {
                for &i in indices {
                    answers[i] = Err(error.clone());
                }
            }
        }
        answers
    }

    fn plan_identity(&self) -> PlanIdentity {
        PlanIdentity::Index(self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::ShardBuildConfig;
    use rlc_core::engine::IndexEngine;
    use rlc_core::{build_index, BuildConfig, PlanCache, Query};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
    use rlc_graph::{GraphBuilder, PartitionStrategy};

    fn constraints() -> Vec<Constraint> {
        let l = |i: u16| Label(i);
        vec![
            Constraint::single(vec![l(0)]).unwrap(),
            Constraint::single(vec![l(1)]).unwrap(),
            Constraint::single(vec![l(0), l(1)]).unwrap(),
            Constraint::new(vec![vec![l(0)], vec![l(1)]]).unwrap(),
            Constraint::new(vec![vec![l(2)], vec![l(0), l(1)]]).unwrap(),
            // A minimum repeat no edge sequence realizes: everything false.
            Constraint::single(vec![l(2), l(0)]).unwrap(),
        ]
    }

    /// Exhaustive sharded-vs-unsharded agreement on a seeded ER graph, for
    /// every strategy and shard count in the matrix.
    #[test]
    fn stitched_answers_equal_unsharded_answers() {
        let g = erdos_renyi(&SyntheticConfig::new(70, 3.0, 3, 29));
        let (plain, _) = build_index(&g, &BuildConfig::new(2));
        let reference = IndexEngine::new(&g, &plain);
        for strategy in [
            PartitionStrategy::Contiguous,
            PartitionStrategy::Hash { seed: 4 },
            PartitionStrategy::DegreeAware,
        ] {
            for shards in [1usize, 2, 8] {
                let config = ShardBuildConfig::new(2, shards).with_strategy(strategy);
                let (sharded, _) = ShardedIndex::build(&g, &config).unwrap();
                let engine = ShardedEngine::new(&g, &sharded);
                for constraint in constraints() {
                    let prepared = engine.prepare(&constraint).unwrap();
                    for s in (0..g.vertex_count() as u32).step_by(3) {
                        for t in (0..g.vertex_count() as u32).step_by(4) {
                            let expected =
                                reference.evaluate(&Query::new(s, t, constraint.clone()));
                            assert_eq!(
                                engine.evaluate_prepared(s, t, &prepared),
                                expected,
                                "{strategy:?} x{shards} on ({s},{t}) under {constraint:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cross_shard_chain_is_stitched_through_portals() {
        // A path that provably crosses shards mid-repetition: (x y)+ over
        // a -x-> b -y-> c -x-> d -y-> e with a contiguous 2-shard split
        // putting {a, b, c} and {d, e} apart — the second repetition's x
        // edge c -x-> d is the cut edge, crossed at offset 1.
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("b", "y", "c");
        b.add_edge_named("c", "x", "d");
        b.add_edge_named("d", "y", "e");
        let g = b.build();
        let (sharded, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 2)).unwrap();
        assert!(
            !sharded.cut_edges().is_empty(),
            "the split must cut the chain"
        );
        let engine = ShardedEngine::new(&g, &sharded);
        let x = g.labels().resolve("x").unwrap();
        let y = g.labels().resolve("y").unwrap();
        let a = g.vertex_id("a").unwrap();
        let c = g.vertex_id("c").unwrap();
        let e = g.vertex_id("e").unwrap();
        let q = Query::rlc(a, e, vec![x, y]).unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true), "cross-shard (x y)+ path");
        assert_eq!(
            engine.evaluate(&Query::rlc(a, c, vec![x, y]).unwrap()),
            Ok(true)
        );
        assert_eq!(
            engine.evaluate(&Query::rlc(c, a, vec![x, y]).unwrap()),
            Ok(false)
        );
    }

    #[test]
    fn same_shard_pair_detouring_through_another_shard_is_found() {
        // s and t share a shard but the only path leaves and comes back:
        // the local index answers false, the stitcher must recover it.
        let mut b = GraphBuilder::new();
        b.add_edge_named("s", "x", "far"); // cut: s in shard 0, far in shard 1
        b.add_edge_named("far", "x", "t"); // cut back into shard 0
        let g = b.build();
        // Named build order: s=0, far=1, t=2. Contiguous split over 2
        // shards: {s, far} | {t}… that puts s and t apart; use an explicit
        // assignment instead: s,t in shard 0, far in shard 1.
        let partition = rlc_graph::Partition::from_assignment(2, vec![0, 1, 0]).unwrap();
        let cut = partition.cut_edges(&g);
        assert_eq!(cut.len(), 2);
        let indexes: Vec<_> = (0..2)
            .map(|s| {
                let sub = partition.shard_subgraph(&g, s);
                build_index(&sub, &BuildConfig::new(2)).0
            })
            .collect();
        let sharded = ShardedIndex::assemble(&g, 2, partition, cut, indexes);
        let engine = ShardedEngine::new(&g, &sharded);
        let x = g.labels().resolve("x").unwrap();
        let s = g.vertex_id("s").unwrap();
        let t = g.vertex_id("t").unwrap();
        assert_eq!(
            sharded.partition().shard_of(s),
            sharded.partition().shard_of(t)
        );
        assert_eq!(
            engine.evaluate(&Query::rlc(s, t, vec![x]).unwrap()),
            Ok(true)
        );
        assert_eq!(
            engine.evaluate(&Query::rlc(t, s, vec![x]).unwrap()),
            Ok(false)
        );
    }

    #[test]
    fn grouped_evaluation_matches_per_pair() {
        let g = erdos_renyi(&SyntheticConfig::new(60, 3.0, 3, 41));
        let (sharded, _) = ShardedIndex::build(
            &g,
            &ShardBuildConfig::new(2, 4).with_strategy(PartitionStrategy::Hash { seed: 2 }),
        )
        .unwrap();
        let engine = ShardedEngine::new(&g, &sharded);
        let n = g.vertex_count() as u32;
        let mut pairs: Vec<(u32, u32)> = (0..40).map(|t| (9, (t * 7) % n)).collect();
        pairs.extend((0..12).map(|s| (s, (s * 13 + 2) % n)));
        pairs.push((n + 1, 0));
        pairs.push((2, n + 6));
        for constraint in constraints() {
            let prepared = engine.prepare(&constraint).unwrap();
            let grouped = engine.evaluate_prepared_group(&pairs, &prepared);
            for (&(s, t), grouped_answer) in pairs.iter().zip(&grouped) {
                assert_eq!(
                    *grouped_answer,
                    engine.evaluate_prepared(s, t, &prepared),
                    "grouped vs per-pair on ({s},{t}) under {constraint:?}"
                );
            }
        }
    }

    #[test]
    fn overlong_blocks_error_and_out_of_range_ids_error() {
        let g = erdos_renyi(&SyntheticConfig::new(30, 3.0, 3, 1));
        let (sharded, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 2)).unwrap();
        let engine = ShardedEngine::new(&g, &sharded);
        let long = Query::rlc(0, 1, vec![Label(0), Label(1), Label(2)]).unwrap();
        assert_eq!(
            engine.evaluate(&long),
            Err(QueryError::BlockTooLong {
                block: 0,
                len: 3,
                k: 2
            })
        );
        let n = g.vertex_count() as u32;
        assert_eq!(
            engine.evaluate(&Query::rlc(n + 4, 0, vec![Label(0)]).unwrap()),
            Err(QueryError::VertexOutOfRange {
                vertex: n + 4,
                vertices: g.vertex_count()
            })
        );
    }

    #[test]
    fn foreign_preparations_are_recompiled_not_misread() {
        // Per-shard MrIds are only meaningful against one sharded index:
        // a preparation from another sharded index (different partition!)
        // must be re-prepared, and a foreign artifact type likewise.
        let g = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 19));
        let (a, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 2)).unwrap();
        let (b, _) = ShardedIndex::build(
            &g,
            &ShardBuildConfig::new(2, 3).with_strategy(PartitionStrategy::Hash { seed: 9 }),
        )
        .unwrap();
        let engine_a = ShardedEngine::new(&g, &a);
        let engine_b = ShardedEngine::new(&g, &b);
        let constraint = Constraint::single(vec![Label(0), Label(1)]).unwrap();
        let prepared_b = engine_b.prepare(&constraint).unwrap();
        let foreign = Prepared::new(constraint.clone(), "other", 17u8);
        for s in (0..50u32).step_by(7) {
            for t in (0..50u32).step_by(5) {
                let own = engine_a.evaluate(&Query::new(s, t, constraint.clone()));
                assert_eq!(engine_a.evaluate_prepared(s, t, &prepared_b), own);
                assert_eq!(engine_a.evaluate_prepared(s, t, &foreign), own);
            }
        }
    }

    #[test]
    fn rebuilding_any_shard_invalidates_cached_plans() {
        // The acceptance-bar contract: plan_identity() folds every shard's
        // generation, so a PlanCache entry resolved against the old shard
        // set is dropped — not re-served — after any shard rebuild.
        let g = erdos_renyi(&SyntheticConfig::new(40, 3.0, 3, 23));
        let (mut sharded, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 3)).unwrap();
        let cache = PlanCache::new();
        let constraint = Constraint::single(vec![Label(1)]).unwrap();
        {
            let engine = ShardedEngine::new(&g, &sharded);
            let identity_before = engine.plan_identity();
            cache.prepare(&engine, &constraint).unwrap();
            assert_eq!(cache.stats().misses, 1);
            cache.prepare(&engine, &constraint).unwrap();
            assert_eq!(cache.stats().hits, 1, "stable identity hits");
            assert_eq!(engine.plan_identity(), identity_before);
        }
        sharded.rebuild_shard(2, &BuildConfig::new(2)).unwrap();
        let engine = ShardedEngine::new(&g, &sharded);
        cache.prepare(&engine, &constraint).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.stale_drops, 1, "the old plan was dropped");
        assert_eq!(stats.misses, 2, "the rebuild forced a re-prepare");
    }

    #[test]
    fn stats_price_the_stitch_scratch() {
        let g = erdos_renyi(&SyntheticConfig::new(50, 3.0, 3, 7));
        let (sharded, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 2)).unwrap();
        let engine = ShardedEngine::new(&g, &sharded);
        // A cross-shard pair always runs the stitcher, so this thread's
        // pooled kernel scratch has grown word tables to report.
        let q = Query::rlc(0, 49, vec![Label(0), Label(1)]).unwrap();
        let _ = engine.evaluate(&q);
        assert!(sharded.stats().stitch_scratch_bytes > 0);
    }

    #[test]
    fn sharded_prepared_prices_its_per_shard_table() {
        let g = erdos_renyi(&SyntheticConfig::new(40, 3.0, 3, 3));
        let (few, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 2)).unwrap();
        let (many, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 8)).unwrap();
        let c = Constraint::single(vec![Label(0)]).unwrap();
        let plan_few = ShardedEngine::new(&g, &few).prepare(&c).unwrap();
        let plan_many = ShardedEngine::new(&g, &many).prepare(&c).unwrap();
        assert!(plan_many.approx_bytes() > plan_few.approx_bytes());
    }
}
