//! The sharded index: a vertex partition plus one RLC index per shard.
//!
//! [`ShardedIndex::build`] cuts the graph with a [`PartitionStrategy`],
//! extracts each shard's subgraph (intra-shard edges only, shared label
//! space), and fans the per-shard [`build_index`] calls out across rayon
//! workers. Each shard also gets its boundary machinery: the
//! [`PortalSet`] of cut-edge endpoints and the [`ReachExpander`] the
//! stitcher uses for whole-repetition hops.
//!
//! Every shard index carries the construction-time
//! [`Generation`](rlc_core::engine::Generation) stamp of PR 4;
//! [`ShardedIndex::generation`] folds all of them into one combined stamp,
//! so rebuilding **any** shard ([`ShardedIndex::rebuild_shard`]) changes
//! the engine's plan identity and invalidates every cached plan resolved
//! against the old shard — the same ABA discipline the single-index engines
//! follow, lifted to the aggregate.

use crate::boundary::{PortalSet, ReachExpander};
use rayon::prelude::*;
use rlc_core::build::{build_index, BuildConfig, BuildStats};
use rlc_core::engine::Generation;
use rlc_core::index::RlcIndex;
use rlc_graph::{Edge, LabeledGraph, Partition, PartitionStrategy, VertexId};

/// Configuration of a sharded build.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardBuildConfig {
    /// Number of shards (at least 1; shards may be empty on tiny graphs).
    pub shards: usize,
    /// Vertex-to-shard assignment strategy.
    pub strategy: PartitionStrategy,
    /// Per-shard index build configuration; its `k` is the sharded index's
    /// `k` and every shard is built with it.
    pub build: BuildConfig,
}

impl ShardBuildConfig {
    /// Default configuration: contiguous ranges, paper-default index build.
    pub fn new(k: usize, shards: usize) -> Self {
        ShardBuildConfig {
            shards,
            strategy: PartitionStrategy::Contiguous,
            build: BuildConfig::new(k),
        }
    }

    /// Replaces the partition strategy.
    pub fn with_strategy(mut self, strategy: PartitionStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// One shard: its subgraph (local vertex ids, shared label space), its RLC
/// index, and its boundary machinery.
#[derive(Debug, Clone)]
pub struct GraphShard {
    pub(crate) graph: LabeledGraph,
    pub(crate) index: RlcIndex,
    pub(crate) expander: ReachExpander,
    pub(crate) portals: PortalSet,
}

impl GraphShard {
    fn assemble(
        partition: &Partition,
        cut_edges: &[Edge],
        shard_id: usize,
        graph: LabeledGraph,
        index: RlcIndex,
    ) -> Self {
        let expander = ReachExpander::new(&index);
        let portals = PortalSet::from_cut_edges(partition, shard_id, cut_edges);
        GraphShard {
            graph,
            index,
            expander,
            portals,
        }
    }

    /// The shard's subgraph (vertices are local ids).
    pub fn graph(&self) -> &LabeledGraph {
        &self.graph
    }

    /// The shard's RLC index (over local ids).
    pub fn index(&self) -> &RlcIndex {
        &self.index
    }

    /// The shard's portal vertices.
    pub fn portals(&self) -> &PortalSet {
        &self.portals
    }

    /// The shard's target-enumeration structure.
    pub fn expander(&self) -> &ReachExpander {
        &self.expander
    }

    /// Whether any path can leave this shard (it has an outgoing cut edge).
    pub fn is_exitable(&self) -> bool {
        self.portals.has_exits()
    }

    /// Whether any path can enter this shard (it has an incoming cut edge).
    pub fn is_enterable(&self) -> bool {
        self.portals.has_entries()
    }
}

/// Per-shard summary row of [`ShardedStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Vertices owned by the shard.
    pub vertices: usize,
    /// Intra-shard edges.
    pub edges: usize,
    /// Entries of the shard's RLC index.
    pub index_entries: usize,
    /// Incoming-portal count (cut-edge targets in this shard).
    pub entry_portals: usize,
    /// Outgoing-portal count (cut-edge sources in this shard).
    pub exit_portals: usize,
    /// Approximate resident bytes (index + expander + owned subgraph).
    pub memory_bytes: usize,
}

/// Summary statistics of a [`ShardedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// The recursive `k`.
    pub k: usize,
    /// One row per shard.
    pub shards: Vec<ShardStats>,
    /// Number of cut edges.
    pub cut_edges: usize,
    /// Total vertices.
    pub vertices: usize,
    /// Total approximate resident bytes across shards.
    pub memory_bytes: usize,
    /// Resident bytes of the calling thread's pooled stitch scratch — the
    /// bit-parallel visited/boundary word tables
    /// ([`rlc_core::kernel::FrontierSet`]) that stitched queries on this
    /// thread have grown and parked for reuse. Kept separate from
    /// `memory_bytes` (which is per index, not per thread) so byte
    /// accounting stays honest after the word-representation change.
    pub stitch_scratch_bytes: usize,
}

/// A vertex-partitioned RLC index: `S` per-shard indexes plus the cut-edge
/// set and boundary machinery the stitcher needs. Built by
/// [`ShardedIndex::build`], persisted as an `RSH1` manifest
/// ([`ShardedIndex::try_to_bytes`](ShardedIndex::try_to_bytes)), evaluated
/// through [`crate::ShardedEngine`].
#[derive(Debug, Clone)]
pub struct ShardedIndex {
    pub(crate) k: usize,
    pub(crate) partition: Partition,
    pub(crate) cut_edges: Vec<Edge>,
    pub(crate) shards: Vec<GraphShard>,
    /// FNV-1a digest of the indexed graph's full topology, stamped at
    /// build (and revalidated by the `RSH1` loader) so a manifest can
    /// never be paired with a graph that differs anywhere — including in
    /// intra-shard edges the cut-edge list cannot see.
    pub(crate) graph_digest: u64,
}

impl ShardedIndex {
    /// Partitions `graph` and builds one RLC index per shard, fanning the
    /// per-shard builds out across rayon workers. Returns the sharded index
    /// and the per-shard build statistics (shard order).
    ///
    /// Deterministic: the partition, the per-shard subgraphs, and every
    /// shard's index are fully determined by `graph` and `config`.
    pub fn build(
        graph: &LabeledGraph,
        config: &ShardBuildConfig,
    ) -> Result<(Self, Vec<BuildStats>), String> {
        let partition = Partition::new(graph, config.strategy, config.shards)?;
        let cut_edges = partition.cut_edges(graph);
        let subgraphs: Vec<LabeledGraph> = (0..config.shards)
            .map(|s| partition.shard_subgraph(graph, s))
            .collect();
        let built: Vec<(RlcIndex, BuildStats)> = subgraphs
            .par_iter()
            .map(|subgraph| build_index(subgraph, &config.build))
            .collect();
        let mut shards = Vec::with_capacity(config.shards);
        let mut stats = Vec::with_capacity(config.shards);
        for (shard_id, (subgraph, (index, build_stats))) in
            subgraphs.into_iter().zip(built).enumerate()
        {
            shards.push(GraphShard::assemble(
                &partition, &cut_edges, shard_id, subgraph, index,
            ));
            stats.push(build_stats);
        }
        Ok((
            ShardedIndex {
                k: config.build.k,
                partition,
                cut_edges,
                shards,
                graph_digest: crate::persist::graph_digest(graph),
            },
            stats,
        ))
    }

    /// Assembles a sharded index from already-built parts (the `RSH1`
    /// loader path). `indexes` must be one per shard, each over the shard's
    /// subgraph of `graph`. The per-shard derivation work — subgraph
    /// extraction, `Lin` inversion — fans out across rayon workers, like
    /// the build path's per-shard index builds.
    pub(crate) fn assemble(
        graph: &LabeledGraph,
        k: usize,
        partition: Partition,
        cut_edges: Vec<Edge>,
        indexes: Vec<RlcIndex>,
    ) -> Self {
        let refs: Vec<(usize, &RlcIndex)> = indexes.iter().enumerate().collect();
        let derived: Vec<(LabeledGraph, ReachExpander, PortalSet)> = refs
            .par_iter()
            .map(|&(shard_id, index)| {
                (
                    partition.shard_subgraph(graph, shard_id),
                    ReachExpander::new(index),
                    PortalSet::from_cut_edges(&partition, shard_id, &cut_edges),
                )
            })
            .collect();
        let shards = indexes
            .into_iter()
            .zip(derived)
            .map(|(index, (graph, expander, portals))| GraphShard {
                graph,
                index,
                expander,
                portals,
            })
            .collect();
        ShardedIndex {
            k,
            partition,
            cut_edges,
            shards,
            graph_digest: crate::persist::graph_digest(graph),
        }
    }

    /// The recursive `k` every shard index supports.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total vertices across all shards.
    pub fn vertex_count(&self) -> usize {
        self.partition.vertex_count()
    }

    /// The vertex partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The cut edges (global vertex ids), in graph edge order.
    pub fn cut_edges(&self) -> &[Edge] {
        &self.cut_edges
    }

    /// One shard.
    pub fn shard(&self, shard: usize) -> &GraphShard {
        &self.shards[shard]
    }

    /// The combined generation stamp: every shard index's construction-time
    /// stamp folded together. Changes whenever any shard is rebuilt or the
    /// manifest is reloaded, which is what lets the engine's plan identity
    /// invalidate stale cached plans.
    pub fn generation(&self) -> Generation {
        Generation::combined(self.shards.iter().map(|s| s.index.generation()))
    }

    /// Total catalog size across shards (part of the engine's plan
    /// identity).
    pub fn catalog_len(&self) -> usize {
        self.shards.iter().map(|s| s.index.catalog().len()).sum()
    }

    /// Rebuilds one shard's index in place (same partition, same subgraph)
    /// with a new build configuration. The rebuilt index gets a fresh
    /// generation stamp, so [`ShardedIndex::generation`] — and with it the
    /// engine's plan identity — changes.
    ///
    /// `build.k` must equal the sharded index's `k`: the prepared-constraint
    /// validation is done once against the shared `k`, so shards may not
    /// diverge.
    pub fn rebuild_shard(
        &mut self,
        shard: usize,
        build: &BuildConfig,
    ) -> Result<BuildStats, String> {
        if shard >= self.shards.len() {
            return Err(format!(
                "shard {shard} out of range for {} shards",
                self.shards.len()
            ));
        }
        if build.k != self.k {
            return Err(format!(
                "rebuild k = {} differs from the sharded index's k = {}; shards may not diverge",
                build.k, self.k
            ));
        }
        let (index, stats) = build_index(&self.shards[shard].graph, build);
        self.shards[shard].expander = ReachExpander::new(&index);
        self.shards[shard].index = index;
        Ok(stats)
    }

    /// Approximate resident bytes of the whole sharded structure: per-shard
    /// indexes, expanders, **and the owned shard subgraphs** (each shard
    /// keeps a local-id copy of its intra-shard adjacency, a cost the
    /// unsharded engines — which borrow the one shared graph — do not pay),
    /// plus the partition map and cut edges.
    pub fn memory_bytes(&self) -> usize {
        let partition = self.partition.vertex_count() * 2 * std::mem::size_of::<u32>();
        let cuts = self.cut_edges.len() * std::mem::size_of::<Edge>();
        partition
            + cuts
            + self
                .shards
                .iter()
                .map(|s| {
                    s.index.memory_bytes() + s.expander.memory_bytes() + s.graph.memory_bytes()
                })
                .sum::<usize>()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> ShardedStats {
        let shards: Vec<ShardStats> = self
            .shards
            .iter()
            .map(|s| ShardStats {
                vertices: s.graph.vertex_count(),
                edges: s.graph.edge_count(),
                index_entries: s.index.entry_count(),
                entry_portals: s.portals.entries.len(),
                exit_portals: s.portals.exits.len(),
                memory_bytes: s.index.memory_bytes()
                    + s.expander.memory_bytes()
                    + s.graph.memory_bytes(),
            })
            .collect();
        ShardedStats {
            k: self.k,
            cut_edges: self.cut_edges.len(),
            vertices: self.partition.vertex_count(),
            memory_bytes: self.memory_bytes(),
            stitch_scratch_bytes: rlc_core::kernel::pooled_scratch_bytes(),
            shards,
        }
    }

    /// Resolves `block` against one shard's catalog (None when the shard
    /// never recorded the minimum repeat — nothing in that shard is
    /// reachable under it).
    pub(crate) fn resolve_in_shard(
        &self,
        shard: usize,
        block: &[rlc_graph::Label],
    ) -> Option<rlc_core::catalog::MrId> {
        self.shards[shard].index.catalog().resolve(block)
    }

    /// Convenience for the stitcher: `(shard, local)` of a global vertex.
    #[inline]
    pub(crate) fn locate(&self, v: VertexId) -> (usize, VertexId) {
        self.partition.locate(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    fn sample() -> LabeledGraph {
        erdos_renyi(&SyntheticConfig::new(80, 3.0, 3, 13))
    }

    #[test]
    fn build_produces_one_index_per_shard_over_its_subgraph() {
        let g = sample();
        for shards in [1usize, 2, 5] {
            let (sharded, stats) =
                ShardedIndex::build(&g, &ShardBuildConfig::new(2, shards)).unwrap();
            assert_eq!(sharded.shard_count(), shards);
            assert_eq!(stats.len(), shards);
            assert_eq!(sharded.vertex_count(), g.vertex_count());
            let cut = sharded.cut_edges().len();
            let intra: usize = (0..shards)
                .map(|s| sharded.shard(s).graph().edge_count())
                .sum();
            assert_eq!(cut + intra, g.edge_count());
            for s in 0..shards {
                let shard = sharded.shard(s);
                assert_eq!(
                    shard.index().vertex_count(),
                    shard.graph().vertex_count(),
                    "index covers the shard subgraph"
                );
                assert_eq!(shard.index().k(), 2);
            }
            assert!(sharded.stats().memory_bytes > 0);
        }
    }

    #[test]
    fn single_shard_build_matches_the_unsharded_index() {
        // With one shard the subgraph covers the whole graph (modulo edge
        // re-ordering, which can legitimately change the set of condensed
        // entries the deterministic build picks), so the shard index must
        // answer every catalog constraint exactly like a plain build.
        let g = sample();
        let (sharded, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 1)).unwrap();
        let (plain, _) = build_index(&g, &BuildConfig::new(2));
        assert!(sharded.cut_edges().is_empty());
        let local = sharded.shard(0).index();
        assert_eq!(local.vertex_count(), plain.vertex_count());
        for (_, seq) in plain.catalog().iter() {
            for s in (0..g.vertex_count() as u32).step_by(3) {
                for t in (0..g.vertex_count() as u32).step_by(4) {
                    let q = rlc_core::RlcQuery::new(s, t, seq.to_vec()).unwrap();
                    assert_eq!(local.query(&q), plain.query(&q), "({s},{t},{seq:?})");
                }
            }
        }
    }

    #[test]
    fn parallel_shard_builds_are_deterministic() {
        let g = sample();
        let config = ShardBuildConfig::new(2, 4).with_strategy(PartitionStrategy::DegreeAware);
        let (a, stats_a) = ShardedIndex::build(&g, &config).unwrap();
        let (b, stats_b) = ShardedIndex::build(&g, &config).unwrap();
        assert_eq!(stats_a.len(), stats_b.len());
        for (sa, sb) in a.shards.iter().zip(&b.shards) {
            assert_eq!(sa.index.to_bytes(), sb.index.to_bytes());
            assert_eq!(sa.portals, sb.portals);
        }
        assert_eq!(a.cut_edges, b.cut_edges);
    }

    #[test]
    fn rebuilding_a_shard_changes_the_combined_generation() {
        let g = sample();
        let (mut sharded, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 3)).unwrap();
        let before = sharded.generation();
        let stats = sharded
            .rebuild_shard(1, &BuildConfig::new(2))
            .expect("rebuild succeeds");
        assert!(stats.duration >= std::time::Duration::ZERO);
        assert_ne!(
            sharded.generation(),
            before,
            "a rebuilt shard must change the combined stamp"
        );
        // The rebuilt shard answers exactly as before (same subgraph, same
        // configuration).
        let (fresh, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 3)).unwrap();
        assert_eq!(
            sharded.shard(1).index().to_bytes(),
            fresh.shard(1).index().to_bytes()
        );
    }

    #[test]
    fn rebuild_rejects_out_of_range_shards_and_diverging_k() {
        let g = sample();
        let (mut sharded, _) = ShardedIndex::build(&g, &ShardBuildConfig::new(2, 2)).unwrap();
        assert!(sharded.rebuild_shard(7, &BuildConfig::new(2)).is_err());
        let err = sharded.rebuild_shard(0, &BuildConfig::new(3)).unwrap_err();
        assert!(err.contains("diverge"), "unexpected error: {err}");
    }

    #[test]
    fn zero_shards_is_rejected() {
        let g = sample();
        assert!(ShardedIndex::build(&g, &ShardBuildConfig::new(2, 0)).is_err());
    }
}
