//! Benchmarks of query latency on a built RLC index: true vs false queries
//! and the hybrid evaluation of extended constraints.

use criterion::{criterion_group, criterion_main, Criterion};
use rlc_core::engine::{IndexEngine, ReachabilityEngine};
use rlc_core::{build_index, BuildConfig, Query};
use rlc_graph::generate::{barabasi_albert, SyntheticConfig};
use rlc_graph::Label;
use rlc_workloads::{generate_query_set, QueryGenConfig};
use std::hint::black_box;

fn bench_index_queries(c: &mut Criterion) {
    let graph = barabasi_albert(&SyntheticConfig::new(10_000, 4.0, 8, 3));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let queries = generate_query_set(&graph, &QueryGenConfig::small(200, 200, 2, 5));

    let mut group = c.benchmark_group("rlc_query");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("true_queries", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries.true_queries {
                if index.query(black_box(q)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("false_queries", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries.false_queries {
                if index.query(black_box(q)) {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_hybrid_queries(c: &mut Criterion) {
    let graph = barabasi_albert(&SyntheticConfig::new(5_000, 4.0, 8, 9));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let a = Label(0);
    let b_label = Label(1);
    let pairs: Vec<(u32, u32)> = (0..100)
        .map(|i| (i * 37 % 5_000, i * 101 % 5_000))
        .collect();
    let queries: Vec<Query> = pairs
        .iter()
        .map(|&(s, t)| Query::concat(s, t, vec![vec![a], vec![b_label]]).unwrap())
        .collect();
    let engine = IndexEngine::new(&graph, &index);
    let constraint = rlc_core::Constraint::new(vec![vec![a], vec![b_label]]).unwrap();

    let mut group = c.benchmark_group("hybrid_query");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("a_plus_b_plus", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for q in &queries {
                if engine.evaluate(black_box(q)).unwrap() {
                    hits += 1;
                }
            }
            hits
        })
    });
    // The prepare/execute split amortizes validation and catalog resolution
    // across the pair set.
    group.bench_function("a_plus_b_plus_prepared", |b| {
        b.iter(|| {
            let prepared = engine.prepare(black_box(&constraint)).unwrap();
            let mut hits = 0usize;
            for &(s, t) in &pairs {
                if engine.evaluate_prepared(s, t, &prepared).unwrap() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

criterion_group!(benches, bench_index_queries, bench_hybrid_queries);
criterion_main!(benches);
