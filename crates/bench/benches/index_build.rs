//! Benchmarks of index construction: the RLC index under different graph
//! families, recursive k values and pruning configurations, and the ETC
//! baseline for contrast (Table IV at micro scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rlc_baselines::{EtcBuildConfig, EtcIndex};
use rlc_core::{build_index, BuildConfig, KbsStrategy};
use rlc_graph::generate::{barabasi_albert, erdos_renyi, SyntheticConfig};
use std::hint::black_box;

fn bench_rlc_build_by_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlc_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    for &n in &[1_000usize, 4_000] {
        let er = erdos_renyi(&SyntheticConfig::new(n, 3.0, 8, 7));
        group.bench_with_input(BenchmarkId::new("er_d3_l8_k2", n), &er, |b, g| {
            b.iter(|| build_index(black_box(g), &BuildConfig::new(2)))
        });
        let ba = barabasi_albert(&SyntheticConfig::new(n, 3.0, 8, 7));
        group.bench_with_input(BenchmarkId::new("ba_d3_l8_k2", n), &ba, |b, g| {
            b.iter(|| build_index(black_box(g), &BuildConfig::new(2)))
        });
    }
    group.finish();
}

fn bench_rlc_build_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlc_build_k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    let graph = erdos_renyi(&SyntheticConfig::new(2_000, 4.0, 8, 11));
    for &k in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| build_index(black_box(&graph), &BuildConfig::new(k)))
        });
    }
    group.finish();
}

fn bench_pruning_and_strategy(c: &mut Criterion) {
    let mut group = c.benchmark_group("rlc_build_variants");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    let graph = erdos_renyi(&SyntheticConfig::new(2_000, 3.0, 8, 13));
    group.bench_function("paper_defaults", |b| {
        b.iter(|| build_index(black_box(&graph), &BuildConfig::new(2)))
    });
    group.bench_function("no_pruning", |b| {
        b.iter(|| build_index(black_box(&graph), &BuildConfig::new(2).without_pruning()))
    });
    group.bench_function("lazy_kbs", |b| {
        b.iter(|| {
            build_index(
                black_box(&graph),
                &BuildConfig::new(2).with_strategy(KbsStrategy::Lazy),
            )
        })
    });
    group.finish();
}

fn bench_etc_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("etc_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    let graph = erdos_renyi(&SyntheticConfig::new(1_000, 3.0, 8, 17));
    group.bench_function("er_1000_d3_l8_k2", |b| {
        b.iter(|| EtcIndex::build(black_box(&graph), &EtcBuildConfig::new(2)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_rlc_build_by_family,
    bench_rlc_build_by_k,
    bench_pruning_and_strategy,
    bench_etc_build
);
criterion_main!(benches);
