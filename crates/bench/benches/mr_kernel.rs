//! Micro-benchmarks of the label-sequence theory underlying the index:
//! minimum-repeat computation (KMP) and kernel/tail decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_core::repeats::{kernel_tail, minimum_repeat_len};
use rlc_graph::Label;
use std::hint::black_box;

fn random_sequence(len: usize, labels: u16, seed: u64) -> Vec<Label> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| Label(rng.gen_range(0..labels))).collect()
}

fn periodic_sequence(period: usize, repetitions: usize) -> Vec<Label> {
    (0..period * repetitions)
        .map(|i| Label((i % period) as u16))
        .collect()
}

fn bench_minimum_repeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimum_repeat");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &len in &[4usize, 16, 64, 256] {
        let random = random_sequence(len, 8, 42);
        group.bench_with_input(BenchmarkId::new("random", len), &random, |b, seq| {
            b.iter(|| minimum_repeat_len(black_box(seq)))
        });
        let periodic = periodic_sequence(4, len / 4);
        group.bench_with_input(BenchmarkId::new("periodic", len), &periodic, |b, seq| {
            b.iter(|| minimum_repeat_len(black_box(seq)))
        });
    }
    group.finish();
}

fn bench_kernel_tail(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_tail");
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &k in &[2usize, 3, 4] {
        // The indexing algorithm decomposes sequences of length 2k.
        let seq = periodic_sequence(k, 2);
        group.bench_with_input(BenchmarkId::new("length_2k", k), &seq, |b, seq| {
            b.iter(|| kernel_tail(black_box(seq)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_minimum_repeat, bench_kernel_tail);
criterion_main!(benches);
