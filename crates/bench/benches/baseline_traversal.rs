//! Benchmarks of the online baselines (BFS, BiBFS, DFS) against the RLC
//! index on the same workload — the micro-scale counterpart of Fig. 3.

use criterion::{criterion_group, criterion_main, Criterion};
use rlc_baselines::{BfsEngine, BiBfsEngine, DfsEngine};
use rlc_core::engine::{IndexEngine, ReachabilityEngine};
use rlc_core::{build_index, BuildConfig, Query};
use rlc_graph::generate::{barabasi_albert, SyntheticConfig};
use rlc_workloads::{generate_query_set, QueryGenConfig};
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let graph = barabasi_albert(&SyntheticConfig::new(5_000, 4.0, 8, 21));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let queries = generate_query_set(&graph, &QueryGenConfig::small(20, 20, 2, 7));
    let unified: Vec<Query> = queries.iter().map(|(q, _)| Query::from(q)).collect();

    let mut group = c.benchmark_group("fig3_micro");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(4));
    let bfs = BfsEngine::new(&graph);
    let bibfs = BiBfsEngine::new(&graph);
    let dfs = DfsEngine::new(&graph);
    let rlc = IndexEngine::new(&graph, &index);
    let engines: [(&str, &dyn ReachabilityEngine); 4] = [
        ("bfs", &bfs),
        ("bibfs", &bibfs),
        ("dfs", &dfs),
        ("rlc_index", &rlc),
    ];
    for (label, engine) in engines {
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &unified {
                    if engine.evaluate(black_box(q)) == Ok(true) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
