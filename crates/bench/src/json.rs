//! The `--json` sidecar: machine-readable experiment results.
//!
//! Every experiment binary funnels through [`run_experiment`]: the
//! plain-text report prints exactly as before, and when the common
//! `--json` flag is set, the run additionally writes `BENCH_<name>.json`
//! in the working directory with the experiment name, the parsed
//! arguments, the runtime kernel lane ([`rlc_core::kernel_name`]), the
//! rayon worker count, the wall-clock time, and every report table as
//! structured `title`/`header`/`rows` (captured via
//! [`rlc_workloads::capture_tables`] while the experiment runs).
//!
//! The JSON is hand-rendered — tables are strings all the way down, so
//! the only machinery needed is [`rlc_obs::json_escape`].

use crate::CommonArgs;
use rlc_obs::json_escape;
use rlc_workloads::{capture_tables, drain_tables, TableSnapshot};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Runs one experiment end to end: captures its tables, prints its
/// plain-text report, and (with `--json`) writes the `BENCH_<name>.json`
/// sidecar.
pub fn run_experiment(name: &str, args: &CommonArgs, run: impl FnOnce(&CommonArgs) -> String) {
    if args.json {
        capture_tables();
    }
    let started = Instant::now();
    let report = run(args);
    let elapsed = started.elapsed();
    print!("{report}");
    if args.json {
        let tables = drain_tables();
        let path = format!("BENCH_{name}.json");
        match std::fs::write(&path, render_report(name, args, &tables, elapsed)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(error) => eprintln!("could not write {path}: {error}"),
        }
    }
}

/// Renders the sidecar document. Separated from the I/O so tests can
/// validate the JSON without touching the filesystem.
pub fn render_report(
    name: &str,
    args: &CommonArgs,
    tables: &[TableSnapshot],
    elapsed: Duration,
) -> String {
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"experiment\":\"{}\",\"scale\":{},\"seed\":{},\"queries\":{},\"quick\":{},\
         \"kernel_lane\":\"{}\",\"threads\":{},\"elapsed_seconds\":{:.6},\"tables\":[",
        json_escape(name),
        args.scale,
        args.seed,
        args.queries,
        args.quick,
        json_escape(rlc_core::kernel_name()),
        rayon::current_num_threads(),
        elapsed.as_secs_f64(),
    );
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"title\":\"{}\",\"header\":",
            json_escape(&table.title)
        );
        write_string_array(&mut out, &table.header);
        out.push_str(",\"rows\":[");
        for (j, row) in table.rows.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_string_array(&mut out, row);
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

fn write_string_array(out: &mut String, cells: &[String]) {
    out.push('[');
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(cell));
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sidecar_is_valid_json_with_the_promised_fields() {
        let args = CommonArgs {
            json: true,
            ..CommonArgs::default()
        };
        let tables = vec![TableSnapshot {
            title: "Fig. 3 \"probe\"".to_owned(),
            header: vec!["graph".to_owned(), "time".to_owned()],
            rows: vec![vec!["AD".to_owned(), "0.7 s".to_owned()]],
        }];
        let doc = render_report("fig3", &args, &tables, Duration::from_millis(1500));
        // The vendored serde_json lives downstream; validate shape by
        // re-parsing with it in the e2e suite — here, structural greps.
        assert!(doc.starts_with("{\"experiment\":\"fig3\","));
        assert!(doc.contains("\"seed\":42"));
        assert!(doc.contains("\"quick\":false"));
        assert!(doc.contains(&format!("\"kernel_lane\":\"{}\"", rlc_core::kernel_name())));
        assert!(doc.contains("\"elapsed_seconds\":1.500000"));
        assert!(doc.contains("\"title\":\"Fig. 3 \\\"probe\\\"\""));
        assert!(doc.contains("\"rows\":[[\"AD\",\"0.7 s\"]]"));
        assert!(doc.ends_with("]}"));
    }

    #[test]
    fn empty_capture_renders_an_empty_table_list() {
        let doc = render_report("t", &CommonArgs::default(), &[], Duration::ZERO);
        assert!(doc.ends_with("\"tables\":[]}"));
    }
}
