//! # rlc-bench
//!
//! Experiment harness for the RLC index reproduction. Each binary under
//! `src/bin/` regenerates one table or figure of the paper (see DESIGN.md for
//! the experiment index); the Criterion benchmarks under `benches/` cover the
//! micro-level costs (minimum-repeat computation, query latency, index
//! construction, online traversals).
//!
//! The library part holds the pieces shared by the binaries: command-line
//! parsing of the common `--scale`/`--seed` options and measurement helpers.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cli;
pub mod experiments;
pub mod json;
pub mod measure;

pub use cli::CommonArgs;
pub use json::run_experiment;
pub use measure::{
    evaluate_capped, evaluate_query_set, median_duration, CappedTiming, QuerySetTiming,
};
