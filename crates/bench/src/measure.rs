//! Measurement helpers shared by the experiment binaries.
//!
//! Every helper takes the evaluator as a `&dyn ReachabilityEngine`, so the
//! experiments time BFS, BiBFS, DFS, ETC, the RLC index and the simulated
//! engines through one code path instead of hand-rolled per-evaluator
//! closures.

use rlc_core::engine::ReachabilityEngine;
use rlc_core::{Query, RlcQuery};
use rlc_workloads::QuerySet;
use std::time::{Duration, Instant};

/// Timing of a full query set under one evaluator, in the form the paper
/// reports (total execution time of 1000 queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySetTiming {
    /// Total wall-clock time over the true-query set.
    pub true_total: Duration,
    /// Total wall-clock time over the false-query set.
    pub false_total: Duration,
    /// Number of wrong answers (should always be zero; counted as a safety
    /// net so that a broken evaluator cannot silently report a fast time).
    pub wrong_answers: usize,
}

impl QuerySetTiming {
    /// Total time over both sets.
    pub fn total(&self) -> Duration {
        self.true_total + self.false_total
    }

    /// Mean time per query across both sets.
    pub fn per_query(&self, set: &QuerySet) -> Duration {
        if set.is_empty() {
            Duration::ZERO
        } else {
            self.total() / set.len() as u32
        }
    }
}

/// Runs `engine` over every query of `set` one at a time, checking answers
/// and timing the true and false subsets separately (as Fig. 3 reports them
/// separately). Evaluation errors count as wrong answers (workload queries
/// are always valid, so a correct engine reports zero).
///
/// The conversion into the unified [`Query`] model happens before the timer
/// starts, so the measured loop is pure evaluation.
pub fn evaluate_query_set(set: &QuerySet, engine: &dyn ReachabilityEngine) -> QuerySetTiming {
    let mut wrong_answers = 0;
    let true_queries: Vec<Query> = set.true_queries.iter().map(Query::from).collect();
    let false_queries: Vec<Query> = set.false_queries.iter().map(Query::from).collect();

    let start = Instant::now();
    for q in &true_queries {
        if engine.evaluate(q) != Ok(true) {
            wrong_answers += 1;
        }
    }
    let true_total = start.elapsed();

    let start = Instant::now();
    for q in &false_queries {
        if engine.evaluate(q) != Ok(false) {
            wrong_answers += 1;
        }
    }
    let false_total = start.elapsed();

    QuerySetTiming {
        true_total,
        false_total,
        wrong_answers,
    }
}

/// Runs `engine` over the query set through the rayon-parallel batch path
/// ([`ReachabilityEngine::evaluate_batch`]), checking answers and timing the
/// two subsets separately. Comparing against [`evaluate_query_set`] measures
/// the batch speed-up.
pub fn evaluate_query_set_batch(set: &QuerySet, engine: &dyn ReachabilityEngine) -> QuerySetTiming {
    let mut wrong_answers = 0;
    let true_queries: Vec<Query> = set.true_queries.iter().map(Query::from).collect();
    let false_queries: Vec<Query> = set.false_queries.iter().map(Query::from).collect();

    let start = Instant::now();
    let answers = engine.evaluate_batch(&true_queries);
    let true_total = start.elapsed();
    wrong_answers += answers.iter().filter(|&a| *a != Ok(true)).count();

    let start = Instant::now();
    let answers = engine.evaluate_batch(&false_queries);
    let false_total = start.elapsed();
    wrong_answers += answers.iter().filter(|&a| *a != Ok(false)).count();

    QuerySetTiming {
        true_total,
        false_total,
        wrong_answers,
    }
}

/// Result of evaluating a query list under a wall-clock cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CappedTiming {
    /// Time spent on the queries that were actually evaluated.
    pub elapsed: Duration,
    /// Number of queries evaluated before the cap was hit.
    pub evaluated: usize,
    /// Total number of queries in the list.
    pub total: usize,
    /// Wrong answers among the evaluated queries.
    pub wrong_answers: usize,
}

impl CappedTiming {
    /// Whether the cap stopped the evaluation early.
    pub fn truncated(&self) -> bool {
        self.evaluated < self.total
    }

    /// Total time, linearly extrapolated to the full list when truncated —
    /// the paper marks such entries as timeouts ("X"); the extrapolation is
    /// only used to place them on the right order of magnitude.
    pub fn extrapolated_total(&self) -> Duration {
        if self.evaluated == 0 {
            Duration::ZERO
        } else if self.truncated() {
            self.elapsed
                .mul_f64(self.total as f64 / self.evaluated as f64)
        } else {
            self.elapsed
        }
    }
}

/// Evaluates `queries` (all sharing the same expected answer) under a
/// wall-clock cap, stopping once `budget` is exceeded. Evaluation errors
/// count as wrong answers.
pub fn evaluate_capped(
    queries: &[RlcQuery],
    expected: bool,
    budget: Duration,
    engine: &dyn ReachabilityEngine,
) -> CappedTiming {
    let unified: Vec<Query> = queries.iter().map(Query::from).collect();
    let start = Instant::now();
    let mut evaluated = 0usize;
    let mut wrong_answers = 0usize;
    for q in &unified {
        if start.elapsed() > budget {
            break;
        }
        if engine.evaluate(q) != Ok(expected) {
            wrong_answers += 1;
        }
        evaluated += 1;
    }
    CappedTiming {
        elapsed: start.elapsed(),
        evaluated,
        total: queries.len(),
        wrong_answers,
    }
}

/// Median of a set of durations (the paper reports medians over 20 runs for
/// Table V).
pub fn median_duration(mut samples: Vec<Duration>) -> Duration {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_core::engine::IndexEngine;
    use rlc_core::{build_index, BuildConfig};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
    use rlc_workloads::{generate_query_set, QueryGenConfig};

    /// An engine that ignores the query — used to exercise the wrong-answer
    /// counters.
    struct ConstEngine(bool);

    impl ReachabilityEngine for ConstEngine {
        fn name(&self) -> &str {
            "const"
        }

        fn prepare(
            &self,
            constraint: &rlc_core::Constraint,
        ) -> Result<rlc_core::Prepared, rlc_core::QueryError> {
            Ok(rlc_core::Prepared::new(constraint.clone(), self.name(), ()))
        }

        fn evaluate_prepared(
            &self,
            _source: u32,
            _target: u32,
            _prepared: &rlc_core::Prepared,
        ) -> Result<bool, rlc_core::QueryError> {
            Ok(self.0)
        }
    }

    #[test]
    fn evaluate_query_set_detects_wrong_answers() {
        let g = erdos_renyi(&SyntheticConfig::new(100, 3.0, 3, 1));
        let set = generate_query_set(&g, &QueryGenConfig::small(10, 10, 2, 1));
        let always_true = evaluate_query_set(&set, &ConstEngine(true));
        assert_eq!(always_true.wrong_answers, 10);
        let always_false = evaluate_query_set(&set, &ConstEngine(false));
        assert_eq!(always_false.wrong_answers, 10);
        // The batch path counts identically.
        assert_eq!(
            evaluate_query_set_batch(&set, &ConstEngine(true)).wrong_answers,
            10
        );
    }

    #[test]
    fn correct_evaluator_has_no_wrong_answers() {
        let g = erdos_renyi(&SyntheticConfig::new(120, 3.0, 3, 2));
        let set = generate_query_set(&g, &QueryGenConfig::small(15, 15, 2, 3));
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let engine = IndexEngine::new(&g, &index);
        let timing = evaluate_query_set(&set, &engine);
        assert_eq!(timing.wrong_answers, 0);
        assert!(timing.total() >= timing.true_total);
        assert!(timing.per_query(&set) <= timing.total());
        let batch_timing = evaluate_query_set_batch(&set, &engine);
        assert_eq!(batch_timing.wrong_answers, 0);
    }

    #[test]
    fn capped_evaluation_reports_progress() {
        let g = erdos_renyi(&SyntheticConfig::new(100, 3.0, 3, 5));
        let set = generate_query_set(&g, &QueryGenConfig::small(8, 8, 2, 7));
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let engine = IndexEngine::new(&g, &index);
        let timing = evaluate_capped(&set.true_queries, true, Duration::from_secs(60), &engine);
        assert_eq!(timing.evaluated, 8);
        assert_eq!(timing.wrong_answers, 0);
        assert!(!timing.truncated());
        assert_eq!(timing.extrapolated_total(), timing.elapsed);
    }

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        let ms = |n| Duration::from_millis(n);
        assert_eq!(median_duration(vec![ms(3), ms(1), ms(2)]), ms(2));
        assert_eq!(
            median_duration(vec![ms(4), ms(1), ms(2), ms(3)]),
            ms(2) + ms(1) / 2
        );
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn median_of_empty_panics() {
        let _ = median_duration(vec![]);
    }
}
