//! Measurement helpers shared by the experiment binaries.

use rlc_core::RlcQuery;
use rlc_workloads::QuerySet;
use std::time::{Duration, Instant};

/// Timing of a full query set under one evaluator, in the form the paper
/// reports (total execution time of 1000 queries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuerySetTiming {
    /// Total wall-clock time over the true-query set.
    pub true_total: Duration,
    /// Total wall-clock time over the false-query set.
    pub false_total: Duration,
    /// Number of wrong answers (should always be zero; counted as a safety
    /// net so that a broken evaluator cannot silently report a fast time).
    pub wrong_answers: usize,
}

impl QuerySetTiming {
    /// Total time over both sets.
    pub fn total(&self) -> Duration {
        self.true_total + self.false_total
    }

    /// Mean time per query across both sets.
    pub fn per_query(&self, set: &QuerySet) -> Duration {
        if set.is_empty() {
            Duration::ZERO
        } else {
            self.total() / set.len() as u32
        }
    }
}

/// Runs `evaluate` over every query of `set`, checking answers and timing the
/// true and false subsets separately (as Fig. 3 reports them separately).
pub fn evaluate_query_set(
    set: &QuerySet,
    mut evaluate: impl FnMut(&RlcQuery) -> bool,
) -> QuerySetTiming {
    let mut wrong_answers = 0;

    let start = Instant::now();
    for q in &set.true_queries {
        if !evaluate(q) {
            wrong_answers += 1;
        }
    }
    let true_total = start.elapsed();

    let start = Instant::now();
    for q in &set.false_queries {
        if evaluate(q) {
            wrong_answers += 1;
        }
    }
    let false_total = start.elapsed();

    QuerySetTiming {
        true_total,
        false_total,
        wrong_answers,
    }
}

/// Result of evaluating a query list under a wall-clock cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CappedTiming {
    /// Time spent on the queries that were actually evaluated.
    pub elapsed: Duration,
    /// Number of queries evaluated before the cap was hit.
    pub evaluated: usize,
    /// Total number of queries in the list.
    pub total: usize,
    /// Wrong answers among the evaluated queries.
    pub wrong_answers: usize,
}

impl CappedTiming {
    /// Whether the cap stopped the evaluation early.
    pub fn truncated(&self) -> bool {
        self.evaluated < self.total
    }

    /// Total time, linearly extrapolated to the full list when truncated —
    /// the paper marks such entries as timeouts ("X"); the extrapolation is
    /// only used to place them on the right order of magnitude.
    pub fn extrapolated_total(&self) -> Duration {
        if self.evaluated == 0 {
            Duration::ZERO
        } else if self.truncated() {
            self.elapsed
                .mul_f64(self.total as f64 / self.evaluated as f64)
        } else {
            self.elapsed
        }
    }
}

/// Evaluates `queries` (all sharing the same expected answer) under a
/// wall-clock cap, stopping once `budget` is exceeded.
pub fn evaluate_capped(
    queries: &[RlcQuery],
    expected: bool,
    budget: Duration,
    mut evaluate: impl FnMut(&RlcQuery) -> bool,
) -> CappedTiming {
    let start = Instant::now();
    let mut evaluated = 0usize;
    let mut wrong_answers = 0usize;
    for q in queries {
        if start.elapsed() > budget {
            break;
        }
        if evaluate(q) != expected {
            wrong_answers += 1;
        }
        evaluated += 1;
    }
    CappedTiming {
        elapsed: start.elapsed(),
        evaluated,
        total: queries.len(),
        wrong_answers,
    }
}

/// Median of a set of durations (the paper reports medians over 20 runs for
/// Table V).
pub fn median_duration(mut samples: Vec<Duration>) -> Duration {
    assert!(!samples.is_empty(), "median of an empty sample set");
    samples.sort_unstable();
    let mid = samples.len() / 2;
    if samples.len() % 2 == 1 {
        samples[mid]
    } else {
        (samples[mid - 1] + samples[mid]) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_core::{build_index, BuildConfig};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
    use rlc_workloads::{generate_query_set, QueryGenConfig};

    #[test]
    fn evaluate_query_set_detects_wrong_answers() {
        let g = erdos_renyi(&SyntheticConfig::new(100, 3.0, 3, 1));
        let set = generate_query_set(&g, &QueryGenConfig::small(10, 10, 2, 1));
        let always_true = evaluate_query_set(&set, |_| true);
        assert_eq!(always_true.wrong_answers, 10);
        let always_false = evaluate_query_set(&set, |_| false);
        assert_eq!(always_false.wrong_answers, 10);
    }

    #[test]
    fn correct_evaluator_has_no_wrong_answers() {
        let g = erdos_renyi(&SyntheticConfig::new(120, 3.0, 3, 2));
        let set = generate_query_set(&g, &QueryGenConfig::small(15, 15, 2, 3));
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let timing = evaluate_query_set(&set, |q| index.query(q));
        assert_eq!(timing.wrong_answers, 0);
        assert!(timing.total() >= timing.true_total);
        assert!(timing.per_query(&set) <= timing.total());
    }

    #[test]
    fn median_of_odd_and_even_sample_counts() {
        let ms = |n| Duration::from_millis(n);
        assert_eq!(median_duration(vec![ms(3), ms(1), ms(2)]), ms(2));
        assert_eq!(
            median_duration(vec![ms(4), ms(1), ms(2), ms(3)]),
            ms(2) + ms(1) / 2
        );
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn median_of_empty_panics() {
        let _ = median_duration(vec![]);
    }
}
