//! Minimal command-line parsing shared by the experiment binaries.
//!
//! Every binary accepts the same handful of options:
//!
//! * `--scale <f>` — fraction of the original dataset size to generate for
//!   the real-graph stand-ins (default `1/64`);
//! * `--seed <n>` — RNG seed (default 42);
//! * `--queries <n>` — queries per query set (default 1000, as in the paper);
//! * `--quick` — shrink everything aggressively for a smoke run;
//! * `--json` — additionally write a machine-readable `BENCH_<name>.json`
//!   sidecar (experiment name, arguments, kernel lane, thread count, and
//!   every report table) next to the plain-text report.
//!
//! A tiny hand-rolled parser keeps the workspace free of an argument-parsing
//! dependency.

/// Options common to all experiment binaries.
#[derive(Debug, Clone, PartialEq)]
pub struct CommonArgs {
    /// Scale factor applied to the Table III stand-in graphs.
    pub scale: f64,
    /// RNG seed used for graph and workload generation.
    pub seed: u64,
    /// Number of true queries and of false queries per query set.
    pub queries: usize,
    /// Quick mode: shrink sizes so every experiment finishes in seconds.
    pub quick: bool,
    /// Write a `BENCH_<name>.json` sidecar with the structured results.
    pub json: bool,
}

impl Default for CommonArgs {
    fn default() -> Self {
        CommonArgs {
            scale: 1.0 / 64.0,
            seed: 42,
            queries: 1000,
            quick: false,
            json: false,
        }
    }
}

impl CommonArgs {
    /// Parses the process arguments, exiting with a usage message on error.
    pub fn from_env() -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(message) => {
                eprintln!("{message}");
                eprintln!(
                    "usage: <experiment> [--scale <f>] [--seed <n>] [--queries <n>] [--quick] [--json]"
                );
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (testable entry point).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<Self, String> {
        let mut parsed = CommonArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--scale" => {
                    let value = iter.next().ok_or("--scale requires a value")?;
                    parsed.scale = value
                        .parse()
                        .map_err(|_| format!("invalid --scale value {value:?}"))?;
                    if parsed.scale <= 0.0 {
                        return Err("--scale must be positive".to_owned());
                    }
                }
                "--seed" => {
                    let value = iter.next().ok_or("--seed requires a value")?;
                    parsed.seed = value
                        .parse()
                        .map_err(|_| format!("invalid --seed value {value:?}"))?;
                }
                "--queries" => {
                    let value = iter.next().ok_or("--queries requires a value")?;
                    parsed.queries = value
                        .parse()
                        .map_err(|_| format!("invalid --queries value {value:?}"))?;
                }
                "--quick" => parsed.quick = true,
                "--json" => parsed.json = true,
                other => return Err(format!("unknown option {other:?}")),
            }
        }
        if parsed.quick {
            parsed.scale = parsed.scale.min(1.0 / 256.0);
            parsed.queries = parsed.queries.min(100);
        }
        Ok(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonArgs, String> {
        CommonArgs::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_without_arguments() {
        let args = parse(&[]).unwrap();
        assert_eq!(args, CommonArgs::default());
    }

    #[test]
    fn parses_all_options() {
        let args = parse(&["--scale", "0.5", "--seed", "7", "--queries", "10"]).unwrap();
        assert!((args.scale - 0.5).abs() < 1e-12);
        assert_eq!(args.seed, 7);
        assert_eq!(args.queries, 10);
        assert!(!args.quick);
    }

    #[test]
    fn quick_mode_shrinks_sizes() {
        let args = parse(&["--quick"]).unwrap();
        assert!(args.quick);
        assert!(args.scale <= 1.0 / 256.0);
        assert!(args.queries <= 100);
    }

    #[test]
    fn json_flag_is_off_by_default_and_parses() {
        assert!(!parse(&[]).unwrap().json);
        assert!(parse(&["--json"]).unwrap().json);
        assert!(parse(&["--quick", "--json"]).unwrap().json);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "zero"]).is_err());
        assert!(parse(&["--scale", "-1"]).is_err());
        assert!(parse(&["--unknown"]).is_err());
    }
}
