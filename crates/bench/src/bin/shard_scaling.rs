//! Binary: the shard-count scaling sweep of the sharded engine
//! (`rlc-shard`), asserting sharded-vs-unsharded answer identity per swept
//! configuration.

use rlc_bench::experiments::shard_scaling;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("shard_scaling", &args, |args| {
        format!("{}\n", shard_scaling::run(args))
    });
}
