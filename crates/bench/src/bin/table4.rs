//! Experiment binary: Table IV — indexing time and index size (RLC vs ETC).
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::table4;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("table4", &args, table4::run);
}
