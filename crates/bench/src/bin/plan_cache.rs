//! Experiment binary: cross-batch plan caching over repeated mixed batches,
//! with prepare-count instrumentation proving the once-per-process contract
//! of `PlanCache` (vs once-per-batch without it).
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::plan_cache;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("plan_cache", &args, plan_cache::run);
}
