//! Binary: the forced-backend frontier-kernel sweep — every kernel-backed
//! traversal engine answers one planned mixed batch under the forced
//! `generic` and forced SIMD backends, with per-row answer identity
//! asserted, plus raw word-op timings on large bitsets.

use rlc_bench::experiments::simd_vs_generic;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("simd_vs_generic", &args, |args| {
        format!("{}\n", simd_vs_generic::run(args))
    });
}
