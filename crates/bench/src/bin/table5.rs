//! Experiment binary: Table V — speed-ups and break-even points over graph engines.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`).

use rlc_bench::experiments::table5;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    print!("{}", table5::run(&args));
}
