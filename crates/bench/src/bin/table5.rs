//! Experiment binary: Table V — speed-ups and break-even points over graph engines.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::table5;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("table5", &args, table5::run);
}
