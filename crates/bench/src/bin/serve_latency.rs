//! Experiment binary: open-loop latency and shedding sweep of the
//! `rlc-serve` HTTP front end — p50/p95/p99 and shed rate at three offered
//! loads, with byte-identity of served answers asserted against direct
//! in-process evaluation at the lowest load.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::serve_latency;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("serve_latency", &args, serve_latency::run);
}
