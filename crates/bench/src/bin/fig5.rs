//! Experiment binary: Fig. 5 — label-set size and average degree sweep.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::fig5;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("fig5", &args, fig5::run);
}
