//! Experiment binary: planned vs naive batch evaluation under skewed
//! constraint reuse, with prepare-count instrumentation proving the
//! one-prepare-per-group contract of `BatchPlan`.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::batch_planner;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("batch_planner", &args, batch_planner::run);
}
