//! Experiment binary: Ablation A1 — pruning rules.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::ablation;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("ablation_pruning", &args, ablation::run_pruning_default);
}
