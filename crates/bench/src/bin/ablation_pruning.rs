//! Experiment binary: Ablation A1 — pruning rules.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`).

use rlc_bench::experiments::ablation;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    print!("{}", ablation::run_pruning_default(&args));
}
