//! Experiment binary: Fig. 6 — scalability in the number of vertices.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`).

use rlc_bench::experiments::fig6;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    print!("{}", fig6::run(&args));
}
