//! Experiment binary: Fig. 6 — scalability in the number of vertices.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::fig6;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("fig6", &args, fig6::run);
}
