//! Experiment binary: Fig. 7 — impact of the recursive k on synthetic graphs.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::fig7;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("fig7", &args, fig7::run);
}
