//! Experiment binary: thread-sweep of the block-parallel index build on a
//! synthetic graph, verifying every parallel build byte-identical to the
//! sequential baseline.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::build_scaling;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("build_scaling", &args, build_scaling::run);
}
