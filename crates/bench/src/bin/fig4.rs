//! Experiment binary: Fig. 4 — impact of the recursive k on real-graph stand-ins.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`).

use rlc_bench::experiments::fig4;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    print!("{}", fig4::run(&args));
}
