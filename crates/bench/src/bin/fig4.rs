//! Experiment binary: Fig. 4 — impact of the recursive k on real-graph stand-ins.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::fig4;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("fig4", &args, fig4::run);
}
