//! Experiment binary: batch-throughput measurement of the parallel
//! `ReachabilityEngine::evaluate_batch` path on a ≥ 10K-vertex synthetic
//! graph.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::batch;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("batch_throughput", &args, batch::run);
}
