//! Experiment binary: Table III — dataset overview.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::table3;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("table3", &args, table3::run);
}
