//! Experiment binary: Ablation A2 — KBS strategy and vertex ordering.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`).

use rlc_bench::experiments::ablation;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    print!("{}", ablation::run_strategy_default(&args));
}
