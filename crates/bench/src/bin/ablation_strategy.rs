//! Experiment binary: Ablation A2 — KBS strategy and vertex ordering.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::ablation;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("ablation_strategy", &args, ablation::run_strategy_default);
}
