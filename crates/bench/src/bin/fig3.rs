//! Experiment binary: Fig. 3 — query time of the true/false query sets.
//!
//! See DESIGN.md for the experiment index and the common command-line
//! options (`--scale`, `--seed`, `--queries`, `--quick`, `--json`).

use rlc_bench::experiments::fig3;
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    rlc_bench::run_experiment("fig3", &args, fig3::run);
}
