//! Experiment binary: runs every experiment of the paper in sequence and
//! prints all reports. Expect a long runtime at the default scale; pass
//! `--quick` for a smoke run.

use rlc_bench::experiments::{
    ablation, batch, batch_planner, build_scaling, fig3, fig4, fig5, fig6, fig7, plan_cache,
    serve_latency, shard_scaling, simd_vs_generic, table3, table4, table5,
};
use rlc_bench::CommonArgs;

fn main() {
    let args = CommonArgs::from_env();
    type ExperimentFn = fn(&CommonArgs) -> String;
    // The second column is the sidecar slug: with `--json`, each section
    // writes its own `BENCH_<slug>.json`, same as running its binary alone.
    let sections: Vec<(&str, &str, ExperimentFn)> = vec![
        ("Table III", "table3", table3::run),
        ("Table IV", "table4", table4::run),
        ("Fig. 3", "fig3", fig3::run),
        ("Fig. 4", "fig4", fig4::run),
        ("Fig. 5", "fig5", fig5::run),
        ("Fig. 6", "fig6", fig6::run),
        ("Fig. 7", "fig7", fig7::run),
        ("Table V", "table5", table5::run),
        (
            "Ablation A1",
            "ablation_pruning",
            ablation::run_pruning_default,
        ),
        (
            "Ablation A2",
            "ablation_strategy",
            ablation::run_strategy_default,
        ),
        ("Batch throughput", "batch_throughput", batch::run),
        ("Batch planner", "batch_planner", batch_planner::run),
        ("Plan cache", "plan_cache", plan_cache::run),
        ("Serve latency", "serve_latency", serve_latency::run),
        ("Build scaling", "build_scaling", build_scaling::run),
        ("Shard scaling", "shard_scaling", shard_scaling::run),
        ("SIMD vs generic", "simd_vs_generic", simd_vs_generic::run),
    ];
    for (name, slug, run) in sections {
        eprintln!(">>> running {name}");
        rlc_bench::run_experiment(slug, &args, |args| format!("{}\n", run(args)));
    }
}
