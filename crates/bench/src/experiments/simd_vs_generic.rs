//! SIMD vs generic frontier-kernel sweep (not from the paper).
//!
//! Validates this reproduction's runtime-dispatched bit-parallel kernels
//! (`rlc_core::kernel`): for a sweep of Erdős–Rényi graph sizes, one mixed
//! planned batch is answered by every kernel-backed traversal engine
//! (hybrid, BFS, BiBFS, DFS) under the forced `generic` backend and again
//! under the forced SIMD backend, and the two answer vectors are
//! **asserted identical per row** — and identical to the [`IndexEngine`]
//! reference. A second table times the raw word operations (intersect,
//! or-union, popcount) on large scrambled bitsets where the vector lanes
//! are not hidden behind graph traversal, asserting the same results from
//! both backends.
//!
//! On hardware without AVX2/NEON the SIMD lane degrades to the generic
//! kernel (the table titles record the resolved backend names), so the
//! identity contract is still exercised — both columns just time the same
//! code. The experiment restores automatic backend detection on exit.

use crate::CommonArgs;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_baselines::{BfsEngine, BiBfsEngine, DfsEngine};
use rlc_core::engine::{HybridEngine, IndexEngine, ReachabilityEngine};
use rlc_core::{build_index, set_kernel, BatchPlan, BuildConfig, FrontierSet, KernelChoice, Query};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_graph::Label;
use rlc_workloads::{format_duration, Table};
use std::time::{Duration, Instant};

/// Default graph sizes of the sweep.
pub const DEFAULT_SIZES: &[usize] = &[2_000, 8_000];

/// Runs the sweep with default sizes (shrunk under `--quick`).
pub fn run(args: &CommonArgs) -> String {
    if args.quick {
        run_with(args, &[500])
    } else {
        run_with(args, DEFAULT_SIZES)
    }
}

/// Runs the sweep over the given graph sizes.
pub fn run_with(args: &CommonArgs, sizes: &[usize]) -> String {
    // Resolve what the two forced lanes actually dispatch to on this
    // machine ("generic" twice when SIMD hardware is absent).
    let simd_name = set_kernel(KernelChoice::Simd);
    let generic_name = set_kernel(KernelChoice::Generic);

    let mut table = Table::new(
        &format!(
            "Frontier kernels: planned mixed batch per engine, forced `{generic_name}` vs \
             forced `{simd_name}` (answer identity asserted per row; ER graphs, d = 4, \
             |L| = 8, k = 2)"
        ),
        &[
            "|V|",
            "engine",
            generic_name,
            simd_name,
            "speedup",
            "true answers",
        ],
    );

    for &vertices in sizes {
        let graph = erdos_renyi(&SyntheticConfig::new(vertices, 4.0, 8, args.seed));
        let (index, _) = build_index(&graph, &BuildConfig::new(2));

        // The same mixed constraint pool the shard sweep uses: single- and
        // multi-block constraints, all within k = 2, with hot sources.
        let l = |i: u16| Label(i);
        let pool: Vec<Vec<Vec<Label>>> = vec![
            vec![vec![l(0)]],
            vec![vec![l(1)]],
            vec![vec![l(0), l(1)]],
            vec![vec![l(0)], vec![l(1)]],
            vec![vec![l(2)], vec![l(0), l(1)]],
        ];
        let batch_size = (args.queries / 2).clamp(48, 300);
        let n = graph.vertex_count() as u32;
        let mut rng = StdRng::seed_from_u64(args.seed ^ 0x51D0);
        let hot_sources: Vec<u32> = (0..16).map(|_| rng.gen_range(0..n)).collect();
        let queries: Vec<Query> = (0..batch_size)
            .map(|_| {
                let which = rng.gen_range(0..pool.len());
                let source = hot_sources[rng.gen_range(0..hot_sources.len())];
                let target = rng.gen_range(0..n);
                Query::concat(source, target, pool[which].clone())
                    // rlc-analyze: allow(panic-free-library) — the pool is a hardcoded list of valid block shapes; validity is static, not data-dependent
                    .expect("pool constraints are valid")
            })
            .collect();
        let plan = BatchPlan::new(&queries);
        let reference = plan.execute(&IndexEngine::new(&graph, &index));
        let truths = reference.iter().filter(|r| matches!(r, Ok(true))).count();

        // Min-of-N timing: the batch is repeated a few times per backend
        // and the fastest run is recorded, so a stray scheduler hiccup on
        // a busy (or single-CPU) host does not masquerade as a backend
        // difference. The answers of every repetition are asserted equal.
        let reps = if args.quick { 1 } else { 3 };
        let time_batch = |engine: &dyn ReachabilityEngine, choice: KernelChoice| {
            set_kernel(choice);
            let start = Instant::now();
            let mut answers = plan.execute(engine);
            let mut best = start.elapsed();
            for _ in 1..reps {
                let start = Instant::now();
                let again = plan.execute(engine);
                best = best.min(start.elapsed());
                assert_eq!(again, answers, "batch answers must be deterministic");
                answers = again;
            }
            (answers, best)
        };

        let engines: Vec<Box<dyn ReachabilityEngine + '_>> = vec![
            Box::new(HybridEngine::new(&graph, &index)),
            Box::new(BfsEngine::new(&graph)),
            Box::new(BiBfsEngine::new(&graph)),
            Box::new(DfsEngine::new(&graph)),
        ];
        for engine in &engines {
            let (generic_answers, generic_time) =
                time_batch(engine.as_ref(), KernelChoice::Generic);
            let (simd_answers, simd_time) = time_batch(engine.as_ref(), KernelChoice::Simd);

            // The acceptance-bar contract: both backends answer every row
            // of the batch identically, and match the index reference.
            assert_eq!(
                generic_answers,
                simd_answers,
                "|V| = {vertices}: {} answers diverge between kernel backends",
                engine.name()
            );
            assert_eq!(
                simd_answers,
                reference,
                "|V| = {vertices}: {} diverges from the index reference",
                engine.name()
            );

            table.add_row(vec![
                vertices.to_string(),
                engine.name().to_string(),
                format_duration(generic_time),
                format_duration(simd_time),
                format!(
                    "{:.2}x",
                    generic_time.as_secs_f64() / simd_time.as_secs_f64().max(1e-9)
                ),
                format!("{truths}/{batch_size}"),
            ]);
        }
    }

    let micro = word_ops_table(args, generic_name, simd_name);
    set_kernel(KernelChoice::Auto);
    format!("{}\n{}", table.render(), micro)
}

/// Times the raw word operations on large scrambled bitsets, asserting
/// result identity between the two backends per operation.
fn word_ops_table(args: &CommonArgs, generic_name: &str, simd_name: &str) -> String {
    let (slots, iters) = if args.quick {
        (1 << 14, 64)
    } else {
        (1 << 20, 1_024)
    };
    let words = slots / 64;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xB175E7);
    let mut a = FrontierSet::new();
    let mut b = FrontierSet::new();
    a.begin(slots);
    b.begin(slots);
    // The two sets are dense but disjoint, so `intersects` scans every
    // word instead of exiting on the first one — the worst case, and the
    // case that matters (a bidirectional search that has not met yet).
    for slot in 0..slots {
        if rng.gen_bool(0.5) {
            a.test_and_set(slot);
        } else {
            b.test_and_set(slot);
        }
    }

    // Per backend: popcount both sets, intersect them, and or-union `a`
    // into a fresh accumulator; record (timing, observable result).
    let run_backend = |choice: KernelChoice| -> ([Duration; 3], (usize, bool, usize)) {
        set_kernel(choice);
        let start = Instant::now();
        let mut count = 0usize;
        for _ in 0..iters {
            count = a.count() + b.count();
        }
        let count_time = start.elapsed();

        let start = Instant::now();
        let mut meets = false;
        for _ in 0..iters {
            meets = a.intersects(&b);
        }
        let intersect_time = start.elapsed();

        let mut dst = FrontierSet::new();
        dst.begin(slots);
        dst.union_from(&b);
        let start = Instant::now();
        for _ in 0..iters {
            dst.union_from(&a);
        }
        let union_time = start.elapsed();
        (
            [count_time, intersect_time, union_time],
            (count, meets, dst.count()),
        )
    };

    let (generic_times, generic_results) = run_backend(KernelChoice::Generic);
    let (simd_times, simd_results) = run_backend(KernelChoice::Simd);
    assert_eq!(
        generic_results, simd_results,
        "word-op results diverge between kernel backends"
    );

    let mut table = Table::new(
        &format!(
            "Raw word ops: {words} words x {iters} passes, `{generic_name}` vs `{simd_name}` \
             (result identity asserted per op)"
        ),
        &["op", generic_name, simd_name, "speedup"],
    );
    for (op, generic, simd) in [
        ("popcount", generic_times[0], simd_times[0]),
        ("intersect", generic_times[1], simd_times[1]),
        ("or-union", generic_times[2], simd_times[2]),
    ] {
        table.add_row(vec![
            op.to_string(),
            format_duration(generic),
            format_duration(simd),
            format!(
                "{:.2}x",
                generic.as_secs_f64() / simd.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_asserts_identity_per_row() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 19,
            queries: 60,
            quick: true,
            json: false,
        };
        let report = run_with(&args, &[250]);
        assert!(report.contains("Frontier kernels"));
        assert!(report.contains("Raw word ops"));
        assert!(report.contains("popcount"));
        assert!(report.contains("bibfs") || report.contains("BiBFS") || report.contains("bi-bfs"));
        // Detection-default dispatch is restored after the sweep.
        set_kernel(KernelChoice::Auto);
    }
}
