//! Fig. 7 (Appendix C) — impact of the recursive k on synthetic graphs.
//!
//! The paper indexes a 125K-vertex ER-graph and BA-graph (d = 5, |L| = 16)
//! with k ∈ {2, 3, 4} and evaluates 1000 true / 1000 false queries per k.
//! This reproduction uses the same structure at a scaled-down vertex count.

use crate::measure::evaluate_query_set;
use crate::CommonArgs;
use rlc_core::engine::IndexEngine;
use rlc_core::{build_index, BuildConfig};
use rlc_graph::generate::{barabasi_albert, erdos_renyi, SyntheticConfig};
use rlc_graph::LabeledGraph;
use rlc_workloads::{format_bytes, format_duration, generate_query_set, QueryGenConfig, Table};
use std::time::Duration;

/// Default vertex count (the paper's 125K scaled down by 32).
pub const DEFAULT_VERTICES: usize = 3_906;

/// Runs the experiment with the default parameters.
pub fn run(args: &CommonArgs) -> String {
    let vertices = if args.quick { 800 } else { DEFAULT_VERTICES };
    run_with(args, vertices, &[2, 3, 4])
}

/// Runs the experiment with a custom vertex count and set of k values.
pub fn run_with(args: &CommonArgs, vertices: usize, ks: &[usize]) -> String {
    let budget = if args.quick {
        Duration::from_secs(20)
    } else {
        Duration::from_secs(1200)
    };
    let queries_per_set = args.queries.min(500);
    let mut out = String::new();
    type GeneratorFn = fn(&SyntheticConfig) -> LabeledGraph;
    let families: [(&str, GeneratorFn); 2] = [("ER", erdos_renyi), ("BA", barabasi_albert)];
    for (family, generate) in families {
        let mut table = Table::new(
            &format!(
                "Fig. 7 ({family}): |V| = {vertices}, d = 5, |L| = 16, varying k ({queries_per_set} queries per set)"
            ),
            &[
                "k",
                "indexing time",
                "index size",
                "entries",
                "true-query time",
                "false-query time",
            ],
        );
        let config = SyntheticConfig::new(vertices, 5.0, 16, args.seed);
        let graph = generate(&config);
        for &k in ks {
            let build_config = BuildConfig::new(k).with_time_budget(budget);
            let (index, stats) = build_index(&graph, &build_config);
            if stats.timed_out {
                table.add_row(vec![
                    k.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let mut qconfig = QueryGenConfig::paper(k, args.seed ^ (k as u64) << 17);
            qconfig.true_queries = queries_per_set;
            qconfig.false_queries = queries_per_set;
            let queries = generate_query_set(&graph, &qconfig);
            let timing = evaluate_query_set(&queries, &IndexEngine::new(&graph, &index));
            assert_eq!(timing.wrong_answers, 0, "index returned a wrong answer");
            table.add_row(vec![
                k.to_string(),
                format_duration(stats.duration),
                format_bytes(index.csr_memory_bytes()),
                index.entry_count().to_string(),
                format_duration(timing.true_total),
                format_duration(timing.false_total),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_covers_both_families() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 9,
            queries: 3,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 300, &[2]);
        assert!(report.contains("Fig. 7 (ER)"));
        assert!(report.contains("Fig. 7 (BA)"));
    }
}
