//! Shard-count scaling of the sharded engine (not from the paper).
//!
//! Validates this reproduction's `rlc-shard` subsystem at bench scale: an
//! Erdős–Rényi graph of at least 10K vertices is partitioned into a swept
//! number of shards, one RLC index is built per shard (rayon fan-out), and
//! a mixed constraint batch with hot sources is answered through the
//! constraint-grouping planner on the [`ShardedEngine`] — then **asserted
//! answer-identical** to the unsharded [`IndexEngine`] reference for every
//! swept shard count and strategy. The report records per-configuration
//! build time, cut-edge and portal counts, resident memory, and batch
//! latency.
//!
//! Like the other parallel benches, the 1-CPU container this repository is
//! grown in can demonstrate the mechanics (and the identity contract) but
//! not wall-clock scaling; re-run on a multi-core host for the real curve.

use crate::CommonArgs;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_core::engine::IndexEngine;
use rlc_core::{build_index, BatchPlan, BuildConfig, Query};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_graph::{Label, PartitionStrategy};
use rlc_shard::{ShardBuildConfig, ShardedEngine, ShardedIndex};
use rlc_workloads::{format_duration, Table};
use std::time::Instant;

/// Default vertex count (the acceptance bar is ≥ 10K vertices).
pub const DEFAULT_VERTICES: usize = 12_000;

/// Runs the sweep with default sizes.
pub fn run(args: &CommonArgs) -> String {
    let vertices = if args.quick { 2_000 } else { DEFAULT_VERTICES };
    run_with(args, vertices)
}

/// Runs the sweep on an ER graph with the given vertex count.
pub fn run_with(args: &CommonArgs, vertices: usize) -> String {
    let graph = erdos_renyi(&SyntheticConfig::new(vertices, 4.0, 8, args.seed));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let reference = IndexEngine::new(&graph, &index);

    // A mixed batch with heavy constraint reuse and hot sources (the shape
    // the grouped stitcher amortizes): every configuration must answer it
    // exactly like the unsharded reference.
    let l = |i: u16| Label(i);
    let pool: Vec<Vec<Vec<Label>>> = vec![
        vec![vec![l(0)]],
        vec![vec![l(1)]],
        vec![vec![l(0), l(1)]],
        vec![vec![l(0)], vec![l(1)]],
        vec![vec![l(2)], vec![l(0), l(1)]],
    ];
    let batch_size = (args.queries / 2).clamp(64, 400);
    let n = graph.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x54A8D);
    let hot_sources: Vec<u32> = (0..24).map(|_| rng.gen_range(0..n)).collect();
    let queries: Vec<Query> = (0..batch_size)
        .map(|_| {
            let which = rng.gen_range(0..pool.len());
            let source = hot_sources[rng.gen_range(0..hot_sources.len())];
            let target = rng.gen_range(0..n);
            // rlc-analyze: allow(panic-free-library) — the pool is a hardcoded list of valid block shapes; validity is static, not data-dependent
            Query::concat(source, target, pool[which].clone()).expect("pool constraints are valid")
        })
        .collect();
    let plan = BatchPlan::new(&queries);
    let start = Instant::now();
    let expected = plan.execute(&reference);
    let reference_time = start.elapsed();

    let mut table = Table::new(
        &format!(
            "Shard scaling: ER graph, |V| = {vertices}, d = 4, |L| = 8, k = 2, one planned \
             batch of {batch_size} queries over {} constraints (identity vs unsharded \
             asserted per row; unsharded batch {})",
            pool.len(),
            format_duration(reference_time),
        ),
        &[
            "shards",
            "strategy",
            "build",
            "cut edges",
            "portals in/out",
            "memory [MiB]",
            "batch time",
        ],
    );

    let sweep: Vec<(usize, PartitionStrategy, &str)> = vec![
        (1, PartitionStrategy::Contiguous, "contiguous"),
        (2, PartitionStrategy::Contiguous, "contiguous"),
        (4, PartitionStrategy::Contiguous, "contiguous"),
        (8, PartitionStrategy::Contiguous, "contiguous"),
        (4, PartitionStrategy::Hash { seed: args.seed }, "hash"),
        (4, PartitionStrategy::DegreeAware, "degree-aware"),
    ];
    for (shards, strategy, strategy_name) in sweep {
        let config = ShardBuildConfig::new(2, shards).with_strategy(strategy);
        let start = Instant::now();
        // rlc-analyze: allow(panic-free-library) — the sweep uses literal shard counts >= 1, the only build precondition
        let (sharded, _) = ShardedIndex::build(&graph, &config).expect("shard count is valid");
        let build_time = start.elapsed();
        let stats = sharded.stats();
        let engine = ShardedEngine::new(&graph, &sharded);

        let start = Instant::now();
        let answers = plan.execute(&engine);
        let batch_time = start.elapsed();
        // The acceptance-bar contract: sharded answers are identical to the
        // unsharded reference at every swept shard count.
        assert_eq!(
            answers, expected,
            "sharded ({shards} x {strategy_name}) answers diverge from the unsharded reference"
        );

        let (portals_in, portals_out) = stats
            .shards
            .iter()
            .fold((0usize, 0usize), |(pin, pout), s| {
                (pin + s.entry_portals, pout + s.exit_portals)
            });
        table.add_row(vec![
            shards.to_string(),
            strategy_name.to_string(),
            format_duration(build_time),
            stats.cut_edges.to_string(),
            format!("{portals_in}/{portals_out}"),
            format!("{:.1}", stats.memory_bytes as f64 / (1024.0 * 1024.0)),
            format_duration(batch_time),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_asserts_identity_per_shard_count() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 33,
            queries: 60,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 300);
        assert!(report.contains("Shard scaling"));
        assert!(report.contains("contiguous"));
        assert!(report.contains("degree-aware"));
        assert!(report.contains("cut edges"));
    }
}
