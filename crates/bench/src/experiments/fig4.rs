//! Fig. 4 — impact of the recursive k value on real-graph stand-ins.
//!
//! As in the paper, the TW (Twitter) and WG (Web-Google) stand-ins are
//! indexed with k = 2, 3 and 4, and for every k a workload whose constraints
//! have exactly k labels is evaluated. Reported: indexing time, index size,
//! and query-set execution time for the true and false sets.

use crate::experiments::prepare_dataset;
use crate::measure::evaluate_query_set;
use crate::CommonArgs;
use rlc_core::engine::IndexEngine;
use rlc_core::{build_index, BuildConfig};
use rlc_workloads::datasets::table3_catalog;
use rlc_workloads::{format_bytes, format_duration, Table};
use std::time::Duration;

/// Runs the experiment with the paper's datasets (TW, WG) and k ∈ {2, 3, 4}.
pub fn run(args: &CommonArgs) -> String {
    run_subset(args, &["TW", "WG"], &[2, 3, 4])
}

/// Runs the experiment over the given dataset codes and k values.
pub fn run_subset(args: &CommonArgs, codes: &[&str], ks: &[usize]) -> String {
    let budget = if args.quick {
        Duration::from_secs(15)
    } else {
        Duration::from_secs(900)
    };
    let mut table = Table::new(
        &format!(
            "Fig. 4: RLC index performance for different recursive k (scale 1/{:.0})",
            1.0 / args.scale
        ),
        &[
            "graph",
            "k",
            "indexing time",
            "index size",
            "entries",
            "true-query time",
            "false-query time",
        ],
    );
    for spec in table3_catalog() {
        if !codes.contains(&spec.code) {
            continue;
        }
        for &k in ks {
            let (graph, queries) = prepare_dataset(&spec, args, k);
            let config = BuildConfig::new(k).with_time_budget(budget);
            let (index, stats) = build_index(&graph, &config);
            if stats.timed_out {
                table.add_row(vec![
                    spec.code.to_string(),
                    k.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
                continue;
            }
            let timing = evaluate_query_set(&queries, &IndexEngine::new(&graph, &index));
            assert_eq!(timing.wrong_answers, 0, "index returned a wrong answer");
            table.add_row(vec![
                spec.code.to_string(),
                k.to_string(),
                format_duration(stats.duration),
                format_bytes(index.csr_memory_bytes()),
                index.entry_count().to_string(),
                format_duration(timing.true_total),
                format_duration(timing.false_total),
            ]);
        }
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_covers_requested_ks() {
        let args = CommonArgs {
            scale: 1.0 / 2048.0,
            seed: 2,
            queries: 3,
            quick: true,
            json: false,
        };
        let report = run_subset(&args, &["TW"], &[2, 3]);
        assert!(report.contains("TW"));
        assert!(report.contains("indexing time"));
    }
}
