//! Table V — speed-ups (SU) and workload-size break-even points (BEP) of the
//! RLC index over graph engines.
//!
//! As in the paper, the WN (Web-NotreDame) stand-in is indexed once with
//! k = 3 and four query shapes are evaluated on every engine:
//!
//! * Q1 — `a+` (single label under the Kleene plus),
//! * Q2 — `(a ∘ b)+` (concatenation of length 2),
//! * Q3 — `(a ∘ b ∘ c)+` (concatenation of length 3),
//! * Q4 — `a+ ∘ b+` (an extended query evaluated by the RLC index combined
//!   with an online traversal).
//!
//! The engines are the three simulated archetypes of `rlc-engine-sim`
//! (see DESIGN.md for the substitution rationale). For every engine and query
//! shape the report gives the median per-query speed-up of the RLC index and
//! the number of queries after which building the index pays off
//! (`BEP = indexing time / (engine time − RLC time)` per query).

use crate::measure::median_duration;
use crate::CommonArgs;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_core::engine::{IndexEngine, ReachabilityEngine};
use rlc_core::{build_index, BuildConfig, Query};
use rlc_engine_sim::all_engines;
use rlc_graph::{Label, LabeledGraph, VertexId};
use rlc_workloads::datasets::dataset_by_code;
use rlc_workloads::{format_duration, Table};
use std::time::{Duration, Instant};

/// Runs the experiment with the paper's setup (20 query instances per shape).
pub fn run(args: &CommonArgs) -> String {
    run_with(args, 20)
}

/// Runs the experiment with a custom number of query instances per shape.
pub fn run_with(args: &CommonArgs, instances_per_shape: usize) -> String {
    // rlc-analyze: allow(panic-free-library) — "WN" is a literal code of the static dataset catalog; a miss is a broken catalog, not an input error
    let spec = dataset_by_code("WN").expect("WN is part of the catalog");
    let graph = spec.generate(args.scale, args.seed);

    let build_started = Instant::now();
    let (index, build_stats) = build_index(&graph, &BuildConfig::new(3));
    let indexing_time = build_started.elapsed().max(build_stats.duration);
    let rlc = IndexEngine::new(&graph, &index);

    // The three most frequent labels play the roles of a, b, c (frequent
    // labels make the online engines do the most work, matching the paper's
    // choice of labels that occur on real property paths).
    let (a, b, c) = top_labels(&graph);
    let shapes: Vec<(&str, Vec<Vec<Label>>)> = vec![
        ("Q1: a+", vec![vec![a]]),
        ("Q2: (a.b)+", vec![vec![a, b]]),
        ("Q3: (a.b.c)+", vec![vec![a, b, c]]),
        ("Q4: a+ . b+", vec![vec![a], vec![b]]),
    ];

    let engines = all_engines(&graph);
    let mut table = Table::new(
        &format!(
            "Table V: speed-ups (SU) and break-even points (BEP) on the WN stand-in (k = 3, scale 1/{:.0}, indexing time {})",
            1.0 / args.scale,
            format_duration(indexing_time)
        ),
        &[
            "engine", "Q1 SU", "Q1 BEP", "Q2 SU", "Q2 BEP", "Q3 SU", "Q3 BEP", "Q4 SU", "Q4 BEP",
        ],
    );

    // Pre-draw the (source, target) instances once and pre-build the unified
    // queries per shape, so that every engine answers exactly the same
    // queries and the timed sections measure evaluation only.
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x7AB1E5);
    let n = graph.vertex_count() as u32;
    let instances: Vec<(VertexId, VertexId)> = (0..instances_per_shape)
        .map(|_| (rng.gen_range(0..n), rng.gen_range(0..n)))
        .collect();
    let shape_queries: Vec<Vec<Query>> = shapes
        .iter()
        .map(|(_, blocks)| {
            instances
                .iter()
                .map(|&(s, t)| {
                    // rlc-analyze: allow(panic-free-library) — the Table V shape list is hardcoded; validity is static, not data-dependent
                    Query::concat(s, t, blocks.clone()).expect("Table V shapes are valid")
                })
                .collect()
        })
        .collect();

    // Median per-query time of the RLC index (hybrid evaluation handles both
    // the single-block and the concatenated shapes uniformly).
    let rlc_medians: Vec<Duration> = shape_queries
        .iter()
        .map(|queries| {
            median_duration(
                queries
                    .iter()
                    .map(|q| {
                        let start = Instant::now();
                        // rlc-analyze: allow(panic-free-library) — every Table V shape has blocks of length <= the k the index was just built with
                        let _ = rlc.evaluate(q).expect("Table V shapes fit the index");
                        start.elapsed()
                    })
                    .collect(),
            )
        })
        .collect();

    for engine in &engines {
        let mut row = vec![engine.name().to_string()];
        for (shape_idx, queries) in shape_queries.iter().enumerate() {
            let engine_median = median_duration(
                queries
                    .iter()
                    .map(|q| {
                        let start = Instant::now();
                        let engine_answer = engine.evaluate(q);
                        let elapsed = start.elapsed();
                        // Safety net: the simulated engines must agree with
                        // the index, otherwise the speed-up is meaningless.
                        let index_answer = rlc.evaluate(q);
                        assert_eq!(
                            engine_answer,
                            index_answer,
                            "{} disagrees with the RLC index on ({}, {})",
                            engine.name(),
                            q.source,
                            q.target
                        );
                        elapsed
                    })
                    .collect(),
            );
            let rlc_median = rlc_medians[shape_idx];
            row.push(format_speedup(engine_median, rlc_median));
            row.push(format_bep(indexing_time, engine_median, rlc_median));
        }
        table.add_row(row);
    }
    table.render()
}

/// The three most frequent labels of the graph, by descending edge count.
fn top_labels(graph: &LabeledGraph) -> (Label, Label, Label) {
    let histogram = rlc_graph::stats::label_histogram(graph);
    let mut ranked: Vec<usize> = (0..histogram.len()).collect();
    ranked.sort_by_key(|&i| std::cmp::Reverse(histogram[i]));
    assert!(
        ranked.len() >= 3,
        "Table V needs at least three labels in the graph"
    );
    (
        Label::from_index(ranked[0]),
        Label::from_index(ranked[1]),
        Label::from_index(ranked[2]),
    )
}

fn format_speedup(engine: Duration, rlc: Duration) -> String {
    let rlc_secs = rlc.as_secs_f64().max(1e-9);
    format!("{:.0}x", engine.as_secs_f64() / rlc_secs)
}

fn format_bep(indexing: Duration, engine: Duration, rlc: Duration) -> String {
    let gain = engine.as_secs_f64() - rlc.as_secs_f64();
    if gain <= 0.0 {
        "-".to_string()
    } else {
        format!("{:.0}", (indexing.as_secs_f64() / gain).ceil())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_produces_all_engines_and_shapes() {
        let args = CommonArgs {
            scale: 1.0 / 2048.0,
            seed: 11,
            queries: 1,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 4);
        assert!(report.contains("Sys1"));
        assert!(report.contains("Sys2"));
        assert!(report.contains("Virtuoso"));
        assert!(report.contains("Q4 BEP"));
    }

    #[test]
    fn speedup_and_bep_formatting() {
        let ms = Duration::from_millis(10);
        let us = Duration::from_micros(10);
        assert_eq!(format_speedup(ms, us), "1000x");
        assert_eq!(format_bep(Duration::from_secs(1), ms, us), "101");
        assert_eq!(format_bep(Duration::from_secs(1), us, ms), "-");
    }
}
