//! Batch-throughput measurement of the parallel
//! [`ReachabilityEngine::evaluate_batch`] path.
//!
//! Not an experiment of the paper: it validates this reproduction's
//! batch-query hot path. On a synthetic graph (≥ 10K vertices at the default
//! scale) a verified query set is evaluated (a) query-at-a-time and (b)
//! through the rayon batch path at increasing worker counts, reporting
//! throughput and the speed-up over single-threaded evaluation. On a
//! multi-core host the traversal engines scale with cores; the per-thread
//! scratch buffers keep the parallel path allocation-free per query.

use crate::measure::{evaluate_query_set, evaluate_query_set_batch};
use crate::CommonArgs;
use rlc_baselines::{BfsEngine, BiBfsEngine};
use rlc_core::engine::{batch_threads, IndexEngine, ReachabilityEngine};
use rlc_core::{build_index, BatchPlan, BuildConfig, Query};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_workloads::{generate_query_set, QueryGenConfig, Table};
use std::time::{Duration, Instant};

/// Default vertex count (the acceptance bar for the batch path is a ≥ 10K
/// vertex graph).
pub const DEFAULT_VERTICES: usize = 12_000;

/// Runs the measurement with default sizes.
pub fn run(args: &CommonArgs) -> String {
    let vertices = if args.quick { 2_000 } else { DEFAULT_VERTICES };
    run_with(args, vertices)
}

/// Runs the measurement on an ER graph with the given vertex count.
pub fn run_with(args: &CommonArgs, vertices: usize) -> String {
    // The sweep changes the process-global rayon thread override: serialize
    // concurrent callers (the test suite runs experiments in parallel) and
    // clear the override afterwards.
    static SWEEP_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = SWEEP_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());

    let graph = erdos_renyi(&SyntheticConfig::new(vertices, 4.0, 8, args.seed));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));
    let mut qconfig = QueryGenConfig::paper(2, args.seed ^ 0xBA7C4);
    qconfig.true_queries = args.queries;
    qconfig.false_queries = args.queries;
    let queries = generate_query_set(&graph, &qconfig);

    let available = batch_threads();
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < available {
        thread_counts.push(t);
        t *= 2;
    }
    if available > 1 {
        thread_counts.push(available);
    }

    let mut table = Table::new(
        &format!(
            "Batch throughput: ER graph, |V| = {vertices}, d = 4, |L| = 8, k = 2, \
             {} + {} queries ({available} CPUs available)",
            queries.true_queries.len(),
            queries.false_queries.len(),
        ),
        &[
            "engine",
            "mode",
            "threads",
            "total time",
            "throughput",
            "speed-up vs 1 thread",
        ],
    );

    let bfs = BfsEngine::new(&graph);
    let bibfs = BiBfsEngine::new(&graph);
    let rlc = IndexEngine::new(&graph, &index);
    let engines: [&dyn ReachabilityEngine; 3] = [&bfs, &bibfs, &rlc];
    for engine in engines {
        // Untimed warm-up so the first timed row does not pay scratch
        // allocation and cache warming.
        let _ = evaluate_query_set(&queries, engine);
        let sequential = evaluate_query_set(&queries, engine);
        assert_eq!(
            sequential.wrong_answers,
            0,
            "{} returned a wrong answer",
            engine.name()
        );
        let sequential_total = sequential.total();
        table.add_row(vec![
            engine.name().to_string(),
            "sequential".into(),
            "1".into(),
            rlc_workloads::format_duration(sequential_total),
            throughput(queries.len(), sequential_total.as_secs_f64()),
            "1.0x".into(),
        ]);
        for &threads in &thread_counts {
            // The vendored rayon consults this process-internal override per
            // batch and honours it exactly (capped at the batch size), so
            // the sweep runs in-process — no environment mutation, which
            // would race with concurrent env readers — and the labels are
            // accurate as long as the query count is at least the thread
            // count.
            rayon::set_thread_override(Some(threads));
            let batch = evaluate_query_set_batch(&queries, engine);
            assert_eq!(batch.wrong_answers, 0);
            let batch_total = batch.total();
            table.add_row(vec![
                engine.name().to_string(),
                "batch".into(),
                threads.to_string(),
                rlc_workloads::format_duration(batch_total),
                throughput(queries.len(), batch_total.as_secs_f64()),
                format!(
                    "{:.1}x",
                    sequential_total.as_secs_f64() / batch_total.as_secs_f64().max(1e-9)
                ),
            ]);
        }
    }
    rayon::set_thread_override(None);

    // Observability overhead differential. The plan executor carries span
    // sites (prepare/execute/scatter phase histograms, cache hit/miss
    // latency): with the global registry disabled — the library default —
    // each site is one relaxed load, so the instrumented path must cost
    // what the uninstrumented one did. Measure the same planned batch with
    // observation off and on; min-of-N tames scheduler noise. The < 2%
    // bound is asserted at full scale only — quick smoke batches are too
    // short to time against a percentage.
    let combined: Vec<Query> = queries
        .true_queries
        .iter()
        .chain(queries.false_queries.iter())
        .map(Query::from)
        .collect();
    let reps = if args.quick { 3 } else { 12 };
    let obs_was_enabled = rlc_obs::global_enabled();
    let measure = |enabled: bool| {
        rlc_obs::set_global_enabled(enabled);
        let mut best = Duration::MAX;
        for _ in 0..reps {
            let started = Instant::now();
            let answers = BatchPlan::new(&combined).execute(&rlc);
            std::hint::black_box(&answers);
            best = best.min(started.elapsed());
        }
        best
    };
    let disabled = measure(false);
    let enabled = measure(true);
    rlc_obs::set_global_enabled(obs_was_enabled);
    let overhead = enabled.as_secs_f64() / disabled.as_secs_f64().max(1e-12) - 1.0;
    for (label, best) in [("obs disabled", disabled), ("obs enabled", enabled)] {
        table.add_row(vec![
            rlc.name().to_string(),
            format!("plan, {label}"),
            "1".into(),
            rlc_workloads::format_duration(best),
            throughput(combined.len(), best.as_secs_f64()),
            if label == "obs disabled" {
                "baseline".into()
            } else {
                format!("{:+.2}% overhead", overhead * 100.0)
            },
        ]);
    }
    if !args.quick {
        assert!(
            overhead < 0.02,
            "observation overhead contract broken: enabled {enabled:?} vs disabled {disabled:?} \
             ({:.2}% > 2%)",
            overhead * 100.0
        );
    }
    table.render()
}

fn throughput(queries: usize, seconds: f64) -> String {
    if seconds <= 0.0 {
        return "-".into();
    }
    format!("{:.0} q/s", queries as f64 / seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_all_engines_and_modes() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 8,
            queries: 10,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 400);
        assert!(report.contains("BFS"));
        assert!(report.contains("BiBFS"));
        assert!(report.contains("RLC"));
        assert!(report.contains("batch"));
        assert!(report.contains("sequential"));
        assert!(report.contains("obs disabled"));
        assert!(report.contains("% overhead"));
    }
}
