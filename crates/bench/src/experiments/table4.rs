//! Table IV — indexing time and index size of the RLC index versus the
//! extended transitive closure (ETC), with recursive k = 2.
//!
//! As in the paper, ETC construction is capped by a wall-clock budget; a "-"
//! entry means the budget was exhausted (the paper uses a 24-hour cap on the
//! real graphs, this reproduction defaults to a per-graph cap appropriate for
//! the stand-in scale).

use crate::CommonArgs;
use rlc_baselines::{EtcBuildConfig, EtcIndex};
use rlc_core::{build_index, BuildConfig};
use rlc_workloads::datasets::table3_catalog;
use rlc_workloads::{format_bytes, format_duration, Table};
use std::time::Duration;

/// Wall-clock budgets used for the two builds.
#[derive(Debug, Clone, Copy)]
pub struct Budgets {
    /// Budget for the RLC index build.
    pub rlc: Duration,
    /// Budget for the ETC build.
    pub etc: Duration,
}

impl Budgets {
    fn for_args(args: &CommonArgs) -> Self {
        if args.quick {
            Budgets {
                rlc: Duration::from_secs(10),
                etc: Duration::from_secs(2),
            }
        } else {
            Budgets {
                rlc: Duration::from_secs(600),
                etc: Duration::from_secs(60),
            }
        }
    }
}

/// Runs the experiment over all thirteen datasets.
pub fn run(args: &CommonArgs) -> String {
    let codes: Vec<&str> = table3_catalog().iter().map(|d| d.code).collect();
    run_subset(args, &codes)
}

/// Runs the experiment over the named dataset codes.
pub fn run_subset(args: &CommonArgs, codes: &[&str]) -> String {
    let budgets = Budgets::for_args(args);
    let mut table = Table::new(
        &format!(
            "Table IV: indexing time (IT) and index size (IS), k = 2, scale 1/{:.0}",
            1.0 / args.scale
        ),
        &[
            "graph",
            "RLC IT",
            "RLC IS",
            "RLC entries",
            "ETC IT",
            "ETC IS",
            "ETC records",
            "paper RLC IT (s)",
            "paper RLC IS (MB)",
        ],
    );
    for spec in table3_catalog() {
        if !codes.contains(&spec.code) {
            continue;
        }
        let graph = spec.generate(args.scale, args.seed);

        let config = BuildConfig::new(2).with_time_budget(budgets.rlc);
        let (index, stats) = build_index(&graph, &config);
        let (rlc_it, rlc_is, rlc_entries) = if stats.timed_out {
            ("-".to_string(), "-".to_string(), "-".to_string())
        } else {
            (
                format_duration(stats.duration),
                format_bytes(index.csr_memory_bytes()),
                index.entry_count().to_string(),
            )
        };

        let etc_config = EtcBuildConfig::new(2).with_time_budget(budgets.etc);
        let etc = EtcIndex::build(&graph, &etc_config);
        let (etc_it, etc_is, etc_records) = if etc.stats().timed_out {
            ("-".to_string(), "-".to_string(), "-".to_string())
        } else {
            (
                format_duration(etc.stats().duration),
                format_bytes(etc.memory_bytes()),
                etc.record_count().to_string(),
            )
        };

        table.add_row(vec![
            spec.code.to_string(),
            rlc_it,
            rlc_is,
            rlc_entries,
            etc_it,
            etc_is,
            etc_records,
            format!("{:.1}", spec.paper_indexing_seconds),
            format!("{:.1}", spec.paper_index_megabytes),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows() {
        let args = CommonArgs {
            scale: 1.0 / 1024.0,
            seed: 7,
            queries: 1,
            quick: true,
            json: false,
        };
        let report = run_subset(&args, &["AD"]);
        assert!(report.contains("AD"));
        assert!(report.contains("RLC IT"));
    }
}
