//! Fig. 6 — scalability in the number of vertices (d = 5, |L| = 16).
//!
//! The paper varies |V| over {125K, 250K, 500K, 1M, 2M}; this reproduction
//! uses the same geometric progression scaled down by 32 (≈ 3.9K … 62.5K) so
//! the five builds per family finish on a laptop while preserving the growth
//! rates the figure is about.

use crate::measure::evaluate_query_set;
use crate::CommonArgs;
use rlc_core::engine::IndexEngine;
use rlc_core::{build_index, BuildConfig};
use rlc_graph::generate::{barabasi_albert, erdos_renyi, SyntheticConfig};
use rlc_graph::LabeledGraph;
use rlc_workloads::{format_bytes, format_duration, generate_query_set, QueryGenConfig, Table};

/// The paper's vertex counts scaled down by 32.
pub const DEFAULT_SIZES: [usize; 5] = [3_906, 7_812, 15_625, 31_250, 62_500];

/// Runs the experiment with the default size progression.
pub fn run(args: &CommonArgs) -> String {
    if args.quick {
        run_with(args, &[500, 1_000, 2_000])
    } else {
        run_with(args, &DEFAULT_SIZES)
    }
}

/// Runs the experiment over custom vertex counts.
pub fn run_with(args: &CommonArgs, sizes: &[usize]) -> String {
    let queries_per_set = args.queries.min(500);
    let mut out = String::new();
    type GeneratorFn = fn(&SyntheticConfig) -> LabeledGraph;
    let families: [(&str, GeneratorFn); 2] = [("ER", erdos_renyi), ("BA", barabasi_albert)];
    for (family, generate) in families {
        let mut table = Table::new(
            &format!(
                "Fig. 6 ({family}): d = 5, |L| = 16, varying |V| (k = 2, {queries_per_set} queries per set)"
            ),
            &[
                "|V|",
                "|E|",
                "indexing time",
                "index size",
                "entries",
                "true-query time",
                "false-query time",
            ],
        );
        for &n in sizes {
            let config = SyntheticConfig::new(n, 5.0, 16, args.seed);
            let graph = generate(&config);
            let (index, stats) = build_index(&graph, &BuildConfig::new(2));
            let mut qconfig = QueryGenConfig::paper(2, args.seed ^ n as u64);
            qconfig.true_queries = queries_per_set;
            qconfig.false_queries = queries_per_set;
            let queries = generate_query_set(&graph, &qconfig);
            let timing = evaluate_query_set(&queries, &IndexEngine::new(&graph, &index));
            assert_eq!(timing.wrong_answers, 0, "index returned a wrong answer");
            table.add_row(vec![
                n.to_string(),
                graph.edge_count().to_string(),
                format_duration(stats.duration),
                format_bytes(index.csr_memory_bytes()),
                index.entry_count().to_string(),
                format_duration(timing.true_total),
                format_duration(timing.false_total),
            ]);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sizes_run() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 4,
            queries: 3,
            quick: true,
            json: false,
        };
        let report = run_with(&args, &[200, 400]);
        assert!(report.contains("Fig. 6 (ER)"));
        assert!(report.contains("400"));
    }
}
