//! Cross-batch plan caching under repeated mixed batches.
//!
//! Not an experiment of the paper: it validates this reproduction's
//! [`PlanCache`]. A server-shaped workload re-answers batch after batch
//! drawn from the same small constraint pool (different vertex pairs each
//! time — users change, constraints do not). Every engine answers the same
//! sequence of batches twice:
//!
//! * **planned** — one [`BatchPlan::execute`] per batch: each distinct
//!   constraint is prepared once *per batch*;
//! * **cached** — [`BatchPlan::execute_cached`] over one shared
//!   [`PlanCache`]: each distinct constraint is prepared once *per process*,
//!   every later batch hits the resident plan.
//!
//! Prepare counts are instrumented via [`PrepareCounting`] and asserted
//! (`batches × constraints` vs `constraints`); both modes must return
//! identical answers for every batch. Cache hit/miss counters are reported
//! from [`PlanCache::stats`].

use crate::CommonArgs;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_baselines::{BfsEngine, BiBfsEngine};
use rlc_core::engine::{IndexEngine, PrepareCounting, ReachabilityEngine};
use rlc_core::{build_index, BatchPlan, BuildConfig, PlanCache, Query};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_graph::Label;
use rlc_workloads::{format_duration, Table};
use std::time::Instant;

/// Default vertex count (same bar as the planner bench: ≥ 10K vertices).
pub const DEFAULT_VERTICES: usize = 12_000;

/// Number of repeated batches (the acceptance bar is ≥ 3).
pub const BATCHES: usize = 4;

/// Runs the measurement with default sizes.
pub fn run(args: &CommonArgs) -> String {
    let vertices = if args.quick { 2_000 } else { DEFAULT_VERTICES };
    run_with(args, vertices)
}

/// Runs the measurement on an ER graph with the given vertex count.
pub fn run_with(args: &CommonArgs, vertices: usize) -> String {
    let graph = erdos_renyi(&SyntheticConfig::new(vertices, 4.0, 8, args.seed));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));

    // The constraint pool every batch draws from, all within k = 2.
    let l = |i: u16| Label(i);
    let pool: Vec<Vec<Vec<Label>>> = vec![
        vec![vec![l(0)]],
        vec![vec![l(0), l(1)]],
        vec![vec![l(1)]],
        vec![vec![l(0)], vec![l(1)]],
        vec![vec![l(2), l(3)]],
        vec![vec![l(2)], vec![l(0), l(1)]],
    ];
    let batch_size = (args.queries * 2).max(64);
    let n = graph.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xCAC4E);
    let batches: Vec<Vec<Query>> = (0..BATCHES)
        .map(|_| {
            (0..batch_size)
                .map(|_| {
                    let which = rng.gen_range(0..pool.len());
                    let source = rng.gen_range(0..n);
                    let target = rng.gen_range(0..n);
                    Query::concat(source, target, pool[which].clone())
                        // rlc-analyze: allow(panic-free-library) — the pool is a hardcoded list of valid block shapes; validity is static, not data-dependent
                        .expect("pool constraints are valid")
                })
                .collect()
        })
        .collect();
    let plans: Vec<BatchPlan<'_>> = batches.iter().map(|b| BatchPlan::new(b)).collect();
    let distinct = pool.len();
    for plan in &plans {
        assert_eq!(
            plan.group_count(),
            distinct,
            "every batch draws all {distinct} constraints"
        );
    }

    let mut table = Table::new(
        &format!(
            "Plan cache: ER graph, |V| = {vertices}, d = 4, |L| = 8, k = 2, {BATCHES} repeated \
             batches of {batch_size} queries over {distinct} constraints",
        ),
        &[
            "engine",
            "mode",
            "total time",
            "prepares",
            "cache hits",
            "speed-up vs planned",
        ],
    );

    let bfs = BfsEngine::new(&graph);
    let bibfs = BiBfsEngine::new(&graph);
    let rlc = IndexEngine::new(&graph, &index);
    let engines: [&dyn ReachabilityEngine; 3] = [&bfs, &bibfs, &rlc];
    for engine in engines {
        let counting = PrepareCounting::new(engine);

        // Untimed warm-up so neither mode pays first-touch scratch growth.
        let _ = plans[0].execute(&counting);
        counting.reset();

        let start = Instant::now();
        let planned_answers: Vec<_> = plans.iter().map(|plan| plan.execute(&counting)).collect();
        let planned_time = start.elapsed();
        let planned_prepares = counting.prepare_count();
        assert_eq!(
            planned_prepares,
            BATCHES * distinct,
            "without a cache, every batch re-prepares every constraint"
        );

        counting.reset();
        let cache = PlanCache::new();
        let start = Instant::now();
        let cached_answers: Vec<_> = plans
            .iter()
            .map(|plan| plan.execute_cached(&counting, &cache))
            .collect();
        let cached_time = start.elapsed();
        let cached_prepares = counting.prepare_count();
        // The cache's core contract: one prepare per distinct constraint
        // across ALL batches, not per batch.
        assert_eq!(
            cached_prepares, distinct,
            "with the cache, each distinct constraint is prepared exactly once per process"
        );
        assert_eq!(
            cached_answers,
            planned_answers,
            "{}: cached answers must equal planned answers",
            engine.name()
        );
        let stats = cache.stats();
        assert_eq!(stats.misses as usize, distinct);
        assert_eq!(stats.hits as usize, (BATCHES - 1) * distinct);

        table.add_row(vec![
            engine.name().to_string(),
            "planned".into(),
            format_duration(planned_time),
            planned_prepares.to_string(),
            "-".into(),
            "1.0x".into(),
        ]);
        table.add_row(vec![
            engine.name().to_string(),
            "cached".into(),
            format_duration(cached_time),
            cached_prepares.to_string(),
            stats.hits.to_string(),
            format!(
                "{:.1}x",
                planned_time.as_secs_f64() / cached_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_asserts_the_once_per_process_contract() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 23,
            queries: 40,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 300);
        assert!(report.contains("BFS"));
        assert!(report.contains("RLC"));
        assert!(report.contains("planned"));
        assert!(report.contains("cached"));
        assert!(report.contains("cache hits"));
    }
}
