//! Table III — overview of the real-world graphs and their stand-ins.
//!
//! For every dataset the report shows the statistics the paper gives for the
//! original graph next to the measured statistics of the generated stand-in,
//! so the fidelity of the substitution (label count, degree, loop density,
//! cyclicity) can be inspected directly.

use crate::CommonArgs;
use rlc_graph::stats::GraphStats;
use rlc_workloads::datasets::table3_catalog;
use rlc_workloads::Table;

/// Runs the experiment over all thirteen datasets.
pub fn run(args: &CommonArgs) -> String {
    let codes: Vec<&str> = table3_catalog().iter().map(|d| d.code).collect();
    run_subset(args, &codes)
}

/// Runs the experiment over the named dataset codes.
pub fn run_subset(args: &CommonArgs, codes: &[&str]) -> String {
    let mut table = Table::new(
        &format!(
            "Table III: dataset overview (stand-ins at scale 1/{:.0})",
            1.0 / args.scale
        ),
        &[
            "graph",
            "|V| paper",
            "|V| ours",
            "|E| paper",
            "|E| ours",
            "|L|",
            "loops paper",
            "loops ours",
            "triangles paper",
            "triangles ours",
            "SCCs ours",
        ],
    );
    for spec in table3_catalog() {
        if !codes.contains(&spec.code) {
            continue;
        }
        let graph = spec.generate(args.scale, args.seed);
        let stats = GraphStats::compute(&graph);
        table.add_row(vec![
            spec.code.to_string(),
            spec.vertices.to_string(),
            stats.vertices.to_string(),
            spec.edges.to_string(),
            stats.edges.to_string(),
            stats.labels.to_string(),
            spec.loops.to_string(),
            stats.self_loops.to_string(),
            spec.triangles.to_string(),
            stats.triangles.to_string(),
            stats.scc_count.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_requested_rows() {
        let args = CommonArgs {
            scale: 1.0 / 1024.0,
            seed: 3,
            queries: 1,
            quick: true,
            json: false,
        };
        let report = run_subset(&args, &["AD", "TW"]);
        assert!(report.contains("AD"));
        assert!(report.contains("TW"));
        assert!(!report.contains("\nWF"));
    }
}
