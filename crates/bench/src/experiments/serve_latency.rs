//! Serving latency under an open-loop load generator.
//!
//! Not an experiment of the paper: it characterizes this reproduction's
//! `rlc-serve` front end. A fixed arrival schedule (open loop — send times
//! are decided before the first request, so a slow server cannot slow the
//! offered load down) drives single-query `POST /query` requests over
//! loopback TCP at three offered loads:
//!
//! * **light** — far below capacity: every request must be answered `200`
//!   and, asserted per request, the response body must be *byte-identical*
//!   to the envelope rebuilt from direct in-process evaluation
//!   ([`BatchPlan::execute_cached`]) of the same query;
//! * **heavy** — near the micro-batcher's coalescing regime;
//! * **overload** — offered load far above a deliberately tiny server
//!   (one worker, queue depth 4, a wide batch window): the admission gate
//!   must shed with preformatted `503`s while the queue high-water mark
//!   stays within its structural bound `queue_depth + threads + 1`.
//!
//! Reported per load: answered/shed/deadline counts, shed rate, and
//! p50/p95/p99 latency over the answered requests.

use crate::CommonArgs;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_core::engine::IndexEngine;
use rlc_core::{build_index, BatchPlan, BuildConfig, PlanCache, Query};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_graph::Label;
use rlc_serve::{Counter, Epoch, ServeConfig, Server};
use rlc_workloads::{format_duration, Table};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Default vertex count of the served graph.
pub const DEFAULT_VERTICES: usize = 4_000;

/// Client threads driving the arrival schedule.
const CLIENTS: usize = 8;

/// One offered load of the sweep.
struct LoadSpec {
    name: &'static str,
    rate_per_sec: u64,
    config: ServeConfig,
    /// Lowest load: assert byte-identity against direct evaluation.
    assert_identity: bool,
    /// Overload: assert sheds happened and the queue bound held.
    expect_shedding: bool,
}

/// The outcome of one request, in schedule order.
struct Sample {
    index: usize,
    status: u16,
    body: String,
    latency: Duration,
}

/// Runs the sweep with default sizes.
pub fn run(args: &CommonArgs) -> String {
    let requests = if args.quick { 60 } else { 400 };
    run_with(args, requests)
}

/// Runs the sweep with `requests` requests per offered load.
pub fn run_with(args: &CommonArgs, requests: usize) -> String {
    let vertices = if args.quick { 500 } else { DEFAULT_VERTICES };
    let graph = Arc::new(erdos_renyi(&SyntheticConfig::new(
        vertices, 4.0, 8, args.seed,
    )));

    // The query pool: random pairs over constraints within k = 2, encoded
    // once so every load (and the direct evaluation) sees identical bytes.
    let l = |i: u16| Label(i);
    let pool: Vec<Vec<Vec<Label>>> = vec![
        vec![vec![l(0)]],
        vec![vec![l(0), l(1)]],
        vec![vec![l(1)]],
        vec![vec![l(0)], vec![l(1)]],
    ];
    let n = graph.vertex_count() as u32;
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5E74E);
    let queries: Vec<Query> = (0..requests)
        .map(|_| {
            let which = rng.gen_range(0..pool.len());
            Query::concat(
                rng.gen_range(0..n),
                rng.gen_range(0..n),
                pool[which].clone(),
            )
            // rlc-analyze: allow(panic-free-library) — the pool is a hardcoded list of valid block shapes; validity is static, not data-dependent
            .expect("pool constraints are valid")
        })
        .collect();
    let bodies: Vec<Vec<u8>> = queries.iter().map(encode_query).collect();

    // Ground truth, evaluated directly in-process over an equal index.
    let (direct_index, _) = build_index(&graph, &BuildConfig::new(2));
    let direct = IndexEngine::new(&graph, &direct_index);
    let expected: Vec<bool> = BatchPlan::new(&queries)
        .execute_cached(&direct, &PlanCache::new())
        .into_iter()
        .map(|answer| {
            // rlc-analyze: allow(panic-free-library) — every pool constraint is within k = 2, so the index engine cannot reject it
            answer.expect("pool constraints are within k")
        })
        .collect();

    let serving = ServeConfig {
        threads: 4,
        queue_depth: 64,
        batch_window: Duration::from_micros(500),
        ..ServeConfig::default()
    };
    let tiny = ServeConfig {
        threads: 1,
        queue_depth: 4,
        batch_window: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let loads = [
        LoadSpec {
            name: "light",
            rate_per_sec: 200,
            config: serving,
            assert_identity: true,
            expect_shedding: false,
        },
        LoadSpec {
            name: "heavy",
            rate_per_sec: 2_000,
            config: serving,
            assert_identity: false,
            expect_shedding: false,
        },
        LoadSpec {
            name: "overload",
            rate_per_sec: 1_000,
            config: tiny,
            assert_identity: false,
            expect_shedding: true,
        },
    ];

    let mut table = Table::new(
        &format!(
            "Serve latency: ER graph, |V| = {vertices}, k = 2, {requests} open-loop requests \
             per offered load over loopback TCP ({CLIENTS} clients)",
        ),
        &[
            "load",
            "offered rate",
            "ok",
            "shed",
            "deadline",
            "shed rate",
            "p50",
            "p95",
            "p99",
        ],
    );

    for load in &loads {
        let server = Server::start(
            load.config,
            Epoch::rlc(
                Arc::clone(&graph),
                build_index(&graph, &BuildConfig::new(2)).0,
            ),
        )
        // rlc-analyze: allow(panic-free-library) — a bench cannot proceed without its loopback server; failing loudly is the right report
        .expect("server boots on an ephemeral port");
        let generation = server.slot().generation_value();
        let samples = run_load(server.addr(), &bodies, load.rate_per_sec);
        assert_eq!(samples.len(), requests, "every scheduled request resolved");

        let ok = samples.iter().filter(|s| s.status == 200).count();
        let shed = samples.iter().filter(|s| s.status == 503).count();
        let deadline = samples.iter().filter(|s| s.status == 504).count();
        assert_eq!(
            ok + shed + deadline,
            requests,
            "{}: only 200/503/504 may appear, got other statuses",
            load.name
        );

        if load.assert_identity {
            assert_eq!(shed + deadline, 0, "the light load must not shed");
            for sample in &samples {
                let expected_body = format!(
                    "{{\"ok\":true,\"answer\":{},\"generation\":{generation}}}",
                    expected[sample.index]
                );
                assert_eq!(
                    sample.body, expected_body,
                    "light load: served bytes must equal the direct-evaluation envelope"
                );
            }
        }
        if load.expect_shedding {
            assert!(shed > 0, "the overload row must shed");
            let bound = (load.config.queue_depth + load.config.threads + 1) as u64;
            let high_water = server.metrics().queue_depth_max();
            assert!(
                high_water <= bound,
                "queue high-water {high_water} exceeds the structural bound {bound}"
            );
        }
        assert_eq!(server.metrics().get(Counter::Shed503), shed as u64);

        let mut latencies: Vec<Duration> = samples
            .iter()
            .filter(|s| s.status == 200)
            .map(|s| s.latency)
            .collect();
        latencies.sort_unstable();
        table.add_row(vec![
            load.name.to_string(),
            format!("{}/s", load.rate_per_sec),
            ok.to_string(),
            shed.to_string(),
            deadline.to_string(),
            format!("{:.1}%", 100.0 * shed as f64 / requests as f64),
            format_duration(percentile(&latencies, 0.50)),
            format_duration(percentile(&latencies, 0.95)),
            format_duration(percentile(&latencies, 0.99)),
        ]);
        server.shutdown();
    }
    table.render()
}

/// Encodes a query as the compact JSON the server parses.
fn encode_query(query: &Query) -> Vec<u8> {
    let blocks: Vec<String> = query
        .constraint()
        .blocks()
        .iter()
        .map(|block| {
            let labels: Vec<String> = block.iter().map(|l| l.index().to_string()).collect();
            format!("[{}]", labels.join(","))
        })
        .collect();
    format!(
        "{{\"source\":{},\"target\":{},\"constraint\":{{\"blocks\":[{}]}}}}",
        query.source,
        query.target,
        blocks.join(",")
    )
    .into_bytes()
}

/// Fires `bodies` at `rate_per_sec` on a fixed schedule shared by
/// [`CLIENTS`] threads (client `c` owns requests `c, c + CLIENTS, …`).
/// A client that falls behind its schedule sends immediately — the
/// schedule itself never stretches.
fn run_load(addr: SocketAddr, bodies: &[Vec<u8>], rate_per_sec: u64) -> Vec<Sample> {
    let interval = Duration::from_nanos(1_000_000_000 / rate_per_sec.max(1));
    let start = Instant::now() + Duration::from_millis(5);
    let mut samples = std::thread::scope(|scope| {
        let clients: Vec<_> = (0..CLIENTS)
            .map(|client| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    let mut index = client;
                    while index < bodies.len() {
                        let due = start + interval * index as u32;
                        if let Some(wait) = due.checked_duration_since(Instant::now()) {
                            std::thread::sleep(wait);
                        }
                        let sent = Instant::now();
                        let (status, body) = exchange(addr, &bodies[index]);
                        mine.push(Sample {
                            index,
                            status,
                            body,
                            latency: sent.elapsed(),
                        });
                        index += CLIENTS;
                    }
                    mine
                })
            })
            .collect();
        let mut all = Vec::with_capacity(bodies.len());
        for client in clients {
            // rlc-analyze: allow(panic-free-library) — a panicked client thread already failed an assertion; propagate it
            all.extend(client.join().expect("client thread"));
        }
        all
    });
    samples.sort_by_key(|s| s.index);
    samples
}

/// One raw `POST /query` exchange; a transport failure reports status 0 so
/// the caller's status accounting flags it.
fn exchange(addr: SocketAddr, body: &[u8]) -> (u16, String) {
    let mut raw = Vec::new();
    // A read error after the complete response arrived (a trailing reset
    // as the server closes a shed connection) is not a failed exchange —
    // parse whatever arrived and let the completeness check decide.
    let _ = TcpStream::connect(addr).and_then(|mut stream| {
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        let head = format!(
            "POST /query HTTP/1.1\r\nHost: localhost\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body)?;
        stream.read_to_end(&mut raw)
    });
    parse_response(&raw).unwrap_or((0, String::new()))
}

/// Splits a raw HTTP response into (status, body), requiring the body to
/// match the declared `Content-Length` — a truncated response is not a
/// response.
fn parse_response(raw: &[u8]) -> Option<(u16, String)> {
    let text = std::str::from_utf8(raw).ok()?;
    let status: u16 = text.split(' ').nth(1)?.parse().ok()?;
    let head_end = text.find("\r\n\r\n")?;
    let (head, body) = (&text[..head_end], &text[head_end + 4..]);
    let declared: usize = head
        .lines()
        .find_map(|line| {
            let lower = line.to_ascii_lowercase();
            lower
                .strip_prefix("content-length:")
                .map(|v| v.trim().to_owned())
        })?
        .parse()
        .ok()?;
    (body.len() == declared).then(|| (status, body.to_owned()))
}

/// Nearest-rank percentile over an ascending latency list.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let rank = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_asserts_identity_and_shedding() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 23,
            queries: 20,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 40);
        assert!(report.contains("light"));
        assert!(report.contains("overload"));
        assert!(report.contains("shed rate"));
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let ms = |v: u64| Duration::from_millis(v);
        let sorted = vec![ms(1), ms(2), ms(3), ms(4)];
        assert_eq!(percentile(&sorted, 0.0), ms(1));
        assert_eq!(percentile(&sorted, 0.5), ms(3));
        assert_eq!(percentile(&sorted, 1.0), ms(4));
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }
}
