//! Ablation studies of the design choices discussed in the paper:
//!
//! * **Pruning rules** — §VI attributes the four-orders-of-magnitude indexing
//!   speed-up over ETC mainly to PR1–PR3; this ablation disables them one at
//!   a time and reports indexing cost, index size and whether the result is
//!   still condensed (Theorem 2 only applies with all rules enabled).
//! * **Kernel-search strategy and vertex ordering** — §IV argues the eager
//!   strategy beats the lazy one, and §V-B adopts the IN-OUT ordering; this
//!   ablation measures both choices.

use crate::measure::evaluate_query_set;
use crate::CommonArgs;
use rlc_core::engine::IndexEngine;
use rlc_core::{build_index, BuildConfig, KbsStrategy, OrderingStrategy};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_workloads::{format_bytes, format_duration, generate_query_set, QueryGenConfig, Table};

/// Default vertex count of the ablation graphs.
pub const DEFAULT_VERTICES: usize = 5_000;

/// Runs the pruning-rule ablation with the default graph size.
pub fn run_pruning_default(args: &CommonArgs) -> String {
    let vertices = if args.quick { 800 } else { DEFAULT_VERTICES };
    run_pruning(args, vertices)
}

/// Runs the strategy/ordering ablation with the default graph size.
pub fn run_strategy_default(args: &CommonArgs) -> String {
    let vertices = if args.quick { 800 } else { DEFAULT_VERTICES };
    run_strategy(args, vertices)
}

/// Pruning-rule ablation on an ER graph with the given vertex count.
pub fn run_pruning(args: &CommonArgs, vertices: usize) -> String {
    let graph = erdos_renyi(&SyntheticConfig::new(vertices, 3.0, 8, args.seed));
    let mut qconfig = QueryGenConfig::paper(2, args.seed ^ 0xAB1);
    qconfig.true_queries = args.queries.min(200);
    qconfig.false_queries = args.queries.min(200);
    let queries = generate_query_set(&graph, &qconfig);

    let variants: Vec<(&str, BuildConfig)> = vec![
        ("all pruning rules (paper)", BuildConfig::new(2)),
        (
            "without PR1",
            BuildConfig {
                use_pr1: false,
                ..BuildConfig::new(2)
            },
        ),
        (
            "without PR2",
            BuildConfig {
                use_pr2: false,
                ..BuildConfig::new(2)
            },
        ),
        (
            "without PR3",
            BuildConfig {
                use_pr3: false,
                ..BuildConfig::new(2)
            },
        ),
        ("no pruning at all", BuildConfig::new(2).without_pruning()),
    ];
    let mut table = Table::new(
        &format!("Ablation A1: pruning rules (ER graph, |V| = {vertices}, d = 3, |L| = 8, k = 2)"),
        &[
            "configuration",
            "indexing time",
            "entries",
            "index size",
            "redundant entries",
            "condensed",
            "query time (T+F)",
        ],
    );
    for (name, config) in variants {
        let (index, stats) = build_index(&graph, &config);
        let timing = evaluate_query_set(&queries, &IndexEngine::new(&graph, &index));
        assert_eq!(timing.wrong_answers, 0, "{name}: wrong answer");
        let redundant = index.redundant_entries();
        table.add_row(vec![
            name.to_string(),
            format_duration(stats.duration),
            index.entry_count().to_string(),
            format_bytes(index.csr_memory_bytes()),
            redundant.to_string(),
            (redundant == 0).to_string(),
            format_duration(timing.total()),
        ]);
    }
    table.render()
}

/// Kernel-search strategy and vertex-ordering ablation on an ER graph.
pub fn run_strategy(args: &CommonArgs, vertices: usize) -> String {
    let graph = erdos_renyi(&SyntheticConfig::new(vertices, 3.0, 8, args.seed));

    let mut out = String::new();
    let mut strategy_table = Table::new(
        &format!(
            "Ablation A2a: eager vs lazy kernel-based search (ER graph, |V| = {vertices}, d = 3, |L| = 8, k = 2)"
        ),
        &["strategy", "indexing time", "entries", "insert attempts"],
    );
    for (name, strategy) in [
        ("eager (paper)", KbsStrategy::Eager),
        ("lazy", KbsStrategy::Lazy),
    ] {
        let config = BuildConfig::new(2).with_strategy(strategy);
        let (index, stats) = build_index(&graph, &config);
        strategy_table.add_row(vec![
            name.to_string(),
            format_duration(stats.duration),
            index.entry_count().to_string(),
            stats.insert_attempts.to_string(),
        ]);
    }
    out.push_str(&strategy_table.render());
    out.push('\n');

    let mut ordering_table = Table::new(
        &format!(
            "Ablation A2b: vertex processing order (ER graph, |V| = {vertices}, d = 3, |L| = 8, k = 2)"
        ),
        &["ordering", "indexing time", "entries", "index size"],
    );
    let orderings: Vec<(&str, OrderingStrategy)> = vec![
        ("IN-OUT degree (paper)", OrderingStrategy::InOutDegree),
        ("out-degree", OrderingStrategy::OutDegree),
        ("in-degree", OrderingStrategy::InDegree),
        ("total degree", OrderingStrategy::TotalDegree),
        ("vertex id", OrderingStrategy::VertexId),
        ("random", OrderingStrategy::Random(args.seed)),
    ];
    for (name, ordering) in orderings {
        let config = BuildConfig::new(2).with_ordering(ordering);
        let (index, stats) = build_index(&graph, &config);
        ordering_table.add_row(vec![
            name.to_string(),
            format_duration(stats.duration),
            index.entry_count().to_string(),
            format_bytes(index.csr_memory_bytes()),
        ]);
    }
    out.push_str(&ordering_table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_args() -> CommonArgs {
        CommonArgs {
            scale: 1.0,
            seed: 6,
            queries: 3,
            quick: true,
            json: false,
        }
    }

    #[test]
    fn pruning_ablation_reports_all_variants() {
        let report = run_pruning(&tiny_args(), 300);
        assert!(report.contains("all pruning rules"));
        assert!(report.contains("no pruning at all"));
        assert!(report.contains("without PR2"));
    }

    #[test]
    fn strategy_ablation_reports_both_tables() {
        let report = run_strategy(&tiny_args(), 300);
        assert!(report.contains("eager (paper)"));
        assert!(report.contains("IN-OUT degree (paper)"));
        assert!(report.contains("random"));
    }
}
