//! Implementations of every experiment of the paper's evaluation (§VI).
//!
//! Each submodule regenerates one table or figure and returns its report as a
//! plain-text string; the binaries under `src/bin/` are thin wrappers that
//! print the report. Keeping the logic in the library makes the experiments
//! testable with shrunken parameters.
//!
//! | module | regenerates |
//! |---|---|
//! | [`table3`] | Table III — dataset overview |
//! | [`table4`] | Table IV — indexing time and index size, RLC vs ETC |
//! | [`fig3`] | Fig. 3 — query time of 1000 true / 1000 false queries |
//! | [`fig4`] | Fig. 4 — impact of recursive k on real-graph stand-ins |
//! | [`fig5`] | Fig. 5 — label-set size × average degree sweep |
//! | [`fig6`] | Fig. 6 — scalability in the number of vertices |
//! | [`fig7`] | Fig. 7 (App. C) — impact of k on synthetic graphs |
//! | [`table5`] | Table V — speed-ups and break-even points vs graph engines |
//! | [`ablation`] | pruning-rule / strategy / ordering ablations |
//! | [`batch`] | parallel batch-query throughput (not from the paper) |
//! | [`batch_planner`] | planned vs naive batch evaluation under constraint reuse (not from the paper) |
//! | [`plan_cache`] | cross-batch plan caching over repeated mixed batches (not from the paper) |
//! | [`build_scaling`] | parallel index-build thread sweep (not from the paper) |
//! | [`serve_latency`] | open-loop latency/shedding sweep of the `rlc-serve` HTTP front end (not from the paper) |
//! | [`shard_scaling`] | sharded-engine shard-count sweep with answer-identity assertions (not from the paper) |
//! | [`simd_vs_generic`] | forced-backend frontier-kernel sweep with per-row answer-identity assertions (not from the paper) |

pub mod ablation;
pub mod batch;
pub mod batch_planner;
pub mod build_scaling;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod plan_cache;
pub mod serve_latency;
pub mod shard_scaling;
pub mod simd_vs_generic;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::CommonArgs;
use rlc_graph::LabeledGraph;
use rlc_workloads::datasets::DatasetSpec;
use rlc_workloads::{generate_query_set, QueryGenConfig, QuerySet};

/// Generates the stand-in graph and its query workload for one dataset.
pub fn prepare_dataset(
    spec: &DatasetSpec,
    args: &CommonArgs,
    constraint_len: usize,
) -> (LabeledGraph, QuerySet) {
    let graph = spec.generate(args.scale, args.seed);
    let mut config = QueryGenConfig::paper(constraint_len, args.seed ^ 0xC0FFEE);
    config.true_queries = args.queries;
    config.false_queries = args.queries;
    let queries = generate_query_set(&graph, &config);
    (graph, queries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_workloads::datasets::dataset_by_code;

    fn tiny_args() -> CommonArgs {
        CommonArgs {
            scale: 1.0 / 1024.0,
            seed: 1,
            queries: 5,
            quick: true,
            json: false,
        }
    }

    #[test]
    fn prepare_dataset_produces_graph_and_queries() {
        let spec = dataset_by_code("AD").unwrap();
        let (graph, queries) = prepare_dataset(&spec, &tiny_args(), 2);
        assert!(graph.vertex_count() >= 64);
        assert_eq!(queries.true_queries.len(), 5);
        assert_eq!(queries.false_queries.len(), 5);
    }

    #[test]
    fn every_experiment_runs_in_quick_mode() {
        let args = tiny_args();
        for report in [
            table3::run_subset(&args, &["AD", "EP"]),
            table4::run_subset(&args, &["AD"]),
            fig3::run_subset(&args, &["AD"]),
            fig4::run_subset(&args, &["TW"], &[2, 3]),
            fig5::run_with(&args, 400, &[2, 3], &[4, 8]),
            fig6::run_with(&args, &[300, 600]),
            fig7::run_with(&args, 400, &[2, 3]),
            table5::run_with(&args, 8),
            ablation::run_pruning(&args, 400),
            ablation::run_strategy(&args, 400),
            batch::run_with(&args, 400),
            batch_planner::run_with(&args, 400),
            plan_cache::run_with(&args, 400),
            serve_latency::run_with(&args, 30),
            build_scaling::run_with(&args, 400),
            shard_scaling::run_with(&args, 400),
            simd_vs_generic::run_with(&args, &[250]),
        ] {
            assert!(!report.is_empty());
            assert!(
                report.contains("=="),
                "report should contain a table: {report}"
            );
        }
    }
}
