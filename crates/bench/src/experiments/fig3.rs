//! Fig. 3 — execution time of 1000 true-queries and 1000 false-queries on
//! the real-world graph stand-ins, comparing BFS, BiBFS, ETC and the RLC
//! index (recursive k = 2).
//!
//! Every evaluator is driven through the [`ReachabilityEngine`] trait, so
//! this experiment contains no per-evaluator dispatch code. Slow evaluators
//! are capped per query set; a value prefixed with `~` is the linear
//! extrapolation of a truncated run (the paper marks those entries with an
//! "X" for timeout), and "-" means the ETC could not be built within its
//! budget on this graph.

use crate::experiments::prepare_dataset;
use crate::measure::evaluate_capped;
use crate::CommonArgs;
use rlc_baselines::{BfsEngine, BiBfsEngine, EtcBuildConfig, EtcEngine, EtcIndex};
use rlc_core::engine::{IndexEngine, ReachabilityEngine};
use rlc_core::{build_index, BuildConfig};
use rlc_workloads::datasets::table3_catalog;
use rlc_workloads::{format_duration, QuerySet, Table};
use std::time::Duration;

/// Runs the experiment over all thirteen datasets.
pub fn run(args: &CommonArgs) -> String {
    let codes: Vec<&str> = table3_catalog().iter().map(|d| d.code).collect();
    run_subset(args, &codes)
}

/// Runs the experiment over the named dataset codes.
pub fn run_subset(args: &CommonArgs, codes: &[&str]) -> String {
    let per_set_budget = if args.quick {
        Duration::from_secs(2)
    } else {
        Duration::from_secs(30)
    };
    let etc_budget = if args.quick {
        Duration::from_secs(2)
    } else {
        Duration::from_secs(60)
    };
    let mut table = Table::new(
        &format!(
            "Fig. 3: query-set execution time (true / false), {} queries per set, k = 2, scale 1/{:.0}",
            args.queries,
            1.0 / args.scale
        ),
        &[
            "graph", "BFS true", "BFS false", "BiBFS true", "BiBFS false", "ETC true",
            "ETC false", "RLC true", "RLC false",
        ],
    );
    for spec in table3_catalog() {
        if !codes.contains(&spec.code) {
            continue;
        }
        // Progress to stderr: the dense stand-ins (SO, WH) dominate the
        // run via their index builds, and the table only prints at the end.
        eprintln!(">>> fig3: {} ({})", spec.code, spec.name);
        let (graph, queries) = prepare_dataset(&spec, args, 2);
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let etc = EtcIndex::build(&graph, &EtcBuildConfig::new(2).with_time_budget(etc_budget));

        let mut row = vec![spec.code.to_string()];
        row.extend(run_evaluator(
            &queries,
            per_set_budget,
            &BfsEngine::new(&graph),
        ));
        row.extend(run_evaluator(
            &queries,
            per_set_budget,
            &BiBfsEngine::new(&graph),
        ));
        if etc.stats().timed_out {
            row.push("-".to_string());
            row.push("-".to_string());
        } else {
            row.extend(run_evaluator(
                &queries,
                per_set_budget,
                &EtcEngine::new(&graph, &etc),
            ));
        }
        row.extend(run_evaluator(
            &queries,
            per_set_budget,
            &IndexEngine::new(&graph, &index),
        ));
        table.add_row(row);
    }
    table.render()
}

/// Times one engine on the true set and the false set, formatting each as
/// the paper does (total time over the set).
fn run_evaluator(
    queries: &QuerySet,
    budget: Duration,
    engine: &dyn ReachabilityEngine,
) -> Vec<String> {
    let true_timing = evaluate_capped(&queries.true_queries, true, budget, engine);
    let false_timing = evaluate_capped(&queries.false_queries, false, budget, engine);
    debug_assert_eq!(
        true_timing.wrong_answers,
        0,
        "{} returned a wrong answer",
        engine.name()
    );
    debug_assert_eq!(
        false_timing.wrong_answers,
        0,
        "{} returned a wrong answer",
        engine.name()
    );
    let fmt = |t: crate::measure::CappedTiming| {
        let rendered = format_duration(t.extrapolated_total());
        if t.truncated() {
            format!("~{rendered}")
        } else {
            rendered
        }
    };
    vec![fmt(true_timing), fmt(false_timing)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_contains_all_evaluators() {
        let args = CommonArgs {
            scale: 1.0 / 1024.0,
            seed: 5,
            queries: 5,
            quick: true,
            json: false,
        };
        let report = run_subset(&args, &["AD"]);
        assert!(report.contains("BFS true"));
        assert!(report.contains("RLC false"));
        assert!(report.contains("AD"));
    }
}
