//! Fig. 5 — impact of label-set size and average degree on ER- and BA-graphs.
//!
//! The paper sweeps 1M-vertex graphs over d ∈ {2,3,4,5} and |L| ∈ {8,…,36};
//! this reproduction sweeps the same grid over a scaled-down vertex count
//! (default 20 000) so the 64-cell grid completes on a laptop. Reported per
//! cell: indexing time, index size, and true/false query-set time.

use crate::measure::evaluate_query_set;
use crate::CommonArgs;
use rlc_core::engine::IndexEngine;
use rlc_core::{build_index, BuildConfig};
use rlc_graph::generate::{barabasi_albert, erdos_renyi, SyntheticConfig};
use rlc_graph::LabeledGraph;
use rlc_workloads::{format_bytes, format_duration, generate_query_set, QueryGenConfig, Table};

/// Default vertex count of the scaled-down sweep.
pub const DEFAULT_VERTICES: usize = 20_000;

/// Runs the experiment with the paper's parameter grid on scaled-down graphs.
pub fn run(args: &CommonArgs) -> String {
    let vertices = if args.quick { 2_000 } else { DEFAULT_VERTICES };
    run_with(
        args,
        vertices,
        &[2, 3, 4, 5],
        &[8, 12, 16, 20, 24, 28, 32, 36],
    )
}

/// Runs the experiment over a custom grid.
pub fn run_with(
    args: &CommonArgs,
    vertices: usize,
    degrees: &[usize],
    label_sizes: &[usize],
) -> String {
    // Query sets per cell are capped: with 64 cells, generating the paper's
    // 2×1000 queries per cell would dominate the run without adding signal.
    let queries_per_set = args.queries.min(200);
    let mut out = String::new();
    type GeneratorFn = fn(&SyntheticConfig) -> LabeledGraph;
    let families: [(&str, GeneratorFn); 2] = [("ER", erdos_renyi), ("BA", barabasi_albert)];
    for (family, generate) in families {
        let mut table = Table::new(
            &format!(
                "Fig. 5 ({family}): |V| = {vertices}, varying d and |L| (k = 2, {queries_per_set} queries per set)"
            ),
            &[
                "d",
                "|L|",
                "indexing time",
                "index size",
                "entries",
                "true-query time",
                "false-query time",
            ],
        );
        for &d in degrees {
            for &labels in label_sizes {
                let config = SyntheticConfig::new(vertices, d as f64, labels, args.seed);
                let graph = generate(&config);
                let (index, stats) = build_index(&graph, &BuildConfig::new(2));
                let mut qconfig =
                    QueryGenConfig::paper(2, args.seed ^ (d as u64) << 8 ^ labels as u64);
                qconfig.true_queries = queries_per_set;
                qconfig.false_queries = queries_per_set;
                let queries = generate_query_set(&graph, &qconfig);
                let timing = evaluate_query_set(&queries, &IndexEngine::new(&graph, &index));
                assert_eq!(timing.wrong_answers, 0, "index returned a wrong answer");
                table.add_row(vec![
                    d.to_string(),
                    labels.to_string(),
                    format_duration(stats.duration),
                    format_bytes(index.csr_memory_bytes()),
                    index.entry_count().to_string(),
                    format_duration(timing.true_total),
                    format_duration(timing.false_total),
                ]);
            }
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_runs() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 3,
            queries: 3,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 300, &[2], &[4]);
        assert!(report.contains("Fig. 5 (ER)"));
        assert!(report.contains("Fig. 5 (BA)"));
    }
}
