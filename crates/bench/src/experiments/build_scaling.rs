//! Thread-sweep measurement of the block-parallel index build.
//!
//! Not an experiment of the paper: it validates this reproduction's parallel
//! construction path. On a synthetic graph the RLC index is built (a)
//! sequentially and (b) with the block-parallel build at increasing worker
//! counts, reporting build time and the speed-up over the sequential build.
//! Every parallel build is verified **byte-identical** to the sequential one
//! (the determinism contract of the merge), so the sweep doubles as an
//! end-to-end correctness check. On a single-CPU host the table demonstrates
//! the sweep mechanics and the determinism guarantee; wall-clock scaling
//! needs a multi-core host.

use crate::CommonArgs;
use rlc_core::engine::batch_threads;
use rlc_core::{build_index, BuildConfig};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_workloads::{format_duration, Table};

/// Default vertex count of the build-scaling graph.
pub const DEFAULT_VERTICES: usize = 20_000;

/// Runs the measurement with default sizes.
pub fn run(args: &CommonArgs) -> String {
    let vertices = if args.quick { 2_000 } else { DEFAULT_VERTICES };
    run_with(args, vertices)
}

/// Runs the measurement on an ER graph with the given vertex count.
pub fn run_with(args: &CommonArgs, vertices: usize) -> String {
    let graph = erdos_renyi(&SyntheticConfig::new(vertices, 4.0, 8, args.seed));

    let available = batch_threads();
    let mut thread_counts = vec![1usize];
    let mut t = 2;
    while t < available {
        thread_counts.push(t);
        t *= 2;
    }
    if available > 1 {
        thread_counts.push(available);
    }

    let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut table = Table::new(
        &format!(
            "Index build scaling: ER graph, |V| = {vertices}, d = 4, |L| = 8, k = 2 \
             ({cpus} CPUs, sweeping up to {available} rayon workers)"
        ),
        &[
            "mode",
            "threads",
            "build time",
            "entries",
            "speed-up vs sequential",
            "identical to sequential",
        ],
    );

    // Untimed warm-up, then the timed sequential baseline.
    let _ = build_index(&graph, &BuildConfig::new(2));
    let (baseline, baseline_stats) = build_index(&graph, &BuildConfig::new(2));
    let baseline_bytes = baseline.to_bytes();
    let baseline_secs = baseline_stats.duration.as_secs_f64();
    table.add_row(vec![
        "sequential".into(),
        "1".into(),
        format_duration(baseline_stats.duration),
        baseline.entry_count().to_string(),
        "1.0x".into(),
        "-".into(),
    ]);

    for &threads in &thread_counts {
        let config = BuildConfig::new(2).with_threads(threads);
        let (index, stats) = build_index(&graph, &config);
        let identical = index.to_bytes() == baseline_bytes;
        assert!(
            identical,
            "parallel build at {threads} threads diverged from the sequential build"
        );
        table.add_row(vec![
            "parallel".into(),
            threads.to_string(),
            format_duration(stats.duration),
            index.entry_count().to_string(),
            format!(
                "{:.1}x",
                baseline_secs / stats.duration.as_secs_f64().max(1e-9)
            ),
            "yes".into(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_verifies_determinism_per_row() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 4,
            queries: 5,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 400);
        assert!(report.contains("sequential"));
        assert!(report.contains("parallel"));
        assert!(report.contains("yes"));
    }
}
