//! Planned vs naive batch evaluation under skewed constraint reuse.
//!
//! Not an experiment of the paper: it validates this reproduction's
//! constraint-grouping [`BatchPlan`]. A mixed workload over a ≥ 10K-vertex
//! synthetic graph draws each query's constraint from a small pool with a
//! strongly skewed (power-law-like) reuse distribution — the shape of a
//! multi-user production mix, where a handful of constraints dominate. Every
//! engine then answers the same batch twice:
//!
//! * **naive** — [`ReachabilityEngine::evaluate_batch`]: rayon-parallel, but
//!   one `prepare` per query (per-query NFA construction / validation);
//! * **planned** — [`BatchPlan::execute`]: one `prepare` per distinct
//!   constraint, with same-source pairs of a group sharing one product
//!   search on the traversal engines.
//!
//! Prepare counts are instrumented via [`PrepareCounting`] and the report
//! asserts the planner's one-prepare-per-group contract; both paths must
//! return identical answers.

use crate::CommonArgs;
use rand::prelude::*;
use rand::rngs::StdRng;
use rlc_baselines::{BfsEngine, BiBfsEngine};
use rlc_core::engine::{IndexEngine, PrepareCounting, ReachabilityEngine};
use rlc_core::{build_index, BatchPlan, BuildConfig, Query};
use rlc_graph::generate::{erdos_renyi, SyntheticConfig};
use rlc_graph::Label;
use rlc_workloads::{format_duration, Table};
use std::time::Instant;

/// Default vertex count (the acceptance bar for the planner is a ≥ 10K
/// vertex graph).
pub const DEFAULT_VERTICES: usize = 12_000;

/// Runs the measurement with default sizes.
pub fn run(args: &CommonArgs) -> String {
    let vertices = if args.quick { 2_000 } else { DEFAULT_VERTICES };
    run_with(args, vertices)
}

/// Runs the measurement on an ER graph with the given vertex count.
pub fn run_with(args: &CommonArgs, vertices: usize) -> String {
    let graph = erdos_renyi(&SyntheticConfig::new(vertices, 4.0, 8, args.seed));
    let (index, _) = build_index(&graph, &BuildConfig::new(2));

    // The constraint pool: single blocks and concatenations, all within the
    // index's k = 2. Constraint `i` is drawn with weight 2^(pool - 1 - i),
    // so the first few constraints dominate the batch (skewed reuse).
    let l = |i: u16| Label(i);
    let pool: Vec<Vec<Vec<Label>>> = vec![
        vec![vec![l(0)]],
        vec![vec![l(0), l(1)]],
        vec![vec![l(1)]],
        vec![vec![l(0)], vec![l(1)]],
        vec![vec![l(2), l(3)]],
        vec![vec![l(2)], vec![l(0), l(1)]],
        vec![vec![l(4)]],
        vec![vec![l(5), l(6)]],
    ];
    let weights: Vec<u32> = (0..pool.len())
        .map(|i| 1u32 << (pool.len() - 1 - i))
        .collect();
    let total_weight: u32 = weights.iter().sum();

    let batch_size = (args.queries * 2).max(64);
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xB1A7);
    let n = graph.vertex_count() as u32;
    // Skewed sources too: half the batch comes from a few hot sources, the
    // case the grouped multi-target search accelerates.
    let hot_sources: Vec<u32> = (0..8).map(|_| rng.gen_range(0..n)).collect();
    let queries: Vec<Query> = (0..batch_size)
        .map(|_| {
            let mut draw = rng.gen_range(0..total_weight);
            let mut which = 0usize;
            while draw >= weights[which] {
                draw -= weights[which];
                which += 1;
            }
            let source = if rng.gen_range(0..2u32) == 0 {
                hot_sources[rng.gen_range(0..hot_sources.len())]
            } else {
                rng.gen_range(0..n)
            };
            let target = rng.gen_range(0..n);
            // rlc-analyze: allow(panic-free-library) — the pool is a hardcoded list of valid block shapes; validity is static, not data-dependent
            Query::concat(source, target, pool[which].clone()).expect("pool constraints are valid")
        })
        .collect();

    let plan = BatchPlan::new(&queries);
    let mut table = Table::new(
        &format!(
            "Batch planner: ER graph, |V| = {vertices}, d = 4, |L| = 8, k = 2, \
             {batch_size} queries over {} distinct constraints (skewed reuse)",
            plan.group_count(),
        ),
        &[
            "engine",
            "mode",
            "total time",
            "prepares",
            "groups",
            "speed-up vs naive",
        ],
    );

    let bfs = BfsEngine::new(&graph);
    let bibfs = BiBfsEngine::new(&graph);
    let rlc = IndexEngine::new(&graph, &index);
    let engines: [&dyn ReachabilityEngine; 3] = [&bfs, &bibfs, &rlc];
    for engine in engines {
        let counting = PrepareCounting::new(engine);

        // Untimed warm-up so neither mode pays first-touch scratch growth.
        let _ = counting.evaluate_batch(&queries);
        counting.reset();

        let start = Instant::now();
        let naive_answers = counting.evaluate_batch(&queries);
        let naive_time = start.elapsed();
        let naive_prepares = counting.prepare_count();
        assert_eq!(
            naive_prepares,
            queries.len(),
            "the naive path prepares once per query"
        );

        counting.reset();
        let start = Instant::now();
        let planned_answers = plan.execute(&counting);
        let planned_time = start.elapsed();
        let planned_prepares = counting.prepare_count();
        // The planner's core contract: one prepare per distinct constraint.
        assert_eq!(
            planned_prepares,
            plan.group_count(),
            "BatchPlan must prepare each distinct constraint exactly once"
        );
        assert_eq!(
            planned_answers,
            naive_answers,
            "{}: planned answers must equal naive answers",
            engine.name()
        );

        table.add_row(vec![
            engine.name().to_string(),
            "naive".into(),
            format_duration(naive_time),
            naive_prepares.to_string(),
            "-".into(),
            "1.0x".into(),
        ]);
        table.add_row(vec![
            engine.name().to_string(),
            "planned".into(),
            format_duration(planned_time),
            planned_prepares.to_string(),
            plan.group_count().to_string(),
            format!(
                "{:.1}x",
                naive_time.as_secs_f64() / planned_time.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_both_modes_and_prepare_counts() {
        let args = CommonArgs {
            scale: 1.0,
            seed: 13,
            queries: 40,
            quick: true,
            json: false,
        };
        let report = run_with(&args, 300);
        assert!(report.contains("BFS"));
        assert!(report.contains("BiBFS"));
        assert!(report.contains("RLC"));
        assert!(report.contains("naive"));
        assert!(report.contains("planned"));
        assert!(report.contains("prepares"));
    }
}
