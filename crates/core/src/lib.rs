//! # rlc-core
//!
//! The **RLC index**: a reachability index for *recursive label-concatenated*
//! graph queries, reproducing
//! "A Reachability Index for Recursive Label-Concatenated Graph Queries"
//! (Zhang, Bonifati, Kapp, Haprian, Lozi — ICDE 2023).
//!
//! An RLC query `(s, t, L+)` asks whether the graph contains a path from `s`
//! to `t` whose sequence of edge labels is `L` repeated one or more times,
//! where `L` is a sequence of at most `k` labels (`k` is fixed when the index
//! is built). The index stores, per vertex, two small sets of
//! `(hub, minimum-repeat)` entries; a query is answered by a merge join over
//! the source's out-set and the target's in-set.
//!
//! ## Quick example
//!
//! ```
//! use rlc_graph::examples::fig1_graph;
//! use rlc_core::{RlcIndex, RlcQuery};
//!
//! let graph = fig1_graph();
//! let index = RlcIndex::build(&graph, 2);
//! // Does money flow from account A14 to A19 through a chain of
//! // debit/credit transactions?
//! let q = RlcQuery::from_names(&graph, "A14", "A19", &["debits", "credits"]).unwrap();
//! assert!(index.query(&q));
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |---|---|---|
//! | [`repeats`] | §III-A, §IV | minimum repeats, kernels, Theorem 1 |
//! | [`query`] | §III-B | the `RlcQuery` type and its validity rules |
//! | [`index`] | §V-A | the index structure and Algorithm 1 (query) |
//! | [`build`] | §IV, §V-B | Algorithm 2 (indexing), pruning rules PR1–PR3 |
//! | [`order`] | §V-B | vertex orderings (IN-OUT and ablation alternatives) |
//! | [`catalog`] | §V-C | interning of minimum repeats |
//! | [`hybrid`] | §VI-C | extended `a+ ∘ b+` queries (index + traversal) |
//! | [`kernel`] | — | bit-parallel frontier kernels (generic + runtime-dispatched SIMD) |
//! | [`engine`] | — | the `ReachabilityEngine` evaluator abstraction (prepare/execute) |
//! | [`plan`] | — | the constraint-grouping `BatchPlan` for mixed query batches |
//! | [`cache`] | — | the cross-batch `PlanCache` of prepared constraints |
//! | [`verify`] | Theorems 2 & 3 | operational soundness/completeness checking |

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod build;
pub mod cache;
pub mod catalog;
pub mod engine;
pub mod hybrid;
pub mod index;
// The one module allowed to contain unsafe code: the SIMD kernels and the
// runtime dispatcher. `rlc-analyze`'s unsafe-confinement rule enforces the
// same boundary textually; this is the compiler-level backstop.
#[allow(unsafe_code)]
pub mod kernel;
pub mod order;
pub mod plan;
pub mod query;
pub mod repeats;
pub mod verify;

pub use build::{build_index, BuildConfig, BuildStats, KbsStrategy};
pub use cache::{CacheStats, PlanCache, PlanCacheConfig, PrepareOutcome};
pub use catalog::{MrCatalog, MrId};
pub use engine::{
    ArtifactTag, Generation, HybridEngine, IndexEngine, PlanIdentity, PrepareCounting, Prepared,
    ReachabilityEngine,
};
pub use hybrid::{
    evaluate_blocks_grouped_with, evaluate_blocks_with, prefix_frontier, repetition_closure,
};
pub use index::{IndexEntry, IndexStats, RlcIndex};
pub use kernel::{kernel, kernel_name, set_kernel, FrontierSet, KernelChoice, WordOps, WordsView};
pub use order::{compute_order, OrderingStrategy, VertexOrder};
pub use plan::BatchPlan;
pub use query::{Constraint, Query, QueryError, RlcQuery};
pub use verify::{verify_index, Mismatch, VerificationMode, VerificationReport};
