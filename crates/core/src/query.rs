//! RLC query types (Definition 1).

use crate::repeats::{is_minimum_repeat, minimum_repeat};
use rlc_graph::{Label, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A recursive label-concatenated reachability query `(s, t, L+)`:
/// does a path from `source` to `target` exist whose label sequence is one or
/// more repetitions of `constraint`?
///
/// The constraint must be its own minimum repeat (Definition 1); use
/// [`RlcQuery::new`] to have this checked, or [`RlcQuery::normalized`] to
/// reduce an arbitrary sequence to its MR first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RlcQuery {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t`.
    pub target: VertexId,
    /// The label sequence `L` under the Kleene plus.
    pub constraint: Vec<Label>,
}

/// Errors raised when constructing an [`RlcQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The constraint is empty; `ε+` selects nothing under Definition 1.
    EmptyConstraint,
    /// The constraint is not its own minimum repeat, e.g. `(a, a)+`.
    ///
    /// Such constraints additionally restrict the path length (the even-path
    /// problem) and are outside the query class the index supports.
    NotMinimumRepeat {
        /// The offending constraint.
        constraint: Vec<Label>,
        /// Its minimum repeat, which would be the equivalent valid constraint
        /// *without* the implicit length restriction.
        minimum_repeat: Vec<Label>,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyConstraint => write!(f, "RLC constraint must not be empty"),
            QueryError::NotMinimumRepeat {
                constraint,
                minimum_repeat,
            } => write!(
                f,
                "RLC constraint {constraint:?} is not a minimum repeat (MR is {minimum_repeat:?}); \
                 queries with L ≠ MR(L) impose a path-length constraint and are not supported"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

impl RlcQuery {
    /// Creates a query, validating that the constraint is a non-empty minimum
    /// repeat.
    pub fn new(
        source: VertexId,
        target: VertexId,
        constraint: Vec<Label>,
    ) -> Result<Self, QueryError> {
        if constraint.is_empty() {
            return Err(QueryError::EmptyConstraint);
        }
        if !is_minimum_repeat(&constraint) {
            let mr = minimum_repeat(&constraint).to_vec();
            return Err(QueryError::NotMinimumRepeat {
                constraint,
                minimum_repeat: mr,
            });
        }
        Ok(RlcQuery {
            source,
            target,
            constraint,
        })
    }

    /// Creates a query after replacing the constraint by its minimum repeat.
    ///
    /// Useful when the constraint comes from user input and the caller wants
    /// the closest supported query rather than an error.
    pub fn normalized(
        source: VertexId,
        target: VertexId,
        constraint: &[Label],
    ) -> Result<Self, QueryError> {
        if constraint.is_empty() {
            return Err(QueryError::EmptyConstraint);
        }
        Ok(RlcQuery {
            source,
            target,
            constraint: minimum_repeat(constraint).to_vec(),
        })
    }

    /// Builds a query from vertex names and label names resolved against a
    /// graph, the ergonomic entry point used by the examples.
    pub fn from_names(
        graph: &LabeledGraph,
        source: &str,
        target: &str,
        labels: &[&str],
    ) -> Result<Self, String> {
        let s = graph
            .vertex_id(source)
            .ok_or_else(|| format!("unknown vertex {source:?}"))?;
        let t = graph
            .vertex_id(target)
            .ok_or_else(|| format!("unknown vertex {target:?}"))?;
        let constraint: Vec<Label> = labels
            .iter()
            .map(|name| {
                graph
                    .labels()
                    .resolve(name)
                    .ok_or_else(|| format!("unknown label {name:?}"))
            })
            .collect::<Result<_, _>>()?;
        RlcQuery::new(s, t, constraint).map_err(|e| e.to_string())
    }

    /// Number of labels in the constraint (must be at most the index's `k`).
    pub fn constraint_len(&self) -> usize {
        self.constraint.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_graph::examples::fig1_graph;

    #[test]
    fn valid_query_is_accepted() {
        let q = RlcQuery::new(0, 1, vec![Label(0), Label(1)]).unwrap();
        assert_eq!(q.constraint_len(), 2);
    }

    #[test]
    fn empty_constraint_is_rejected() {
        assert_eq!(
            RlcQuery::new(0, 1, vec![]).unwrap_err(),
            QueryError::EmptyConstraint
        );
    }

    #[test]
    fn non_mr_constraint_is_rejected_with_suggestion() {
        let err = RlcQuery::new(0, 1, vec![Label(0), Label(0)]).unwrap_err();
        match err {
            QueryError::NotMinimumRepeat { minimum_repeat, .. } => {
                assert_eq!(minimum_repeat, vec![Label(0)]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn normalized_reduces_to_mr() {
        let q = RlcQuery::normalized(0, 1, &[Label(0), Label(1), Label(0), Label(1)]).unwrap();
        assert_eq!(q.constraint, vec![Label(0), Label(1)]);
    }

    #[test]
    fn from_names_resolves_against_graph() {
        let g = fig1_graph();
        let q = RlcQuery::from_names(&g, "A14", "A19", &["debits", "credits"]).unwrap();
        assert_eq!(q.source, g.vertex_id("A14").unwrap());
        assert_eq!(q.constraint_len(), 2);
        assert!(RlcQuery::from_names(&g, "A14", "nope", &["debits"]).is_err());
        assert!(RlcQuery::from_names(&g, "A14", "A19", &["nope"]).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = RlcQuery::new(0, 1, vec![Label(2), Label(2)]).unwrap_err();
        assert!(err.to_string().contains("not a minimum repeat"));
        assert!(QueryError::EmptyConstraint.to_string().contains("empty"));
    }
}
