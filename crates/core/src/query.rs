//! RLC query types (Definition 1) and the unified constraint model.
//!
//! Two layers live here:
//!
//! * [`RlcQuery`] — the paper's single-block query `(s, t, L+)`, the type the
//!   index layer ([`crate::index::RlcIndex`]) operates on;
//! * [`Constraint`] and [`Query`] — the unified query model of the engine
//!   layer: a constraint is a concatenation of Kleene-plus blocks
//!   `B1+ ∘ … ∘ Bm+`, and a plain RLC constraint is the one-block special
//!   case. Both are validated at construction, so every engine can assume a
//!   structurally well-formed constraint; the only evaluation-time errors
//!   left are engine/graph-specific (a block longer than an index's
//!   recursive `k`, a vertex id outside the evaluated graph).

use crate::repeats::{is_minimum_repeat, minimum_repeat};
use rlc_graph::{Label, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A recursive label-concatenated reachability query `(s, t, L+)`:
/// does a path from `source` to `target` exist whose label sequence is one or
/// more repetitions of `constraint`?
///
/// The constraint must be its own minimum repeat (Definition 1); use
/// [`RlcQuery::new`] to have this checked, or [`RlcQuery::normalized`] to
/// reduce an arbitrary sequence to its MR first.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RlcQuery {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t`.
    pub target: VertexId,
    /// The label sequence `L` under the Kleene plus.
    pub constraint: Vec<Label>,
}

/// Errors raised when constructing or evaluating a query.
///
/// The first two variants are structural errors of single-block constraints
/// ([`RlcQuery::new`]); the block-indexed variants cover multi-block
/// [`Constraint`]s and engine-side validation. A well-formed [`Query`] can
/// hit exactly two errors at evaluation time: `BlockTooLong` against an
/// engine with a bounded recursive `k`, and `VertexOutOfRange` when its
/// vertex ids do not exist in the evaluated graph (queries are constructed
/// without a graph, so ids are validated at evaluation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The constraint is empty; `ε+` selects nothing under Definition 1.
    EmptyConstraint,
    /// The constraint is not its own minimum repeat, e.g. `(a, a)+`.
    ///
    /// Such constraints additionally restrict the path length (the even-path
    /// problem) and are outside the query class the index supports.
    NotMinimumRepeat {
        /// The offending constraint.
        constraint: Vec<Label>,
        /// Its minimum repeat, which would be the equivalent valid constraint
        /// *without* the implicit length restriction.
        minimum_repeat: Vec<Label>,
    },
    /// A block of a concatenated constraint is empty.
    EmptyBlock(usize),
    /// A block of a concatenated constraint is not its own minimum repeat.
    BlockNotMinimumRepeat(usize),
    /// A block is longer than the evaluating engine's recursive `k`.
    BlockTooLong {
        /// Index of the offending block.
        block: usize,
        /// Its length.
        len: usize,
        /// The engine's recursive `k`.
        k: usize,
    },
    /// The query's source or target vertex does not exist in the evaluated
    /// graph.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// Number of vertices in the graph.
        vertices: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::EmptyConstraint => write!(f, "RLC constraint must not be empty"),
            QueryError::NotMinimumRepeat {
                constraint,
                minimum_repeat,
            } => write!(
                f,
                "RLC constraint {constraint:?} is not a minimum repeat (MR is {minimum_repeat:?}); \
                 queries with L ≠ MR(L) impose a path-length constraint and are not supported"
            ),
            QueryError::EmptyBlock(i) => write!(f, "constraint block {i} is empty"),
            QueryError::BlockNotMinimumRepeat(i) => {
                write!(f, "constraint block {i} is not a minimum repeat")
            }
            QueryError::BlockTooLong { block, len, k } => write!(
                f,
                "constraint block {block} has {len} labels but the engine supports k = {k}"
            ),
            QueryError::VertexOutOfRange { vertex, vertices } => write!(
                f,
                "vertex {vertex} is out of range for a graph of {vertices} vertices"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// A validated recursive label-concatenated constraint `B1+ ∘ B2+ ∘ … ∘ Bm+`.
///
/// Every block is a non-empty minimum repeat and the block list is non-empty;
/// a plain RLC constraint `L+` is the one-block special case. Validation
/// happens once, in [`Constraint::new`] — engines receiving a `Constraint`
/// only have to check engine-specific limits (their recursive `k`).
///
/// `Constraint` implements `Hash`/`Eq`, so a [`crate::plan::BatchPlan`] can
/// group a mixed batch by constraint and prepare each distinct constraint
/// exactly once.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize)]
pub struct Constraint {
    blocks: Vec<Vec<Label>>,
}

impl Deserialize for Constraint {
    /// Deserializes and re-validates: a constraint from untrusted input goes
    /// through the same [`Constraint::new`] checks as one built in process.
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a map for Constraint"))?;
        let blocks: Vec<Vec<Label>> = serde::map_field(entries, "blocks", "Constraint")?;
        Constraint::new(blocks).map_err(serde::Error::custom)
    }
}

impl Constraint {
    /// Creates a concatenated constraint, validating that the block list is
    /// non-empty and every block is a non-empty minimum repeat.
    pub fn new(blocks: Vec<Vec<Label>>) -> Result<Self, QueryError> {
        if blocks.is_empty() {
            return Err(QueryError::EmptyConstraint);
        }
        for (i, block) in blocks.iter().enumerate() {
            if block.is_empty() {
                return Err(QueryError::EmptyBlock(i));
            }
            if !is_minimum_repeat(block) {
                return Err(QueryError::BlockNotMinimumRepeat(i));
            }
        }
        Ok(Constraint { blocks })
    }

    /// Creates the one-block constraint `block+` (the plain RLC case).
    pub fn single(block: Vec<Label>) -> Result<Self, QueryError> {
        Self::new(vec![block])
    }

    /// The blocks of the concatenation.
    pub fn blocks(&self) -> &[Vec<Label>] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The single block when this is a plain RLC constraint, `None` for a
    /// true concatenation.
    pub fn as_single_block(&self) -> Option<&[Label]> {
        match self.blocks.as_slice() {
            [block] => Some(block),
            _ => None,
        }
    }

    /// The final block (the one index-backed engines answer by lookup).
    pub fn last_block(&self) -> &[Label] {
        self.blocks
            .last()
            // rlc-analyze: allow(panic-free-library) — every Constraint constructor rejects an empty block list, so last() is total here
            .expect("constraints have at least a block")
    }

    /// Length of the longest block.
    pub fn max_block_len(&self) -> usize {
        self.blocks.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks every block against an engine's recursive `k`, the one
    /// validation that cannot happen at construction because it depends on
    /// the evaluating engine.
    pub fn check_block_len(&self, k: usize) -> Result<(), QueryError> {
        for (i, block) in self.blocks.iter().enumerate() {
            if block.len() > k {
                return Err(QueryError::BlockTooLong {
                    block: i,
                    len: block.len(),
                    k,
                });
            }
        }
        Ok(())
    }
}

impl From<&RlcQuery> for Constraint {
    /// A validated [`RlcQuery`] constraint is by construction a valid
    /// one-block `Constraint`.
    fn from(query: &RlcQuery) -> Self {
        Constraint {
            blocks: vec![query.constraint.clone()],
        }
    }
}

/// A reachability query under the unified constraint model: does a path from
/// `source` to `target` exist whose label sequence matches
/// [`Query::constraint`]?
///
/// This is the type the [`crate::engine::ReachabilityEngine`] surface
/// evaluates; it subsumes both [`RlcQuery`] (one block) and the legacy
/// `ConcatQuery` (many blocks).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Query {
    /// Source vertex `s`.
    pub source: VertexId,
    /// Target vertex `t`.
    pub target: VertexId,
    /// The validated constraint.
    pub constraint: Constraint,
}

impl Query {
    /// Creates a query from an already-validated constraint.
    pub fn new(source: VertexId, target: VertexId, constraint: Constraint) -> Self {
        Query {
            source,
            target,
            constraint,
        }
    }

    /// Creates a plain RLC query `(s, t, labels+)`.
    pub fn rlc(source: VertexId, target: VertexId, labels: Vec<Label>) -> Result<Self, QueryError> {
        Ok(Query::new(source, target, Constraint::single(labels)?))
    }

    /// Creates a concatenated query `(s, t, B1+ ∘ … ∘ Bm+)`.
    pub fn concat(
        source: VertexId,
        target: VertexId,
        blocks: Vec<Vec<Label>>,
    ) -> Result<Self, QueryError> {
        Ok(Query::new(source, target, Constraint::new(blocks)?))
    }

    /// The constraint.
    pub fn constraint(&self) -> &Constraint {
        &self.constraint
    }
}

impl From<&RlcQuery> for Query {
    fn from(query: &RlcQuery) -> Self {
        Query {
            source: query.source,
            target: query.target,
            constraint: Constraint::from(query),
        }
    }
}

impl From<RlcQuery> for Query {
    fn from(query: RlcQuery) -> Self {
        Query::from(&query)
    }
}

impl RlcQuery {
    /// Creates a query, validating that the constraint is a non-empty minimum
    /// repeat.
    pub fn new(
        source: VertexId,
        target: VertexId,
        constraint: Vec<Label>,
    ) -> Result<Self, QueryError> {
        if constraint.is_empty() {
            return Err(QueryError::EmptyConstraint);
        }
        if !is_minimum_repeat(&constraint) {
            let mr = minimum_repeat(&constraint).to_vec();
            return Err(QueryError::NotMinimumRepeat {
                constraint,
                minimum_repeat: mr,
            });
        }
        Ok(RlcQuery {
            source,
            target,
            constraint,
        })
    }

    /// Creates a query after replacing the constraint by its minimum repeat.
    ///
    /// Useful when the constraint comes from user input and the caller wants
    /// the closest supported query rather than an error.
    pub fn normalized(
        source: VertexId,
        target: VertexId,
        constraint: &[Label],
    ) -> Result<Self, QueryError> {
        if constraint.is_empty() {
            return Err(QueryError::EmptyConstraint);
        }
        Ok(RlcQuery {
            source,
            target,
            constraint: minimum_repeat(constraint).to_vec(),
        })
    }

    /// Builds a query from vertex names and label names resolved against a
    /// graph, the ergonomic entry point used by the examples.
    pub fn from_names(
        graph: &LabeledGraph,
        source: &str,
        target: &str,
        labels: &[&str],
    ) -> Result<Self, String> {
        let s = graph
            .vertex_id(source)
            .ok_or_else(|| format!("unknown vertex {source:?}"))?;
        let t = graph
            .vertex_id(target)
            .ok_or_else(|| format!("unknown vertex {target:?}"))?;
        let constraint: Vec<Label> = labels
            .iter()
            .map(|name| {
                graph
                    .labels()
                    .resolve(name)
                    .ok_or_else(|| format!("unknown label {name:?}"))
            })
            .collect::<Result<_, _>>()?;
        RlcQuery::new(s, t, constraint).map_err(|e| e.to_string())
    }

    /// Number of labels in the constraint (must be at most the index's `k`).
    pub fn constraint_len(&self) -> usize {
        self.constraint.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_graph::examples::fig1_graph;

    #[test]
    fn valid_query_is_accepted() {
        let q = RlcQuery::new(0, 1, vec![Label(0), Label(1)]).unwrap();
        assert_eq!(q.constraint_len(), 2);
    }

    #[test]
    fn empty_constraint_is_rejected() {
        assert_eq!(
            RlcQuery::new(0, 1, vec![]).unwrap_err(),
            QueryError::EmptyConstraint
        );
    }

    #[test]
    fn non_mr_constraint_is_rejected_with_suggestion() {
        let err = RlcQuery::new(0, 1, vec![Label(0), Label(0)]).unwrap_err();
        match err {
            QueryError::NotMinimumRepeat { minimum_repeat, .. } => {
                assert_eq!(minimum_repeat, vec![Label(0)]);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn normalized_reduces_to_mr() {
        let q = RlcQuery::normalized(0, 1, &[Label(0), Label(1), Label(0), Label(1)]).unwrap();
        assert_eq!(q.constraint, vec![Label(0), Label(1)]);
    }

    #[test]
    fn from_names_resolves_against_graph() {
        let g = fig1_graph();
        let q = RlcQuery::from_names(&g, "A14", "A19", &["debits", "credits"]).unwrap();
        assert_eq!(q.source, g.vertex_id("A14").unwrap());
        assert_eq!(q.constraint_len(), 2);
        assert!(RlcQuery::from_names(&g, "A14", "nope", &["debits"]).is_err());
        assert!(RlcQuery::from_names(&g, "A14", "A19", &["nope"]).is_err());
    }

    #[test]
    fn error_messages_are_informative() {
        let err = RlcQuery::new(0, 1, vec![Label(2), Label(2)]).unwrap_err();
        assert!(err.to_string().contains("not a minimum repeat"));
        assert!(QueryError::EmptyConstraint.to_string().contains("empty"));
        assert!(QueryError::EmptyBlock(3).to_string().contains("block 3"));
        assert!(QueryError::BlockNotMinimumRepeat(1)
            .to_string()
            .contains("block 1"));
        let err = QueryError::BlockTooLong {
            block: 0,
            len: 4,
            k: 2,
        };
        assert!(err.to_string().contains("k = 2"));
    }

    #[test]
    fn constraint_rejects_invalid_shapes_at_construction() {
        assert_eq!(
            Constraint::new(vec![]).unwrap_err(),
            QueryError::EmptyConstraint
        );
        assert_eq!(
            Constraint::new(vec![vec![Label(0)], vec![]]).unwrap_err(),
            QueryError::EmptyBlock(1)
        );
        assert_eq!(
            Constraint::new(vec![vec![Label(0), Label(0)]]).unwrap_err(),
            QueryError::BlockNotMinimumRepeat(0)
        );
        assert_eq!(
            Constraint::single(vec![]).unwrap_err(),
            QueryError::EmptyBlock(0)
        );
    }

    #[test]
    fn constraint_accessors() {
        let single = Constraint::single(vec![Label(0), Label(1)]).unwrap();
        assert_eq!(single.block_count(), 1);
        assert_eq!(single.as_single_block(), Some(&[Label(0), Label(1)][..]));
        assert_eq!(single.max_block_len(), 2);
        let multi = Constraint::new(vec![vec![Label(0)], vec![Label(1), Label(2)]]).unwrap();
        assert_eq!(multi.block_count(), 2);
        assert!(multi.as_single_block().is_none());
        assert_eq!(multi.last_block(), &[Label(1), Label(2)]);
        assert_eq!(multi.check_block_len(2), Ok(()));
        assert_eq!(
            multi.check_block_len(1),
            Err(QueryError::BlockTooLong {
                block: 1,
                len: 2,
                k: 1
            })
        );
    }

    #[test]
    fn query_constructors_and_conversions() {
        let q = Query::rlc(0, 1, vec![Label(0), Label(1)]).unwrap();
        assert_eq!(q.constraint().block_count(), 1);
        let q = Query::concat(0, 1, vec![vec![Label(0)], vec![Label(1)]]).unwrap();
        assert_eq!(q.constraint().block_count(), 2);
        assert!(Query::concat(0, 1, vec![]).is_err());

        let rlc = RlcQuery::new(2, 3, vec![Label(1)]).unwrap();
        let converted = Query::from(&rlc);
        assert_eq!(converted.source, 2);
        assert_eq!(converted.target, 3);
        assert_eq!(
            converted.constraint().as_single_block(),
            Some(&[Label(1)][..])
        );
        assert_eq!(Query::from(rlc.clone()), converted);
    }

    #[test]
    fn constraint_deserialization_revalidates() {
        let good = Constraint::new(vec![vec![Label(0)], vec![Label(1), Label(0)]]).unwrap();
        let json = serde_json::to_string(&good).unwrap();
        let back: Constraint = serde_json::from_str(&json).unwrap();
        assert_eq!(back, good);
        // A hand-crafted blob with a reducible block must be rejected.
        let bad = "{\"blocks\":[[0,0]]}";
        assert!(serde_json::from_str::<Constraint>(bad).is_err());
    }
}
