//! Hybrid evaluation of extended constraints (§VI-C, query Q4).
//!
//! The paper demonstrates the generality of the RLC index by also answering
//! reachability queries whose constraint is a *concatenation of Kleene-plus
//! blocks*, e.g. `a+ ∘ b+`: the index alone cannot answer these, but an
//! online traversal over all blocks except the last, combined with an index
//! lookup for the last block, can. This module implements that strategy for
//! an arbitrary number of blocks.

use crate::catalog::MrId;
use crate::index::RlcIndex;
use crate::query::{Query, QueryError};
use crate::repeats::is_minimum_repeat;
use rlc_graph::{Label, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// A reachability query whose constraint is `B1+ ∘ B2+ ∘ … ∘ Bm+`.
///
/// Transitional type: the engine layer now evaluates the unified
/// [`Query`]/[`crate::query::Constraint`] model, which validates blocks at
/// construction. `ConcatQuery` remains as the input of the deprecated
/// [`crate::engine::ReachabilityEngine::evaluate_concat`] shim and of the
/// lower-level [`evaluate_hybrid`] entry point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConcatQuery {
    /// Source vertex.
    pub source: VertexId,
    /// Target vertex.
    pub target: VertexId,
    /// The blocks; each block `Bi` is repeated one or more times.
    pub blocks: Vec<Vec<Label>>,
}

/// Errors raised when validating a [`ConcatQuery`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConcatQueryError {
    /// The query has no blocks.
    NoBlocks,
    /// A block is empty.
    EmptyBlock(usize),
    /// A block is not its own minimum repeat.
    BlockNotMinimumRepeat(usize),
    /// A block is longer than the index's recursive `k`.
    BlockTooLong {
        /// Index of the offending block.
        block: usize,
        /// Its length.
        len: usize,
        /// The index's `k`.
        k: usize,
    },
}

impl std::fmt::Display for ConcatQueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConcatQueryError::NoBlocks => write!(f, "query must have at least one block"),
            ConcatQueryError::EmptyBlock(i) => write!(f, "block {i} is empty"),
            ConcatQueryError::BlockNotMinimumRepeat(i) => {
                write!(f, "block {i} is not a minimum repeat")
            }
            ConcatQueryError::BlockTooLong { block, len, k } => {
                write!(
                    f,
                    "block {block} has {len} labels but the index supports k = {k}"
                )
            }
        }
    }
}

impl std::error::Error for ConcatQueryError {}

impl From<ConcatQueryError> for QueryError {
    fn from(error: ConcatQueryError) -> Self {
        match error {
            ConcatQueryError::NoBlocks => QueryError::EmptyConstraint,
            ConcatQueryError::EmptyBlock(i) => QueryError::EmptyBlock(i),
            ConcatQueryError::BlockNotMinimumRepeat(i) => QueryError::BlockNotMinimumRepeat(i),
            ConcatQueryError::BlockTooLong { block, len, k } => {
                QueryError::BlockTooLong { block, len, k }
            }
        }
    }
}

impl ConcatQuery {
    /// Creates a query, rejecting empty block lists and empty blocks at
    /// construction. Minimum-repeat and block-length checks remain in
    /// [`ConcatQuery::validate`] (the length limit depends on the evaluating
    /// index).
    pub fn new(
        source: VertexId,
        target: VertexId,
        blocks: Vec<Vec<Label>>,
    ) -> Result<Self, ConcatQueryError> {
        if blocks.is_empty() {
            return Err(ConcatQueryError::NoBlocks);
        }
        if let Some(i) = blocks.iter().position(Vec::is_empty) {
            return Err(ConcatQueryError::EmptyBlock(i));
        }
        Ok(ConcatQuery {
            source,
            target,
            blocks,
        })
    }

    /// Validates the blocks against an index built with some recursive `k`.
    pub fn validate(&self, k: usize) -> Result<(), ConcatQueryError> {
        if self.blocks.is_empty() {
            return Err(ConcatQueryError::NoBlocks);
        }
        for (i, block) in self.blocks.iter().enumerate() {
            if block.is_empty() {
                return Err(ConcatQueryError::EmptyBlock(i));
            }
            if !is_minimum_repeat(block) {
                return Err(ConcatQueryError::BlockNotMinimumRepeat(i));
            }
            if block.len() > k {
                return Err(ConcatQueryError::BlockTooLong {
                    block: i,
                    len: block.len(),
                    k,
                });
            }
        }
        Ok(())
    }
}

impl TryFrom<&ConcatQuery> for Query {
    type Error = QueryError;

    /// Converts a legacy concatenation query into the unified model,
    /// re-running full structural validation.
    fn try_from(query: &ConcatQuery) -> Result<Self, QueryError> {
        Query::concat(query.source, query.target, query.blocks.clone())
    }
}

/// Evaluates a [`ConcatQuery`] using the RLC index for the final block and an
/// online constrained traversal for the preceding blocks.
///
/// For each block except the last, a multi-source BFS over `(vertex, offset)`
/// pairs computes the set of vertices reachable from the current frontier by
/// one or more repetitions of the block; the final block is answered by one
/// index lookup per frontier vertex. With a single block this degenerates to
/// a plain index query.
pub fn evaluate_hybrid(
    graph: &LabeledGraph,
    index: &RlcIndex,
    query: &ConcatQuery,
) -> Result<bool, ConcatQueryError> {
    query.validate(index.k())?;
    let mut frontier: Vec<VertexId> = vec![query.source];
    for (i, block) in query.blocks.iter().enumerate() {
        let is_last = i + 1 == query.blocks.len();
        if is_last {
            let mr_id = match index.catalog().resolve(block) {
                Some(id) => id,
                None => return Ok(false),
            };
            return Ok(frontier
                .iter()
                .any(|&v| index.query_interned(v, query.target, mr_id)));
        }
        frontier = repetition_closure(graph, &frontier, block);
        if frontier.is_empty() {
            return Ok(false);
        }
    }
    unreachable!("the last block returns from the loop");
}

/// The shared skeleton of hybrid evaluation over pre-validated blocks: runs
/// the online repetition closure for every block except the last, then
/// reports whether `last_block_reaches` holds for any frontier vertex.
///
/// This is the one frontier loop behind both the RLC-index engines (last
/// block answered by [`RlcIndex`] lookup) and the ETC engine in
/// `rlc-baselines` (last block answered by a closure lookup) — the lookup
/// is the only difference, so it is the parameter.
pub fn evaluate_blocks_with(
    graph: &LabeledGraph,
    source: VertexId,
    blocks: &[Vec<Label>],
    last_block_reaches: impl Fn(VertexId) -> bool,
) -> bool {
    let mut frontier: Vec<VertexId> = vec![source];
    for block in &blocks[..blocks.len() - 1] {
        frontier = repetition_closure(graph, &frontier, block);
        if frontier.is_empty() {
            return false;
        }
    }
    frontier.iter().any(|&v| last_block_reaches(v))
}

/// Hybrid evaluation over a pre-validated block structure with the final
/// block's minimum repeat already resolved against the index catalog — the
/// execute half of the prepare/execute split
/// ([`crate::engine::ReachabilityEngine::evaluate_prepared`]).
///
/// `last_mr` is `None` when the final block's MR does not occur in the
/// catalog, in which case no path can satisfy the constraint and the answer
/// is `false` without touching the graph.
pub(crate) fn evaluate_hybrid_prepared(
    graph: &LabeledGraph,
    index: &RlcIndex,
    source: VertexId,
    target: VertexId,
    blocks: &[Vec<Label>],
    last_mr: Option<MrId>,
) -> bool {
    let Some(mr_id) = last_mr else {
        return false;
    };
    evaluate_blocks_with(graph, source, blocks, |v| {
        index.query_interned(v, target, mr_id)
    })
}

/// All vertices reachable from `sources` by a path whose label sequence is
/// one or more repetitions of `block`.
///
/// This is the online half of hybrid evaluation, exposed so other engines
/// (e.g. the ETC adapter in `rlc-baselines`) can reuse it for the prefix
/// blocks of a concatenated constraint.
pub fn repetition_closure(
    graph: &LabeledGraph,
    sources: &[VertexId],
    block: &[Label],
) -> Vec<VertexId> {
    let klen = block.len();
    let mut visited: HashSet<(VertexId, usize)> = HashSet::new();
    let mut boundary: HashSet<VertexId> = HashSet::new();
    let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
    for &s in sources {
        if visited.insert((s, 0)) {
            queue.push_back((s, 0));
        }
    }
    while let Some((x, state)) = queue.pop_front() {
        let expected = block[state];
        for (y, label) in graph.out_edges(x) {
            if label != expected {
                continue;
            }
            let next = (state + 1) % klen;
            // Record the repetition boundary before the visited check: a
            // source vertex has `(source, 0)` pre-visited, but a cycle that
            // returns to it still makes it reachable under `block+`.
            if next == 0 {
                boundary.insert(y);
            }
            if !visited.insert((y, next)) {
                continue;
            }
            queue.push_back((y, next));
        }
    }
    boundary.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use rlc_graph::examples::fig1_graph;
    use rlc_graph::GraphBuilder;

    fn label(graph: &LabeledGraph, name: &str) -> Label {
        graph.labels().resolve(name).unwrap()
    }

    #[test]
    fn single_block_matches_plain_query() {
        let g = fig1_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let q = ConcatQuery::new(
            g.vertex_id("A14").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![label(&g, "debits"), label(&g, "credits")]],
        )
        .unwrap();
        assert_eq!(evaluate_hybrid(&g, &index, &q), Ok(true));
    }

    #[test]
    fn two_blocks_knows_then_holds() {
        // P10 -knows+-> P11/P12/P13/P16, then -holds+-> an account.
        let g = fig1_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let q = ConcatQuery::new(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![label(&g, "knows")], vec![label(&g, "holds")]],
        )
        .unwrap();
        assert_eq!(evaluate_hybrid(&g, &index, &q), Ok(true));
        // There is no knows+ ∘ debits+ path from P10 (debits leaves accounts,
        // which knows+ never reaches).
        let q2 = ConcatQuery::new(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("E15").unwrap(),
            vec![vec![label(&g, "knows")], vec![label(&g, "debits")]],
        )
        .unwrap();
        assert_eq!(evaluate_hybrid(&g, &index, &q2), Ok(false));
    }

    #[test]
    fn three_blocks_chain() {
        // a -x-> b -x-> c -y-> d -z-> e : x+ ∘ y+ ∘ z+ from a to e.
        let mut builder = GraphBuilder::new();
        builder.add_edge_named("a", "x", "b");
        builder.add_edge_named("b", "x", "c");
        builder.add_edge_named("c", "y", "d");
        builder.add_edge_named("d", "z", "e");
        let g = builder.build();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let q = ConcatQuery::new(
            g.vertex_id("a").unwrap(),
            g.vertex_id("e").unwrap(),
            vec![
                vec![label(&g, "x")],
                vec![label(&g, "y")],
                vec![label(&g, "z")],
            ],
        )
        .unwrap();
        assert_eq!(evaluate_hybrid(&g, &index, &q), Ok(true));
        // Wrong order of blocks must fail.
        let q_bad = ConcatQuery::new(
            g.vertex_id("a").unwrap(),
            g.vertex_id("e").unwrap(),
            vec![
                vec![label(&g, "y")],
                vec![label(&g, "x")],
                vec![label(&g, "z")],
            ],
        )
        .unwrap();
        assert_eq!(evaluate_hybrid(&g, &index, &q_bad), Ok(false));
    }

    #[test]
    fn cycle_back_to_source_counts_as_first_block() {
        // a -x-> b -x-> a -y-> c : the only x+ path ending where the y block
        // can start is the cycle back to a itself.
        let mut builder = GraphBuilder::new();
        builder.add_edge_named("a", "x", "b");
        builder.add_edge_named("b", "x", "a");
        builder.add_edge_named("a", "y", "c");
        let g = builder.build();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let q = ConcatQuery::new(
            g.vertex_id("a").unwrap(),
            g.vertex_id("c").unwrap(),
            vec![vec![label(&g, "x")], vec![label(&g, "y")]],
        )
        .unwrap();
        assert_eq!(evaluate_hybrid(&g, &index, &q), Ok(true));
    }

    #[test]
    fn construction_rejects_empty_shapes() {
        // Empty block lists and empty blocks now fail at construction rather
        // than at evaluation.
        assert_eq!(
            ConcatQuery::new(0, 1, vec![]).unwrap_err(),
            ConcatQueryError::NoBlocks
        );
        assert_eq!(
            ConcatQuery::new(0, 1, vec![vec![Label(0)], vec![]]).unwrap_err(),
            ConcatQueryError::EmptyBlock(1)
        );
    }

    #[test]
    fn validation_errors() {
        let g = fig1_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let not_mr = ConcatQuery::new(0, 1, vec![vec![Label(0), Label(0)]]).unwrap();
        assert_eq!(
            evaluate_hybrid(&g, &index, &not_mr),
            Err(ConcatQueryError::BlockNotMinimumRepeat(0))
        );
        let too_long = ConcatQuery::new(0, 1, vec![vec![Label(0), Label(1), Label(2)]]).unwrap();
        assert!(matches!(
            evaluate_hybrid(&g, &index, &too_long),
            Err(ConcatQueryError::BlockTooLong { .. })
        ));
    }

    #[test]
    fn concat_query_errors_convert_to_query_errors() {
        assert_eq!(
            QueryError::from(ConcatQueryError::NoBlocks),
            QueryError::EmptyConstraint
        );
        assert_eq!(
            QueryError::from(ConcatQueryError::EmptyBlock(2)),
            QueryError::EmptyBlock(2)
        );
        assert_eq!(
            QueryError::from(ConcatQueryError::BlockNotMinimumRepeat(1)),
            QueryError::BlockNotMinimumRepeat(1)
        );
        assert_eq!(
            QueryError::from(ConcatQueryError::BlockTooLong {
                block: 0,
                len: 3,
                k: 2
            }),
            QueryError::BlockTooLong {
                block: 0,
                len: 3,
                k: 2
            }
        );
        // And the lossless path into the unified model.
        let q = ConcatQuery::new(4, 5, vec![vec![Label(0)], vec![Label(1)]]).unwrap();
        let unified = Query::try_from(&q).unwrap();
        assert_eq!(unified.source, 4);
        assert_eq!(unified.constraint().block_count(), 2);
        let bad = ConcatQuery::new(0, 1, vec![vec![Label(0), Label(0)]]).unwrap();
        assert_eq!(
            Query::try_from(&bad).unwrap_err(),
            QueryError::BlockNotMinimumRepeat(0)
        );
    }

    #[test]
    fn error_display() {
        let err = ConcatQueryError::BlockTooLong {
            block: 1,
            len: 4,
            k: 2,
        };
        assert!(err.to_string().contains("k = 2"));
        assert!(ConcatQueryError::NoBlocks
            .to_string()
            .contains("at least one"));
    }
}
