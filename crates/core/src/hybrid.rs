//! Hybrid evaluation of extended constraints (§VI-C, query Q4).
//!
//! The paper demonstrates the generality of the RLC index by also answering
//! reachability queries whose constraint is a *concatenation of Kleene-plus
//! blocks*, e.g. `a+ ∘ b+`: the index alone cannot answer these, but an
//! online traversal over all blocks except the last, combined with an index
//! lookup for the last block, can. This module implements that strategy for
//! an arbitrary number of blocks; the entry points are the engine layer's
//! [`crate::engine::IndexEngine`] / [`crate::engine::HybridEngine`] over the
//! unified [`crate::query::Query`] model (the legacy `ConcatQuery` type and
//! its `evaluate_hybrid` entry point are gone — `Query::concat` constructs
//! the same queries with validation at construction).

use crate::catalog::MrId;
use crate::index::RlcIndex;
use crate::kernel::with_kernel_scratch;
use rlc_graph::{Label, LabeledGraph, VertexId};

/// The shared skeleton of hybrid evaluation over pre-validated blocks: runs
/// the online repetition closure for every block except the last
/// ([`prefix_frontier`]), then reports whether `last_block_reaches` holds
/// for any frontier vertex.
///
/// This is the one frontier loop behind both the RLC-index engines (last
/// block answered by [`RlcIndex`] lookup) and the ETC engine in
/// `rlc-baselines` (last block answered by a closure lookup) — the lookup
/// is the only difference, so it is the parameter.
pub fn evaluate_blocks_with(
    graph: &LabeledGraph,
    source: VertexId,
    blocks: &[Vec<Label>],
    last_block_reaches: impl Fn(VertexId) -> bool,
) -> bool {
    prefix_frontier(graph, source, blocks)
        .iter()
        .any(|&v| last_block_reaches(v))
}

/// Hybrid evaluation over a pre-validated block structure with the final
/// block's minimum repeat already resolved against the index catalog — the
/// execute half of the prepare/execute split
/// ([`crate::engine::ReachabilityEngine::evaluate_prepared`]).
///
/// `last_mr` is `None` when the final block's MR does not occur in the
/// catalog, in which case no path can satisfy the constraint and the answer
/// is `false` without touching the graph.
pub(crate) fn evaluate_hybrid_prepared(
    graph: &LabeledGraph,
    index: &RlcIndex,
    source: VertexId,
    target: VertexId,
    blocks: &[Vec<Label>],
    last_mr: Option<MrId>,
) -> bool {
    let Some(mr_id) = last_mr else {
        return false;
    };
    evaluate_blocks_with(graph, source, blocks, |v| {
        index.query_interned(v, target, mr_id)
    })
}

/// Grouped evaluation over pre-validated blocks, shared by every engine
/// whose final block is answered by a pair lookup (the RLC index engines,
/// ETC): the one grouped skeleton behind their `evaluate_prepared_group`
/// overrides, parameterized over the lookup the way [`evaluate_blocks_with`]
/// parameterizes the per-pair path.
///
/// `resolved` is the outcome of resolving the final block for the engine:
/// an error makes every in-range pair report it (the constraint is invalid
/// for the engine), `Ok(None)` means the block is absent from the engine's
/// catalog (no path can satisfy the constraint — every in-range pair is
/// `false`), and `Ok(Some(lookup))` supplies the pair predicate. Pairs are
/// range-checked first, exactly like the per-pair paths, so an out-of-range
/// pair reports `VertexOutOfRange` even when the constraint is also
/// invalid. For multi-block constraints the prefix-block repetition closure
/// is computed **once per distinct source** ([`prefix_frontier`]) and
/// shared by every pair of the group with that source; single-block
/// constraints stay per-pair lookups.
pub fn evaluate_blocks_grouped_with<F>(
    graph: &LabeledGraph,
    pairs: &[(VertexId, VertexId)],
    blocks: &[Vec<Label>],
    resolved: Result<Option<F>, crate::query::QueryError>,
) -> Vec<Result<bool, crate::query::QueryError>>
where
    F: Fn(VertexId, VertexId) -> bool,
{
    let mut answers: Vec<Result<bool, crate::query::QueryError>> = Vec::with_capacity(pairs.len());
    let mut by_source: std::collections::HashMap<VertexId, Vec<usize>> =
        std::collections::HashMap::new();
    for (i, &(s, t)) in pairs.iter().enumerate() {
        match crate::engine::check_vertex_range(s, t, graph.vertex_count()) {
            Ok(()) => {
                answers.push(Ok(false));
                by_source.entry(s).or_default().push(i);
            }
            Err(error) => answers.push(Err(error)),
        }
    }
    let lookup = match resolved {
        Ok(lookup) => lookup,
        Err(error) => {
            for indices in by_source.values() {
                for &i in indices {
                    answers[i] = Err(error.clone());
                }
            }
            return answers;
        }
    };
    let Some(lookup) = lookup else {
        return answers;
    };
    for (source, indices) in by_source {
        if blocks.len() == 1 {
            for &i in &indices {
                answers[i] = Ok(lookup(source, pairs[i].1));
            }
        } else {
            // One repetition-closure pass over the prefix blocks serves
            // every target sharing this source.
            let frontier = prefix_frontier(graph, source, blocks);
            for &i in &indices {
                let target = pairs[i].1;
                answers[i] = Ok(frontier.iter().any(|&v| lookup(v, target)));
            }
        }
    }
    answers
}

/// The frontier after running the online repetition closure over every
/// block except the last: all vertices from which the final block's index
/// (or closure) lookup has to be answered. Computed **once per source** by
/// the grouped hybrid path, so same-source pairs of a constraint group share
/// the online traversal instead of re-running it per pair. Public because
/// the ETC engine's grouped path (`rlc-baselines`) and the sharded stitcher
/// (`rlc-shard`) share the same once-per-source structure.
pub fn prefix_frontier(
    graph: &LabeledGraph,
    source: VertexId,
    blocks: &[Vec<Label>],
) -> Vec<VertexId> {
    let mut frontier: Vec<VertexId> = vec![source];
    for block in &blocks[..blocks.len() - 1] {
        frontier = repetition_closure(graph, &frontier, block);
        if frontier.is_empty() {
            break;
        }
    }
    frontier
}

/// All vertices reachable from `sources` by a path whose label sequence is
/// one or more repetitions of `block`, in ascending vertex order.
///
/// This is the online half of hybrid evaluation, exposed so other engines
/// (e.g. the ETC adapter in `rlc-baselines`) can reuse it for the prefix
/// blocks of a concatenated constraint. The visited and boundary sets are
/// bit-parallel [`crate::kernel::FrontierSet`]s from the thread-local
/// kernel-scratch pool, so batch evaluation allocates nothing per query
/// beyond the returned vector (pre-sized by a dispatched popcount).
pub fn repetition_closure(
    graph: &LabeledGraph,
    sources: &[VertexId],
    block: &[Label],
) -> Vec<VertexId> {
    let klen = block.len();
    with_kernel_scratch(|scratch| {
        // Visited ranges over `(vertex, position-within-block)` product
        // slots; the boundary accumulator over plain vertices.
        scratch.visited.begin(graph.vertex_count() * klen);
        scratch.boundary.begin(graph.vertex_count());
        scratch.queue.clear();
        let slot = |v: VertexId, state: usize| v as usize * klen + state;
        for &s in sources {
            if !scratch.visited.test_and_set(slot(s, 0)) {
                scratch.queue.push_back((s, 0));
            }
        }
        while let Some((x, state)) = scratch.queue.pop_front() {
            let expected = block[state as usize];
            for (y, label) in graph.out_edges(x) {
                if label != expected {
                    continue;
                }
                let next = (state as usize + 1) % klen;
                // Record the repetition boundary before the visited check:
                // a source vertex has `(source, 0)` pre-visited, but a
                // cycle that returns to it still makes it reachable under
                // `block+`.
                if next == 0 {
                    scratch.boundary.test_and_set(y as usize);
                }
                if !scratch.visited.test_and_set(slot(y, next)) {
                    scratch.queue.push_back((y, next as u32));
                }
            }
        }
        let mut out = Vec::with_capacity(scratch.boundary.count());
        scratch.boundary.for_each_set(|v| out.push(v as VertexId));
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::engine::{IndexEngine, ReachabilityEngine};
    use crate::query::{Query, QueryError};
    use rlc_graph::examples::fig1_graph;
    use rlc_graph::GraphBuilder;

    fn label(graph: &LabeledGraph, name: &str) -> Label {
        graph.labels().resolve(name).unwrap()
    }

    #[test]
    fn single_block_matches_plain_query() {
        let g = fig1_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let engine = IndexEngine::new(&g, &index);
        let q = Query::concat(
            g.vertex_id("A14").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![label(&g, "debits"), label(&g, "credits")]],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true));
    }

    #[test]
    fn two_blocks_knows_then_holds() {
        // P10 -knows+-> P11/P12/P13/P16, then -holds+-> an account.
        let g = fig1_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let engine = IndexEngine::new(&g, &index);
        let q = Query::concat(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("A19").unwrap(),
            vec![vec![label(&g, "knows")], vec![label(&g, "holds")]],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true));
        // There is no knows+ ∘ debits+ path from P10 (debits leaves accounts,
        // which knows+ never reaches).
        let q2 = Query::concat(
            g.vertex_id("P10").unwrap(),
            g.vertex_id("E15").unwrap(),
            vec![vec![label(&g, "knows")], vec![label(&g, "debits")]],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q2), Ok(false));
    }

    #[test]
    fn three_blocks_chain() {
        // a -x-> b -x-> c -y-> d -z-> e : x+ ∘ y+ ∘ z+ from a to e.
        let mut builder = GraphBuilder::new();
        builder.add_edge_named("a", "x", "b");
        builder.add_edge_named("b", "x", "c");
        builder.add_edge_named("c", "y", "d");
        builder.add_edge_named("d", "z", "e");
        let g = builder.build();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let engine = IndexEngine::new(&g, &index);
        let q = Query::concat(
            g.vertex_id("a").unwrap(),
            g.vertex_id("e").unwrap(),
            vec![
                vec![label(&g, "x")],
                vec![label(&g, "y")],
                vec![label(&g, "z")],
            ],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true));
        // Wrong order of blocks must fail.
        let q_bad = Query::concat(
            g.vertex_id("a").unwrap(),
            g.vertex_id("e").unwrap(),
            vec![
                vec![label(&g, "y")],
                vec![label(&g, "x")],
                vec![label(&g, "z")],
            ],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q_bad), Ok(false));
    }

    #[test]
    fn cycle_back_to_source_counts_as_first_block() {
        // a -x-> b -x-> a -y-> c : the only x+ path ending where the y block
        // can start is the cycle back to a itself.
        let mut builder = GraphBuilder::new();
        builder.add_edge_named("a", "x", "b");
        builder.add_edge_named("b", "x", "a");
        builder.add_edge_named("a", "y", "c");
        let g = builder.build();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let engine = IndexEngine::new(&g, &index);
        let q = Query::concat(
            g.vertex_id("a").unwrap(),
            g.vertex_id("c").unwrap(),
            vec![vec![label(&g, "x")], vec![label(&g, "y")]],
        )
        .unwrap();
        assert_eq!(engine.evaluate(&q), Ok(true));
    }

    #[test]
    fn invalid_shapes_are_unconstructible_and_overlong_blocks_error() {
        // The legacy ConcatQuery deferred structural validation to
        // evaluation; the unified model rejects the same shapes at
        // construction, and the only evaluation-time error left is the
        // engine-specific k bound.
        assert_eq!(
            Query::concat(0, 1, vec![]).unwrap_err(),
            QueryError::EmptyConstraint
        );
        assert_eq!(
            Query::concat(0, 1, vec![vec![Label(0)], vec![]]).unwrap_err(),
            QueryError::EmptyBlock(1)
        );
        assert_eq!(
            Query::concat(0, 1, vec![vec![Label(0), Label(0)]]).unwrap_err(),
            QueryError::BlockNotMinimumRepeat(0)
        );
        let g = fig1_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let engine = IndexEngine::new(&g, &index);
        let too_long = Query::concat(0, 1, vec![vec![Label(0), Label(1), Label(2)]]).unwrap();
        assert_eq!(
            engine.evaluate(&too_long),
            Err(QueryError::BlockTooLong {
                block: 0,
                len: 3,
                k: 2
            })
        );
    }

    #[test]
    fn prefix_frontier_matches_manual_closure_chaining() {
        let g = fig1_graph();
        let knows = label(&g, "knows");
        let holds = label(&g, "holds");
        let p10 = g.vertex_id("P10").unwrap();
        let blocks = vec![vec![knows], vec![holds]];
        let mut expected = repetition_closure(&g, &[p10], &[knows]);
        expected.sort_unstable();
        let mut got = prefix_frontier(&g, p10, &blocks);
        got.sort_unstable();
        assert_eq!(got, expected);
        // A single block has no prefix: the frontier is the source itself.
        assert_eq!(prefix_frontier(&g, p10, &blocks[..1]), vec![p10]);
        // A dead prefix yields an empty frontier (knows+ only reaches
        // persons, and no person has an outgoing debits edge).
        let debits = label(&g, "debits");
        let blocks = vec![vec![knows], vec![debits], vec![holds]];
        assert!(prefix_frontier(&g, p10, &blocks).is_empty());
    }
}
