//! Index verification against an online oracle.
//!
//! Theorem 3 guarantees the index built by Algorithm 2 is sound and complete;
//! this module provides the operational counterpart: given a graph and an
//! index, re-check (exhaustively or on a sample) that every query the index
//! answers matches what a constrained online traversal finds, and that no
//! entry is redundant (Theorem 2). It is used by the test suite, by the
//! pruning ablation, and is exposed publicly so downstream users can validate
//! indexes they load from disk against the graph they pair them with.

use crate::index::RlcIndex;
use crate::query::RlcQuery;
use crate::repeats::enumerate_minimum_repeats;
use rlc_graph::{Label, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};

/// How much of the query space to verify.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerificationMode {
    /// Check every `(s, t, L)` combination — exponential in `k`, intended for
    /// small graphs (tests, debugging).
    Exhaustive,
    /// Check a deterministic pseudo-random sample of vertex pairs (every
    /// valid constraint is still checked for each sampled pair).
    Sampled {
        /// Number of vertex pairs to sample.
        pairs: usize,
        /// Seed for the deterministic sampler.
        seed: u64,
    },
}

/// One disagreement between the index and the oracle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mismatch {
    /// Source vertex of the failing query.
    pub source: VertexId,
    /// Target vertex of the failing query.
    pub target: VertexId,
    /// Constraint of the failing query.
    pub constraint: Vec<Label>,
    /// The answer the index gave.
    pub index_answer: bool,
    /// The answer the online oracle gave.
    pub oracle_answer: bool,
}

/// Result of verifying an index.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerificationReport {
    /// Number of vertex pairs examined.
    pub pairs_checked: usize,
    /// Number of queries evaluated (pairs × constraints).
    pub queries_checked: usize,
    /// All disagreements found (empty for a correct index).
    pub mismatches: Vec<Mismatch>,
    /// Number of redundant entries (non-zero means not condensed).
    pub redundant_entries: usize,
}

impl VerificationReport {
    /// Whether the index passed: no mismatches.
    ///
    /// Redundant entries are reported but do not fail verification — an index
    /// built with pruning disabled is still correct, only larger.
    pub fn is_sound_and_complete(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// Verifies `index` against `graph` with the given mode.
pub fn verify_index(
    graph: &LabeledGraph,
    index: &RlcIndex,
    mode: VerificationMode,
) -> VerificationReport {
    let constraints = enumerate_minimum_repeats(graph.label_count(), index.k());
    let pairs: Vec<(VertexId, VertexId)> = match mode {
        VerificationMode::Exhaustive => graph
            .vertices()
            .flat_map(|s| graph.vertices().map(move |t| (s, t)))
            .collect(),
        VerificationMode::Sampled { pairs, seed } => {
            let n = graph.vertex_count() as u64;
            if n == 0 {
                Vec::new()
            } else {
                (0..pairs as u64)
                    .map(|i| {
                        let h = splitmix64(seed.wrapping_add(i.wrapping_mul(0x9E37_79B9)));
                        ((h % n) as VertexId, ((h >> 32) % n) as VertexId)
                    })
                    .collect()
            }
        }
    };

    let mut mismatches = Vec::new();
    let mut queries_checked = 0usize;
    for &(s, t) in &pairs {
        for constraint in &constraints {
            queries_checked += 1;
            let query = RlcQuery::new(s, t, constraint.clone())
                // rlc-analyze: allow(panic-free-library) — the constraint enumerator above yields only non-empty minimum repeats, which RlcQuery::new accepts by definition
                .expect("enumerated constraints are minimum repeats");
            let index_answer = index.query(&query);
            let oracle_answer = oracle_reaches(graph, s, t, constraint);
            if index_answer != oracle_answer {
                mismatches.push(Mismatch {
                    source: s,
                    target: t,
                    constraint: constraint.clone(),
                    index_answer,
                    oracle_answer,
                });
            }
        }
    }

    VerificationReport {
        pairs_checked: pairs.len(),
        queries_checked,
        mismatches,
        redundant_entries: index.redundant_entries(),
    }
}

/// Reference oracle: BFS over `(vertex, offset within the constraint)` pairs.
///
/// Kept internal to `rlc-core` (independent of the baselines crate) so the
/// index can be verified without any other dependency.
pub fn oracle_reaches(
    graph: &LabeledGraph,
    source: VertexId,
    target: VertexId,
    constraint: &[Label],
) -> bool {
    assert!(!constraint.is_empty(), "constraint must not be empty");
    let klen = constraint.len();
    let mut visited: HashSet<(VertexId, usize)> = HashSet::new();
    let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
    visited.insert((source, 0));
    queue.push_back((source, 0));
    while let Some((v, offset)) = queue.pop_front() {
        let expected = constraint[offset];
        for (w, label) in graph.out_edges(v) {
            if label != expected {
                continue;
            }
            let next = (offset + 1) % klen;
            // Accept before the visited check: when `source == target` the
            // start state `(target, 0)` is already marked visited, but a
            // cycle arriving back at it must still be accepted.
            if next == 0 && w == target {
                return true;
            }
            if !visited.insert((w, next)) {
                continue;
            }
            queue.push_back((w, next));
        }
    }
    false
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::index::IndexEntry;
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn correct_index_passes_exhaustive_verification() {
        for graph in [fig1_graph(), fig2_graph()] {
            let (index, _) = build_index(&graph, &BuildConfig::new(2));
            let report = verify_index(&graph, &index, VerificationMode::Exhaustive);
            assert!(report.is_sound_and_complete(), "{:?}", report.mismatches);
            assert_eq!(report.redundant_entries, 0);
            assert_eq!(report.pairs_checked, graph.vertex_count().pow(2));
            assert!(report.queries_checked > report.pairs_checked);
        }
    }

    #[test]
    fn sampled_verification_on_synthetic_graph() {
        let graph = erdos_renyi(&SyntheticConfig::new(300, 3.0, 4, 5));
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let report = verify_index(
            &graph,
            &index,
            VerificationMode::Sampled {
                pairs: 200,
                seed: 1,
            },
        );
        assert!(report.is_sound_and_complete());
        assert_eq!(report.pairs_checked, 200);
    }

    #[test]
    fn unpruned_index_is_correct_but_not_condensed() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2).without_pruning());
        let report = verify_index(&graph, &index, VerificationMode::Exhaustive);
        assert!(report.is_sound_and_complete());
        assert!(
            report.redundant_entries > 0,
            "unpruned index should carry redundancy"
        );
    }

    #[test]
    fn corrupted_index_is_detected() {
        let graph = fig2_graph();
        let (mut index, _) = build_index(&graph, &BuildConfig::new(2));
        // Forge an entry claiming v6 reaches v1 under (l3)+, which is false.
        let l3 = graph.labels().resolve("l3").unwrap();
        let fake_mr = index.catalog.intern(&[l3]);
        let v1 = graph.vertex_id("v1").unwrap();
        let v6 = graph.vertex_id("v6").unwrap();
        index.lout[v6 as usize].push(IndexEntry {
            hub: v1,
            mr: fake_mr,
        });
        let report = verify_index(&graph, &index, VerificationMode::Exhaustive);
        assert!(!report.is_sound_and_complete());
        assert!(report
            .mismatches
            .iter()
            .any(|m| m.source == v6 && m.target == v1 && m.index_answer && !m.oracle_answer));
    }

    #[test]
    fn truncated_index_is_detected_as_incomplete() {
        let graph = fig2_graph();
        let (mut index, _) = build_index(&graph, &BuildConfig::new(2));
        // Drop every Lin entry: many true queries become unanswerable.
        for lin in &mut index.lin {
            lin.clear();
        }
        let report = verify_index(&graph, &index, VerificationMode::Exhaustive);
        assert!(!report.is_sound_and_complete());
        assert!(report
            .mismatches
            .iter()
            .all(|m| !m.index_answer && m.oracle_answer));
    }

    #[test]
    fn oracle_matches_simple_facts() {
        let graph = fig1_graph();
        let debits = graph.labels().resolve("debits").unwrap();
        let credits = graph.labels().resolve("credits").unwrap();
        let a14 = graph.vertex_id("A14").unwrap();
        let a19 = graph.vertex_id("A19").unwrap();
        assert!(oracle_reaches(&graph, a14, a19, &[debits, credits]));
        assert!(!oracle_reaches(&graph, a19, a14, &[debits, credits]));
        assert!(!oracle_reaches(&graph, a14, a19, &[debits]));
    }

    #[test]
    fn empty_graph_report() {
        let graph = rlc_graph::GraphBuilder::with_capacity(0, 1).build();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let report = verify_index(
            &graph,
            &index,
            VerificationMode::Sampled { pairs: 10, seed: 3 },
        );
        assert_eq!(report.pairs_checked, 0);
        assert!(report.is_sound_and_complete());
    }
}
