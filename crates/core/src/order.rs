//! Vertex processing orders for the indexing algorithm.
//!
//! The order in which kernel-based searches are launched determines which
//! vertices become "hubs" of the 2-hop labelling and therefore how much
//! redundancy the pruning rules can remove. The paper uses the IN-OUT
//! strategy — descending `(|out(v)| + 1) × (|in(v)| + 1)` — and notes it is
//! the established choice for 2-hop-style reachability indexes. The other
//! strategies are provided for the ordering ablation study.

use rlc_graph::{LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};

/// Strategy for ordering vertices before indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OrderingStrategy {
    /// Descending `(|out(v)| + 1) × (|in(v)| + 1)` — the paper's choice.
    #[default]
    InOutDegree,
    /// Descending out-degree.
    OutDegree,
    /// Descending in-degree.
    InDegree,
    /// Descending total degree.
    TotalDegree,
    /// Vertex-id order (no reordering); the weakest baseline.
    VertexId,
    /// Deterministic pseudo-random order derived from the given seed.
    Random(u64),
}

/// A computed vertex order: the processing sequence and the inverse map
/// from vertex to *access id* (`aid`), the position at which the vertex is
/// processed (0-based; smaller means earlier / higher priority).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VertexOrder {
    /// Vertices in processing order.
    pub sequence: Vec<VertexId>,
    /// `aid[v]` = position of `v` in `sequence`.
    pub aid: Vec<u32>,
}

impl VertexOrder {
    /// Access id of `v`.
    #[inline]
    pub fn aid(&self, v: VertexId) -> u32 {
        self.aid[v as usize]
    }

    /// Number of vertices ordered.
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Partitions the processing sequence into consecutive *access-id blocks*
    /// of at most `block_size` vertices, in processing order.
    ///
    /// The parallel index build runs every kernel-based search of one block
    /// concurrently against a snapshot of the index frozen at the block
    /// boundary, then merges the block's results in access-id order; the
    /// partitioning therefore never reorders vertices, it only groups them.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn blocks(&self, block_size: usize) -> impl Iterator<Item = &[VertexId]> {
        assert!(block_size > 0, "block size must be at least 1");
        self.sequence.chunks(block_size)
    }
}

/// Computes the processing order of `graph` under `strategy`.
///
/// Ties are broken by ascending vertex id so that orders are deterministic.
pub fn compute_order(graph: &LabeledGraph, strategy: OrderingStrategy) -> VertexOrder {
    let n = graph.vertex_count();
    let mut sequence: Vec<VertexId> = (0..n as VertexId).collect();
    match strategy {
        OrderingStrategy::InOutDegree => {
            sequence.sort_by_key(|&v| {
                let score = (graph.out_degree(v) as u64 + 1) * (graph.in_degree(v) as u64 + 1);
                (std::cmp::Reverse(score), v)
            });
        }
        OrderingStrategy::OutDegree => {
            sequence.sort_by_key(|&v| (std::cmp::Reverse(graph.out_degree(v)), v));
        }
        OrderingStrategy::InDegree => {
            sequence.sort_by_key(|&v| (std::cmp::Reverse(graph.in_degree(v)), v));
        }
        OrderingStrategy::TotalDegree => {
            sequence.sort_by_key(|&v| {
                (
                    std::cmp::Reverse(graph.out_degree(v) + graph.in_degree(v)),
                    v,
                )
            });
        }
        OrderingStrategy::VertexId => {}
        OrderingStrategy::Random(seed) => {
            // Deterministic pseudo-shuffle: sort by a splitmix64 hash of the
            // vertex id, which avoids pulling an RNG dependency into the hot
            // path and is reproducible across platforms.
            sequence.sort_by_key(|&v| (splitmix64(seed ^ v as u64), v));
        }
    }
    let mut aid = vec![0u32; n];
    for (pos, &v) in sequence.iter().enumerate() {
        aid[v as usize] = pos as u32;
    }
    VertexOrder { sequence, aid }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlc_graph::examples::fig2_graph;
    use rlc_graph::generate::{erdos_renyi, SyntheticConfig};

    #[test]
    fn fig2_in_out_order_matches_paper() {
        // §V-B: the sorted list for Fig. 2 is (v1, v3, v2, v4, v5, v6).
        let g = fig2_graph();
        let order = compute_order(&g, OrderingStrategy::InOutDegree);
        let names: Vec<&str> = order
            .sequence
            .iter()
            .map(|&v| g.vertex_name(v).unwrap())
            .collect();
        assert_eq!(names, vec!["v1", "v3", "v2", "v4", "v5", "v6"]);
        assert_eq!(order.aid(g.vertex_id("v3").unwrap()), 1);
    }

    #[test]
    fn aid_is_inverse_of_sequence() {
        let g = erdos_renyi(&SyntheticConfig::new(200, 3.0, 4, 3));
        for strategy in [
            OrderingStrategy::InOutDegree,
            OrderingStrategy::OutDegree,
            OrderingStrategy::InDegree,
            OrderingStrategy::TotalDegree,
            OrderingStrategy::VertexId,
            OrderingStrategy::Random(7),
        ] {
            let order = compute_order(&g, strategy);
            assert_eq!(order.len(), g.vertex_count());
            for (pos, &v) in order.sequence.iter().enumerate() {
                assert_eq!(order.aid(v), pos as u32);
            }
            // The order is a permutation.
            let mut sorted = order.sequence.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                (0..g.vertex_count() as VertexId).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn vertex_id_order_is_identity() {
        let g = fig2_graph();
        let order = compute_order(&g, OrderingStrategy::VertexId);
        assert_eq!(order.sequence, (0..6).collect::<Vec<_>>());
    }

    #[test]
    fn blocks_cover_the_sequence_in_order() {
        let g = erdos_renyi(&SyntheticConfig::new(100, 2.0, 4, 5));
        let order = compute_order(&g, OrderingStrategy::InOutDegree);
        for block_size in [1, 7, 64, 1000] {
            let rejoined: Vec<VertexId> = order.blocks(block_size).flatten().copied().collect();
            assert_eq!(rejoined, order.sequence);
            assert!(order.blocks(block_size).all(|b| b.len() <= block_size));
        }
    }

    #[test]
    #[should_panic(expected = "block size must be at least 1")]
    fn zero_block_size_is_rejected() {
        let g = fig2_graph();
        let order = compute_order(&g, OrderingStrategy::InOutDegree);
        let _ = order.blocks(0).count();
    }

    #[test]
    fn random_orders_differ_across_seeds_but_not_within() {
        let g = erdos_renyi(&SyntheticConfig::new(100, 2.0, 4, 1));
        let a = compute_order(&g, OrderingStrategy::Random(1));
        let b = compute_order(&g, OrderingStrategy::Random(1));
        let c = compute_order(&g, OrderingStrategy::Random(2));
        assert_eq!(a.sequence, b.sequence);
        assert_ne!(a.sequence, c.sequence);
    }
}
