//! The RLC index data structure and its query algorithm (§V-A, Algorithm 1).
//!
//! The index assigns to every vertex `v` two sets of entries:
//!
//! * `Lout(v) = {(w, MR) | v ⇝ w with a path whose label sequence is MR^+}`
//! * `Lin(v)  = {(u, MR) | u ⇝ v with a path whose label sequence is MR^+}`
//!
//! A query `(s, t, L+)` is true iff `(t, L) ∈ Lout(s)`, `(s, L) ∈ Lin(t)`, or
//! some hub `x` has `(x, L) ∈ Lout(s)` and `(x, L) ∈ Lin(t)` (Definition 4).
//! Entries are kept ordered by the hub's *access id* so the third case is a
//! merge join (Algorithm 1), giving `O(|Lout(s)| + |Lin(t)|)` query time.

use crate::catalog::{MrCatalog, MrId};
use crate::engine::Generation;
use crate::order::VertexOrder;
use crate::query::RlcQuery;
use rlc_graph::{Label, VertexId};
use serde::{Deserialize, Serialize};

/// One labelling entry: a hub vertex and the minimum repeat of a witnessing
/// path between the owner of the entry and the hub.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct IndexEntry {
    /// The hub vertex (the root of the kernel-based search that created the
    /// entry).
    pub hub: VertexId,
    /// Interned minimum repeat of the witnessing path.
    pub mr: MrId,
}

/// Summary statistics of a built index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexStats {
    /// The recursive `k` the index was built for.
    pub k: usize,
    /// Number of vertices covered.
    pub vertices: usize,
    /// Total number of entries across all `Lin` sets.
    pub lin_entries: usize,
    /// Total number of entries across all `Lout` sets.
    pub lout_entries: usize,
    /// Number of distinct minimum repeats appearing in entries.
    pub distinct_mrs: usize,
    /// Actual resident memory footprint in bytes (see
    /// [`RlcIndex::memory_bytes`]).
    pub memory_bytes: usize,
    /// Estimated footprint of a CSR-packed deployment in bytes (see
    /// [`RlcIndex::csr_memory_bytes`]); the figure the paper's Table IV
    /// reports, kept separate so table reproductions stay comparable.
    pub csr_memory_bytes: usize,
    /// Largest `|Lin(v)| + |Lout(v)|` over all vertices.
    pub max_entries_per_vertex: usize,
}

impl IndexStats {
    /// Total entries (`Lin` + `Lout`).
    pub fn total_entries(&self) -> usize {
        self.lin_entries + self.lout_entries
    }

    /// Actual resident memory footprint in mebibytes.
    pub fn memory_megabytes(&self) -> f64 {
        self.memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// CSR-packed footprint estimate in mebibytes, as reported in Table IV.
    pub fn csr_memory_megabytes(&self) -> f64 {
        self.csr_memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// The RLC index of a graph, built by [`crate::build::build_index`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlcIndex {
    pub(crate) k: usize,
    pub(crate) order: VertexOrder,
    pub(crate) lin: Vec<Vec<IndexEntry>>,
    pub(crate) lout: Vec<Vec<IndexEntry>>,
    pub(crate) catalog: MrCatalog,
    /// Construction-time generation stamp (see [`Generation`]). Never
    /// serialized — the `RLC2` wire format does not carry it, and `skip`
    /// makes serde deserialization mint a fresh stamp via `Default` —
    /// so a loaded index can never impersonate a live one. `Clone` copies
    /// the stamp: clones share content, so artifacts resolved against one
    /// are valid against the other.
    #[serde(skip)]
    pub(crate) generation: Generation,
}

impl RlcIndex {
    /// Creates an empty index skeleton; used by the builder.
    pub(crate) fn empty(k: usize, order: VertexOrder) -> Self {
        let n = order.len();
        RlcIndex {
            k,
            order,
            lin: vec![Vec::new(); n],
            lout: vec![Vec::new(); n],
            catalog: MrCatalog::new(),
            generation: Generation::fresh(),
        }
    }

    /// The recursive `k` this index supports: queries may use constraints of
    /// at most this many labels.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The generation stamp minted when this index structure was
    /// constructed (fresh on every build **and** every deserialization).
    pub fn generation(&self) -> Generation {
        self.generation
    }

    /// Number of vertices covered by the index.
    pub fn vertex_count(&self) -> usize {
        self.lin.len()
    }

    /// The vertex processing order used to build the index.
    pub fn order(&self) -> &VertexOrder {
        &self.order
    }

    /// The catalog of minimum repeats referenced by entries.
    pub fn catalog(&self) -> &MrCatalog {
        &self.catalog
    }

    /// The `Lin` entries of `v`, ordered by hub access id.
    pub fn lin(&self, v: VertexId) -> &[IndexEntry] {
        &self.lin[v as usize]
    }

    /// The `Lout` entries of `v`, ordered by hub access id.
    pub fn lout(&self, v: VertexId) -> &[IndexEntry] {
        &self.lout[v as usize]
    }

    /// Whether the index can answer a query with this constraint length.
    pub fn supports(&self, query: &RlcQuery) -> bool {
        !query.constraint.is_empty() && query.constraint.len() <= self.k
    }

    /// Answers an RLC query `(s, t, L+)` (Algorithm 1).
    ///
    /// # Panics
    ///
    /// Panics if the constraint is longer than the index's `k`; use
    /// [`RlcIndex::supports`] to check first when the constraint length is
    /// not statically known.
    pub fn query(&self, query: &RlcQuery) -> bool {
        assert!(
            self.supports(query),
            "constraint of length {} exceeds index recursive k = {}",
            query.constraint.len(),
            self.k
        );
        match self.catalog.resolve(&query.constraint) {
            // A constraint never recorded anywhere in the graph cannot be
            // satisfied by any path (completeness of the index).
            None => false,
            Some(mr) => self.query_interned(query.source, query.target, mr),
        }
    }

    /// Answers the Kleene-star variant `(s, t, L*)`, which additionally holds
    /// when `s = t` (the empty path).
    pub fn query_star(&self, query: &RlcQuery) -> bool {
        query.source == query.target || self.query(query)
    }

    /// Convenience wrapper: answers `(s, t, constraint+)` for a raw label
    /// slice, reducing it to its minimum repeat is *not* performed — the
    /// caller must pass a minimum repeat (as [`RlcQuery::new`] enforces).
    pub fn reaches(&self, source: VertexId, target: VertexId, constraint: &[Label]) -> bool {
        let query = RlcQuery::new(source, target, constraint.to_vec())
            // rlc-analyze: allow(panic-free-library) — documented precondition of this convenience wrapper; callers wanting an error path use RlcQuery::new directly
            .expect("constraint must be a non-empty minimum repeat");
        self.query(&query)
    }

    /// Answers `(s, t, mr+)` for an already-resolved minimum repeat — the
    /// execute half of the prepare/execute split, mirroring
    /// `EtcIndex::query_mr`. The resolution against [`RlcIndex::catalog`]
    /// happens once at prepare time; callers holding an [`MrId`] (the engine
    /// layer, the sharded stitcher in `rlc-shard`) skip the per-call lookup.
    ///
    /// # Panics
    ///
    /// Panics when a vertex id is outside the indexed range (like
    /// [`RlcIndex::lin`]/[`RlcIndex::lout`], this is a direct slice access);
    /// engines range-check ids before calling.
    pub fn query_mr(&self, s: VertexId, t: VertexId, mr: MrId) -> bool {
        self.query_interned(s, t, mr)
    }

    /// Core query procedure over an interned constraint.
    pub(crate) fn query_interned(&self, s: VertexId, t: VertexId, mr: MrId) -> bool {
        let lout_s = &self.lout[s as usize];
        let lin_t = &self.lin[t as usize];
        // Case 2 of Definition 4: direct entries.
        if lout_s.iter().any(|e| e.hub == t && e.mr == mr) {
            return true;
        }
        if lin_t.iter().any(|e| e.hub == s && e.mr == mr) {
            return true;
        }
        // Case 1: merge join on hub access id.
        let mut i = 0;
        let mut j = 0;
        while i < lout_s.len() && j < lin_t.len() {
            let ai = self.order.aid(lout_s[i].hub);
            let bj = self.order.aid(lin_t[j].hub);
            if ai < bj {
                i += 1;
            } else if ai > bj {
                j += 1;
            } else {
                // Runs of entries sharing this hub on both sides.
                let hub = lout_s[i].hub;
                let i_start = i;
                while i < lout_s.len() && lout_s[i].hub == hub {
                    i += 1;
                }
                let j_start = j;
                while j < lin_t.len() && lin_t[j].hub == hub {
                    j += 1;
                }
                let left = lout_s[i_start..i].iter().any(|e| e.mr == mr);
                if left {
                    let right = lin_t[j_start..j].iter().any(|e| e.mr == mr);
                    if right {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether `(s, t, mr+)` is already answerable from this index — the
    /// pruning-rule-1 probe. Parallel build workers call this against a
    /// frozen snapshot of the index (a plain shared borrow: the index is
    /// `Sync` and the block-parallel build never mutates it while workers
    /// hold the borrow), the sequential builder against the live index.
    pub(crate) fn answerable(&self, s: VertexId, t: VertexId, mr: &[Label]) -> bool {
        match self.catalog.resolve(mr) {
            None => false,
            Some(id) => self.query_interned(s, t, id),
        }
    }

    /// Appends an entry to `Lin(v)`. The builder appends in access-id order
    /// of the hub, which keeps the list sorted as Algorithm 1 requires.
    pub(crate) fn push_lin(&mut self, v: VertexId, entry: IndexEntry) {
        self.lin[v as usize].push(entry);
    }

    /// Appends an entry to `Lout(v)` (same ordering contract as
    /// [`RlcIndex::push_lin`]).
    pub(crate) fn push_lout(&mut self, v: VertexId, entry: IndexEntry) {
        self.lout[v as usize].push(entry);
    }

    /// Total number of entries.
    pub fn entry_count(&self) -> usize {
        self.lin.iter().map(Vec::len).sum::<usize>() + self.lout.iter().map(Vec::len).sum::<usize>()
    }

    /// Actual resident heap footprint in bytes of the `Vec<Vec<IndexEntry>>`
    /// layout in use today: per-list capacity (including slack), the two
    /// outer vectors' per-vertex `Vec` headers, the vertex-order arrays, and
    /// the MR catalog.
    pub fn memory_bytes(&self) -> usize {
        let entry = std::mem::size_of::<IndexEntry>();
        let vec_header = std::mem::size_of::<Vec<IndexEntry>>();
        let mut bytes = 0usize;
        for side in [&self.lin, &self.lout] {
            bytes += side.capacity() * vec_header;
            bytes += side
                .iter()
                .map(|list| list.capacity() * entry)
                .sum::<usize>();
        }
        bytes += self.order.sequence.capacity() * std::mem::size_of::<VertexId>();
        bytes += self.order.aid.capacity() * std::mem::size_of::<u32>();
        bytes + self.catalog.memory_bytes()
    }

    /// Estimated footprint of a CSR-packed deployment in bytes: 8 bytes per
    /// entry, 16 bytes of per-vertex bookkeeping (two offset entries per
    /// side), the access-id array, and the MR catalog. This is the figure
    /// Table IV-style reproductions report; the actual resident footprint of
    /// the current pointer-based layout is [`RlcIndex::memory_bytes`].
    pub fn csr_memory_bytes(&self) -> usize {
        self.entry_count() * std::mem::size_of::<IndexEntry>()
            + self.vertex_count() * 16
            + self.order.aid.len() * std::mem::size_of::<u32>()
            + self.catalog.memory_bytes()
    }

    /// Computes summary statistics.
    pub fn stats(&self) -> IndexStats {
        let lin_entries = self.lin.iter().map(Vec::len).sum();
        let lout_entries = self.lout.iter().map(Vec::len).sum();
        let max_entries_per_vertex = (0..self.vertex_count())
            .map(|v| self.lin[v].len() + self.lout[v].len())
            .max()
            .unwrap_or(0);
        IndexStats {
            k: self.k,
            vertices: self.vertex_count(),
            lin_entries,
            lout_entries,
            distinct_mrs: self.catalog.len(),
            memory_bytes: self.memory_bytes(),
            csr_memory_bytes: self.csr_memory_bytes(),
            max_entries_per_vertex,
        }
    }

    /// Counts entries that are redundant in the sense of Definition 5: an
    /// entry is redundant if the reachability fact it encodes is already
    /// answerable through the remaining entries.
    ///
    /// Theorem 2 states the index built with all pruning rules enabled has no
    /// redundant entries (it is *condensed*); this is asserted in tests and
    /// exercised by the pruning ablation.
    pub fn redundant_entries(&self) -> usize {
        let mut redundant = 0;
        for t in 0..self.vertex_count() as VertexId {
            for entry in &self.lin[t as usize] {
                let s = entry.hub;
                if self.answerable_without_lin_entry(s, t, entry.mr) {
                    redundant += 1;
                }
            }
        }
        for s in 0..self.vertex_count() as VertexId {
            for entry in &self.lout[s as usize] {
                let t = entry.hub;
                if self.answerable_without_lout_entry(s, t, entry.mr) {
                    redundant += 1;
                }
            }
        }
        redundant
    }

    /// Whether the index contains no redundant entries (Theorem 2).
    pub fn is_condensed(&self) -> bool {
        self.redundant_entries() == 0
    }

    /// Can `(s, t, mr+)` be answered without using the entry `(s, mr) ∈ Lin(t)`?
    fn answerable_without_lin_entry(&self, s: VertexId, t: VertexId, mr: MrId) -> bool {
        // Case 2 via Lout(s).
        if self.lout[s as usize]
            .iter()
            .any(|e| e.hub == t && e.mr == mr)
        {
            return true;
        }
        // Case 1 with any hub other than s itself (the hub-s pair on the
        // Lin(t) side would be the entry under test).
        self.join_hub_exists(s, t, mr, Some(s))
    }

    /// Can `(s, t, mr+)` be answered without using the entry `(t, mr) ∈ Lout(s)`?
    fn answerable_without_lout_entry(&self, s: VertexId, t: VertexId, mr: MrId) -> bool {
        if self.lin[t as usize]
            .iter()
            .any(|e| e.hub == s && e.mr == mr)
        {
            return true;
        }
        self.join_hub_exists(s, t, mr, Some(t))
    }

    /// Whether some hub `x` (optionally excluding one vertex) has `(x, mr)` in
    /// both `Lout(s)` and `Lin(t)`.
    fn join_hub_exists(
        &self,
        s: VertexId,
        t: VertexId,
        mr: MrId,
        exclude: Option<VertexId>,
    ) -> bool {
        let lout_s = &self.lout[s as usize];
        let lin_t = &self.lin[t as usize];
        for a in lout_s {
            if a.mr != mr || Some(a.hub) == exclude {
                continue;
            }
            if lin_t.iter().any(|b| b.hub == a.hub && b.mr == mr) {
                return true;
            }
        }
        false
    }

    /// Serializes the index to a compact binary representation (format
    /// version 2, magic `"RLC2"`).
    ///
    /// Layout: header (`k` as `u32`, vertex count as `u64`, catalog size as
    /// `u64`), the catalog sequences (each a `u16` length followed by `u16`
    /// labels), the access-id permutation (`u32` per vertex), then per-vertex
    /// entry lists (`u32` length, then `u32` hub + `u32` MR id per entry).
    /// All integers are little-endian.
    ///
    /// Returns an explicit error instead of silently truncating when a field
    /// exceeds its on-disk width (a catalog sequence longer than `u16::MAX`
    /// labels, or a per-vertex entry list longer than `u32::MAX`).
    pub fn try_to_bytes(&self) -> Result<Vec<u8>, String> {
        use bytes::BufMut;
        let mut buf = Vec::with_capacity(self.csr_memory_bytes());
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(
            u32::try_from(self.k).map_err(|_| format!("recursive k {} exceeds u32", self.k))?,
        );
        buf.put_u64_le(self.vertex_count() as u64);
        buf.put_u64_le(self.catalog.len() as u64);
        for (id, seq) in self.catalog.iter() {
            let len = u16::try_from(seq.len()).map_err(|_| {
                format!(
                    "catalog sequence {} has {} labels, exceeding the u16 length field",
                    id.0,
                    seq.len()
                )
            })?;
            buf.put_u16_le(len);
            for label in seq {
                buf.put_u16_le(label.0);
            }
        }
        for &v in &self.order.sequence {
            buf.put_u32_le(v);
        }
        for side in [&self.lout, &self.lin] {
            for (v, entries) in side.iter().enumerate() {
                let len = u32::try_from(entries.len()).map_err(|_| {
                    format!(
                        "vertex {v} has {} entries, exceeding the u32 length field",
                        entries.len()
                    )
                })?;
                buf.put_u32_le(len);
                for e in entries {
                    buf.put_u32_le(e.hub);
                    buf.put_u32_le(e.mr.0);
                }
            }
        }
        Ok(buf)
    }

    /// Serializes the index, panicking on field overflow (see
    /// [`RlcIndex::try_to_bytes`] for the fallible variant; overflow needs an
    /// index beyond 2^32 entries on one vertex, so the panic is theoretical).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.try_to_bytes()
            // rlc-analyze: allow(panic-free-library) — documented panicking wrapper; the fallible twin is try_to_bytes, and overflow needs 2^32 entries on one vertex
            .expect("index exceeds binary format field widths")
    }

    /// Deserializes an index produced by [`RlcIndex::to_bytes`].
    ///
    /// Every structural invariant is validated: magic/version, catalog
    /// sequences must be distinct minimum repeats, the vertex order must be a
    /// bijection over the vertex ids, and every entry must reference an
    /// in-range hub and a known minimum repeat. Corrupt or truncated blobs
    /// yield a descriptive error, never a silently wrong index.
    pub fn from_bytes(data: &[u8]) -> Result<Self, String> {
        use bytes::Buf;
        let mut buf = data;
        let corrupt = |what: &str| -> String {
            format!("truncated or corrupt index data while reading {what}")
        };
        let check = |ok: bool, what: &str| -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(corrupt(what))
            }
        };
        check(buf.remaining() >= 24, "header")?;
        let magic = buf.get_u32_le();
        if magic == MAGIC_V1 {
            return Err(
                "unsupported RLC index format version 1; rebuild and re-serialize the index"
                    .to_owned(),
            );
        }
        if magic != MAGIC {
            return Err(format!("bad magic {magic:#x}, not an RLC index blob"));
        }
        let k = buf.get_u32_le() as usize;
        if k == 0 {
            return Err("corrupt index data: recursive k must be at least 1".to_owned());
        }
        let n = usize::try_from(buf.get_u64_le())
            .map_err(|_| "corrupt index data: vertex count exceeds usize".to_owned())?;
        let catalog_len = usize::try_from(buf.get_u64_le())
            .map_err(|_| "corrupt index data: catalog size exceeds usize".to_owned())?;
        // Size fields come from untrusted data: bound them by the bytes
        // actually present (division form, immune to multiplication
        // overflow) before any loop or allocation sized by them.
        let catalog_len = rlc_graph::checked_len(catalog_len, 2, buf.remaining())
            .map_err(|_| corrupt("catalog"))?;
        let mut catalog = MrCatalog::new();
        for i in 0..catalog_len {
            check(buf.remaining() >= 2, "catalog entry length")?;
            let len = buf.get_u16_le() as usize;
            check(buf.remaining() >= 2 * len, "catalog entry")?;
            let seq: Vec<Label> = (0..len).map(|_| Label(buf.get_u16_le())).collect();
            if !crate::repeats::is_minimum_repeat(&seq) {
                return Err(format!(
                    "corrupt index data: catalog sequence {i} is not a minimum repeat"
                ));
            }
            if catalog.resolve(&seq).is_some() {
                return Err(format!(
                    "corrupt index data: catalog sequence {i} duplicates an earlier sequence"
                ));
            }
            catalog.intern(&seq);
        }
        let n =
            rlc_graph::checked_len(n, 4, buf.remaining()).map_err(|_| corrupt("vertex order"))?;
        let sequence: Vec<VertexId> = (0..n).map(|_| buf.get_u32_le()).collect();
        // The order must be a bijection between positions and vertex ids:
        // every id in range and none repeated (with exactly n positions this
        // also rules out missing ids, which would otherwise silently keep the
        // default access id 0 and corrupt every PR2 comparison downstream).
        let mut aid = vec![u32::MAX; n];
        for (pos, &v) in sequence.iter().enumerate() {
            check((v as usize) < n, "vertex order entry")?;
            if aid[v as usize] != u32::MAX {
                return Err(format!(
                    "corrupt index data: vertex {v} appears twice in the vertex order \
                     (positions {} and {pos}), so the order is not a permutation",
                    aid[v as usize]
                ));
            }
            aid[v as usize] = pos as u32;
        }
        let order = VertexOrder { sequence, aid };
        let read_side =
            |buf: &mut &[u8], side_name: &str| -> Result<Vec<Vec<IndexEntry>>, String> {
                let mut side = Vec::with_capacity(n);
                for _ in 0..n {
                    check(buf.remaining() >= 4, "entry list length")?;
                    let len = buf.get_u32_le() as usize;
                    let len = rlc_graph::checked_len(len, 8, buf.remaining())
                        .map_err(|_| corrupt("entry list"))?;
                    let mut entries = Vec::with_capacity(len);
                    for _ in 0..len {
                        let hub = buf.get_u32_le();
                        let mr = MrId(buf.get_u32_le());
                        if hub as usize >= n {
                            return Err(format!(
                                "corrupt index data: {side_name} entry hub {hub} out of range \
                             for {n} vertices"
                            ));
                        }
                        if mr.index() >= catalog_len {
                            return Err(format!(
                                "corrupt index data: {side_name} entry references unknown \
                             minimum repeat {}",
                                mr.0
                            ));
                        }
                        entries.push(IndexEntry { hub, mr });
                    }
                    side.push(entries);
                }
                Ok(side)
            };
        let lout = read_side(&mut buf, "Lout")?;
        let lin = read_side(&mut buf, "Lin")?;
        if buf.remaining() > 0 {
            return Err(format!(
                "corrupt index data: {} trailing bytes after the last entry list",
                buf.remaining()
            ));
        }
        Ok(RlcIndex {
            k,
            order,
            lin,
            lout,
            catalog,
            // A deserialized index is a new index structure: stale artifacts
            // from whatever produced the blob must re-prepare against it.
            generation: Generation::fresh(),
        })
    }

    /// Human-readable dump of all entries, with vertex/label names resolved
    /// against `graph` when available. Intended for debugging and examples.
    pub fn describe(&self, graph: &rlc_graph::LabeledGraph) -> String {
        let mut out = String::new();
        let vertex = |v: VertexId| {
            graph
                .vertex_name(v)
                .map(str::to_owned)
                .unwrap_or_else(|| format!("v{v}"))
        };
        let mr = |id: MrId| {
            let seq = self.catalog.sequence(id);
            let parts: Vec<String> = seq
                .iter()
                .map(|l| {
                    graph
                        .labels()
                        .name(*l)
                        .map(str::to_owned)
                        .unwrap_or_else(|| format!("{l}"))
                })
                .collect();
            format!("({})", parts.join(","))
        };
        for v in 0..self.vertex_count() as VertexId {
            let fmt_entries = |entries: &[IndexEntry]| {
                entries
                    .iter()
                    .map(|e| format!("({},{})", vertex(e.hub), mr(e.mr)))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push_str(&format!(
                "{}: Lin = [{}], Lout = [{}]\n",
                vertex(v),
                fmt_entries(&self.lin[v as usize]),
                fmt_entries(&self.lout[v as usize]),
            ));
        }
        out
    }
}

/// Current binary format magic ("RLC2"): version 2 widened the catalog
/// sequence length from `u8` to `u16` and the catalog count from `u32` to
/// `u64` after version 1 was found to silently truncate on narrow casts.
const MAGIC: u32 = 0x524C_4332; // "RLC2"
/// Format version 1 magic, recognized only to produce a version error.
const MAGIC_V1: u32 = 0x524C_4331; // "RLC1"

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{compute_order, OrderingStrategy};
    use rlc_graph::examples::fig2_graph;

    /// Builds a tiny hand-rolled index for the two-vertex graph a -x-> b to
    /// exercise the query procedure without the builder.
    fn tiny_index() -> RlcIndex {
        let mut b = rlc_graph::GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        let order = compute_order(&g, OrderingStrategy::InOutDegree);
        let mut index = RlcIndex::empty(2, order);
        let x = g.labels().resolve("x").unwrap();
        let mr = index.catalog.intern(&[x]);
        let a = g.vertex_id("a").unwrap();
        let bb = g.vertex_id("b").unwrap();
        // Record a ⇝ b with (x)+ as a Case-2 entry on the Lin side.
        index.lin[bb as usize].push(IndexEntry { hub: a, mr });
        index
    }

    #[test]
    fn case2_entries_answer_queries() {
        let index = tiny_index();
        assert!(index.query_interned(0, 1, MrId(0)));
        assert!(!index.query_interned(1, 0, MrId(0)));
    }

    #[test]
    fn unknown_constraint_is_false() {
        let index = tiny_index();
        let q = RlcQuery::new(0, 1, vec![Label(99)]).unwrap();
        assert!(!index.query(&q));
    }

    #[test]
    #[should_panic(expected = "exceeds index recursive k")]
    fn over_long_constraint_panics() {
        let index = tiny_index();
        let q = RlcQuery::new(0, 1, vec![Label(0), Label(1), Label(2)]).unwrap();
        index.query(&q);
    }

    #[test]
    fn query_star_accepts_identical_endpoints() {
        let index = tiny_index();
        let q = RlcQuery::new(0, 0, vec![Label(5)]).unwrap();
        assert!(index.query_star(&q));
        assert!(!index.query(&q));
    }

    #[test]
    fn merge_join_finds_common_hub() {
        let mut b = rlc_graph::GraphBuilder::new();
        b.add_edge_named("s", "x", "h");
        b.add_edge_named("h", "x", "t");
        let g = b.build();
        let order = compute_order(&g, OrderingStrategy::InOutDegree);
        let mut index = RlcIndex::empty(2, order);
        let x = g.labels().resolve("x").unwrap();
        let mr = index.catalog.intern(&[x]);
        let s = g.vertex_id("s").unwrap();
        let h = g.vertex_id("h").unwrap();
        let t = g.vertex_id("t").unwrap();
        index.lout[s as usize].push(IndexEntry { hub: h, mr });
        index.lin[t as usize].push(IndexEntry { hub: h, mr });
        assert!(index.query_interned(s, t, mr));
        // A different constraint through the same hub must not match.
        let other = index.catalog.intern(&[Label(9)]);
        assert!(!index.query_interned(s, t, other));
    }

    #[test]
    fn binary_round_trip_preserves_queries() {
        let g = fig2_graph();
        let (index, _) = crate::build::build_index(&g, &crate::build::BuildConfig::new(2));
        let bytes = index.to_bytes();
        let back = RlcIndex::from_bytes(&bytes).unwrap();
        assert_eq!(back.k(), index.k());
        assert_eq!(back.entry_count(), index.entry_count());
        for s in g.vertices() {
            for t in g.vertices() {
                for (_, seq) in index.catalog().iter() {
                    let q = RlcQuery::new(s, t, seq.to_vec()).unwrap();
                    assert_eq!(index.query(&q), back.query(&q));
                }
            }
        }
    }

    #[test]
    fn deserialized_indexes_get_fresh_generations() {
        // The wire formats never carry generations: every deserialization
        // mints a fresh one, so a loaded index can never be confused with
        // the (possibly dropped) index that produced the blob — and the blob
        // itself is byte-identical regardless of the source's generation.
        let g = fig2_graph();
        let (index, _) = crate::build::build_index(&g, &crate::build::BuildConfig::new(2));
        let bytes = index.to_bytes();
        let once = RlcIndex::from_bytes(&bytes).unwrap();
        let twice = RlcIndex::from_bytes(&bytes).unwrap();
        assert_ne!(once.generation(), index.generation());
        assert_ne!(twice.generation(), index.generation());
        assert_ne!(once.generation(), twice.generation());
        assert_eq!(
            once.to_bytes(),
            bytes,
            "generation must not leak into the blob"
        );
        // Same contract for the serde path (skip + Default mints fresh).
        let json = serde_json::to_string(&index).unwrap();
        assert!(!json.contains("generation"));
        let back: RlcIndex = serde_json::from_str(&json).unwrap();
        assert_ne!(back.generation(), index.generation());
        // Clones share content, so they share the stamp.
        assert_eq!(index.clone().generation(), index.generation());
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(RlcIndex::from_bytes(&[1, 2, 3]).is_err());
        let mut blob = tiny_index().to_bytes();
        blob[0] ^= 0xFF;
        assert!(RlcIndex::from_bytes(&blob).is_err());
        let blob = tiny_index().to_bytes();
        assert!(RlcIndex::from_bytes(&blob[..blob.len() - 3]).is_err());
    }

    /// Byte offset of the vertex-order section in a `tiny_index` blob:
    /// 24-byte header, then one catalog sequence (2-byte length + one
    /// 2-byte label).
    const TINY_ORDER_OFFSET: usize = 24 + 4;

    #[test]
    fn from_bytes_rejects_duplicate_vertex_in_order() {
        let mut blob = tiny_index().to_bytes();
        // Overwrite the second order entry with a copy of the first, so one
        // vertex id appears twice and the other never.
        let (first, rest) = blob.split_at_mut(TINY_ORDER_OFFSET + 4);
        rest[..4].copy_from_slice(&first[TINY_ORDER_OFFSET..]);
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(
            err.contains("not a permutation"),
            "error should name the broken invariant: {err}"
        );
    }

    #[test]
    fn from_bytes_rejects_out_of_range_vertex_in_order() {
        let mut blob = tiny_index().to_bytes();
        blob[TINY_ORDER_OFFSET..TINY_ORDER_OFFSET + 4].copy_from_slice(&99u32.to_le_bytes());
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(err.contains("vertex order"), "unexpected error: {err}");
    }

    #[test]
    fn from_bytes_rejects_version_1_blobs() {
        let mut blob = tiny_index().to_bytes();
        blob[..4].copy_from_slice(&0x524C_4331u32.to_le_bytes());
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(err.contains("version 1"), "unexpected error: {err}");
    }

    #[test]
    fn from_bytes_rejects_absurd_size_fields_without_allocating() {
        // A crafted header claiming 2^62 vertices must yield a descriptive
        // error: the old `4 * n` length check wrapped to 0 and the loader
        // went on to attempt a multi-exbibyte allocation.
        let mut blob = Vec::new();
        blob.extend_from_slice(&0x524C_4332u32.to_le_bytes());
        blob.extend_from_slice(&2u32.to_le_bytes());
        blob.extend_from_slice(&(1u64 << 62).to_le_bytes());
        blob.extend_from_slice(&0u64.to_le_bytes());
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(err.contains("vertex order"), "unexpected error: {err}");
        // Same for an absurd catalog count.
        let mut blob = Vec::new();
        blob.extend_from_slice(&0x524C_4332u32.to_le_bytes());
        blob.extend_from_slice(&2u32.to_le_bytes());
        blob.extend_from_slice(&0u64.to_le_bytes());
        blob.extend_from_slice(&u64::MAX.to_le_bytes());
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(err.contains("catalog"), "unexpected error: {err}");
    }

    #[test]
    fn from_bytes_rejects_trailing_garbage() {
        let mut blob = tiny_index().to_bytes();
        blob.push(0);
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(err.contains("trailing"), "unexpected error: {err}");
    }

    #[test]
    fn from_bytes_rejects_duplicate_catalog_sequence() {
        let mut blob = tiny_index().to_bytes();
        // Bump the catalog count to 2 and splice in a copy of the first
        // (and only) catalog sequence record.
        blob[16..24].copy_from_slice(&2u64.to_le_bytes());
        let record: Vec<u8> = blob[24..28].to_vec();
        blob.splice(28..28, record);
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(err.contains("duplicates"), "unexpected error: {err}");
    }

    #[test]
    fn from_bytes_rejects_reducible_catalog_sequence() {
        let mut blob = tiny_index().to_bytes();
        // Rewrite the only catalog sequence as (x, x), which is not its own
        // minimum repeat.
        let label: Vec<u8> = blob[26..28].to_vec();
        blob[24..26].copy_from_slice(&2u16.to_le_bytes());
        blob.splice(28..28, label);
        let err = RlcIndex::from_bytes(&blob).unwrap_err();
        assert!(err.contains("minimum repeat"), "unexpected error: {err}");
    }

    #[test]
    fn long_catalog_sequences_round_trip() {
        // 300 distinct labels form their own minimum repeat; the format-1
        // u8 length field would have wrapped to 44 and produced a blob that
        // round-trips to a different index.
        let mut b = rlc_graph::GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        let order = compute_order(&g, OrderingStrategy::InOutDegree);
        let mut index = RlcIndex::empty(300, order);
        let long: Vec<Label> = (0..300u16).map(Label).collect();
        let mr = index.catalog.intern(&long);
        index.lin[1].push(IndexEntry { hub: 0, mr });
        let back = RlcIndex::from_bytes(&index.to_bytes()).unwrap();
        assert_eq!(back.catalog().sequence(mr), &long[..]);
        assert_eq!(back.entry_count(), 1);
        assert!(back.query_interned(0, 1, mr));
    }

    #[test]
    fn stats_reflect_entries() {
        let index = tiny_index();
        let stats = index.stats();
        assert_eq!(stats.lin_entries, 1);
        assert_eq!(stats.lout_entries, 0);
        assert_eq!(stats.total_entries(), 1);
        assert_eq!(stats.distinct_mrs, 1);
        assert!(stats.memory_bytes > 0);
        assert!(stats.memory_megabytes() > 0.0);
        assert!(stats.csr_memory_bytes > 0);
        assert!(stats.csr_memory_megabytes() > 0.0);
        assert_eq!(stats.max_entries_per_vertex, 1);
    }

    #[test]
    fn memory_bytes_prices_the_actual_layout_not_the_csr_one() {
        let g = fig2_graph();
        let (index, _) = crate::build::build_index(&g, &crate::build::BuildConfig::new(2));
        let actual = index.memory_bytes();
        let csr = index.csr_memory_bytes();
        // The Vec-of-Vecs layout carries ≈48 bytes of Vec headers per vertex
        // (two sides), so actual residency must exceed the CSR estimate's
        // 16 bytes of per-vertex bookkeeping.
        let headers = 2 * index.vertex_count() * std::mem::size_of::<Vec<IndexEntry>>();
        assert!(
            actual >= index.entry_count() * std::mem::size_of::<IndexEntry>() + headers,
            "actual residency must cover entries plus Vec headers"
        );
        assert!(actual > csr, "pointer layout outweighs the CSR estimate");
    }

    #[test]
    fn describe_uses_names() {
        let g = fig2_graph();
        let (index, _) = crate::build::build_index(&g, &crate::build::BuildConfig::new(2));
        let text = index.describe(&g);
        assert!(text.contains("v1"));
        assert!(text.contains("Lout"));
    }
}
