//! Constraint-grouping batch planner.
//!
//! A production query mix exhibits heavy constraint reuse: many users ask
//! about different vertex pairs under the same few path constraints. The
//! naive batch path ([`ReachabilityEngine::evaluate_batch`]) pays
//! per-query preparation — NFA construction, block validation, catalog
//! resolution — for every single query. [`BatchPlan`] removes that waste:
//!
//! 1. the batch is grouped by [`Constraint`] (first-seen order, equal
//!    constraints hash together);
//! 2. each group's constraint is prepared **exactly once** via
//!    [`ReachabilityEngine::prepare`];
//! 3. groups fan out across CPU cores with rayon, and inside a group the
//!    engine's [`ReachabilityEngine::evaluate_prepared_group`] override can
//!    answer all pairs sharing a source with one product-graph search;
//! 4. answers are scattered back in submission order.

use crate::cache::{PlanCache, PrepareOutcome};
use crate::engine::{Prepared, ReachabilityEngine};
use crate::query::{Constraint, Query, QueryError};
use rayon::prelude::*;
use rlc_graph::VertexId;
use rlc_obs::TraceNode;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One group of the plan: every query of the batch sharing `constraint`.
struct PlanGroup<'q> {
    constraint: &'q Constraint,
    /// Positions of the group's queries in the submitted batch.
    indices: Vec<usize>,
    /// The `(source, target)` pairs, parallel to `indices`.
    pairs: Vec<(VertexId, VertexId)>,
}

/// An execution plan for a mixed query batch: queries grouped by constraint
/// so each distinct constraint is prepared once per execution.
///
/// ```
/// use rlc_core::{build_index, BuildConfig, BatchPlan, IndexEngine, Query};
/// use rlc_graph::examples::fig2_graph;
/// use rlc_graph::Label;
///
/// let graph = fig2_graph();
/// let (index, _) = build_index(&graph, &BuildConfig::new(2));
/// let engine = IndexEngine::new(&graph, &index);
/// let queries = vec![
///     Query::rlc(0, 5, vec![Label(1)]).unwrap(),
///     Query::rlc(1, 4, vec![Label(1)]).unwrap(), // same constraint: one group
///     Query::concat(0, 4, vec![vec![Label(1)], vec![Label(0)]]).unwrap(),
/// ];
/// let plan = BatchPlan::new(&queries);
/// assert_eq!(plan.group_count(), 2);
/// let answers = plan.execute(&engine);
/// assert_eq!(answers.len(), 3); // submission order
/// ```
pub struct BatchPlan<'q> {
    query_count: usize,
    groups: Vec<PlanGroup<'q>>,
}

impl<'q> BatchPlan<'q> {
    /// Plans a batch: groups queries by constraint, preserving first-seen
    /// group order and remembering each query's submission position.
    pub fn new(queries: &'q [Query]) -> Self {
        let mut lookup: HashMap<&'q Constraint, usize> = HashMap::new();
        let mut groups: Vec<PlanGroup<'q>> = Vec::new();
        for (i, query) in queries.iter().enumerate() {
            let slot = *lookup.entry(query.constraint()).or_insert_with(|| {
                groups.push(PlanGroup {
                    constraint: query.constraint(),
                    indices: Vec::new(),
                    pairs: Vec::new(),
                });
                groups.len() - 1
            });
            groups[slot].indices.push(i);
            groups[slot].pairs.push((query.source, query.target));
        }
        // Sort each group's pairs by source (stably, carrying the submission
        // positions along) so pairs sharing a source stay contiguous when
        // `execute` chunks a large group across workers — the traversal
        // engines' multi-target search then still sees whole source runs.
        for group in &mut groups {
            let mut order: Vec<usize> = (0..group.pairs.len()).collect();
            order.sort_by_key(|&i| group.pairs[i].0);
            group.indices = order.iter().map(|&i| group.indices[i]).collect();
            group.pairs = order.iter().map(|&i| group.pairs[i]).collect();
        }
        BatchPlan {
            query_count: queries.len(),
            groups,
        }
    }

    /// Number of distinct constraints in the batch — the number of
    /// [`ReachabilityEngine::prepare`] calls one [`BatchPlan::execute`]
    /// performs.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Number of queries in the planned batch.
    pub fn query_count(&self) -> usize {
        self.query_count
    }

    /// Sizes of the constraint groups, in first-seen order.
    pub fn group_sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.pairs.len()).collect()
    }

    /// Executes the plan on `engine`: prepares each group's constraint once,
    /// fans the evaluation out across rayon workers, and returns the answers
    /// in submission order.
    ///
    /// Parallelism is two-level: the prepares run one-per-group in parallel,
    /// and every group is then split into at most `worker_count` chunks that
    /// all fan out together — a skewed batch dominated by one constraint
    /// still keeps every core busy instead of collapsing to one worker per
    /// group. Chunking respects the source-sorted pair order established by
    /// [`BatchPlan::new`], so the traversal engines' same-source sharing
    /// survives the split.
    ///
    /// A constraint the engine rejects (e.g. a block longer than its
    /// recursive `k`) yields that error for every query of its group; the
    /// other groups still evaluate.
    pub fn execute(&self, engine: &dyn ReachabilityEngine) -> Vec<Result<bool, QueryError>> {
        self.execute_with(engine, |constraint| {
            engine.prepare(constraint).map(Arc::new)
        })
    }

    /// Executes the plan with preparations drawn from (and inserted into) a
    /// cross-batch [`PlanCache`]: a constraint already resident for this
    /// engine's identity costs no [`ReachabilityEngine::prepare`] call at
    /// all, so repeated batches prepare each distinct constraint once per
    /// *process* rather than once per execution. Answers — including
    /// per-group errors, which the cache also retains — are identical to
    /// [`BatchPlan::execute`].
    pub fn execute_cached(
        &self,
        engine: &dyn ReachabilityEngine,
        cache: &PlanCache,
    ) -> Vec<Result<bool, QueryError>> {
        self.execute_with(engine, |constraint| cache.prepare(engine, constraint))
    }

    /// Executes the plan **and explains it**: returns the submission-order
    /// answers together with a machine-readable [`TraceNode`] tree — one
    /// `batch` root carrying plan-level decisions (group count, kernel
    /// lane, per-phase wall-clock) with one `query` child per submitted
    /// query, produced by the engine's
    /// [`ReachabilityEngine::explain_prepared`].
    ///
    /// This is a diagnosis path, not a throughput path: queries evaluate
    /// sequentially so each trace reflects one uncontended evaluation. The
    /// answers are the contract: they are identical — including errors —
    /// to [`BatchPlan::execute`] (or [`BatchPlan::execute_cached`] when
    /// `cache` is `Some`, whose hit/coalesced outcome is recorded on each
    /// query node).
    pub fn execute_explained(
        &self,
        engine: &dyn ReachabilityEngine,
        cache: Option<&PlanCache>,
    ) -> (Vec<Result<bool, QueryError>>, TraceNode) {
        let mut root = TraceNode::new("batch");
        root.attr("engine", engine.name())
            .attr("queries", self.query_count)
            .attr("groups", self.groups.len())
            .attr("kernel_lane", crate::kernel::kernel_name());

        // Phase 1: prepare each group once, through the cache when given.
        type ExplainedPrepare = (Result<Arc<Prepared>, QueryError>, Option<PrepareOutcome>);
        let prepare_started = Instant::now();
        let prepared: Vec<ExplainedPrepare> = self
            .groups
            .iter()
            .map(|group| match cache {
                Some(cache) => {
                    let (plan, outcome) = cache.prepare_outcome(engine, group.constraint);
                    (plan, Some(outcome))
                }
                None => (engine.prepare(group.constraint).map(Arc::new), None),
            })
            .collect();
        let prepare_ns = prepare_started.elapsed().as_nanos();

        // Phase 2: sequential per-query explained evaluation.
        let execute_started = Instant::now();
        let mut answers: Vec<Result<bool, QueryError>> = vec![Ok(false); self.query_count];
        let mut children: Vec<(usize, TraceNode)> = Vec::with_capacity(self.query_count);
        for (slot, group) in self.groups.iter().enumerate() {
            let (plan, outcome) = &prepared[slot];
            for (&index, &(source, target)) in group.indices.iter().zip(&group.pairs) {
                let (answer, mut node) = match plan {
                    Ok(artifact) => engine.explain_prepared(source, target, artifact),
                    Err(error) => {
                        let mut node = TraceNode::new("query");
                        node.attr("engine", engine.name())
                            .attr("source", source)
                            .attr("target", target)
                            .attr("error", error);
                        (Err(error.clone()), node)
                    }
                };
                node.attr("batch_index", index)
                    .attr("group", slot)
                    .attr("group_size", group.pairs.len());
                if let Some(outcome) = outcome {
                    node.attr("cache_hit", outcome.hit)
                        .attr("cache_coalesced", outcome.coalesced)
                        .attr("cache_stale_drop", outcome.stale_drop);
                }
                answers[index] = answer;
                children.push((index, node));
            }
        }
        let execute_ns = execute_started.elapsed().as_nanos();

        // Phase 3: scatter trace children back into submission order.
        let scatter_started = Instant::now();
        children.sort_by_key(|&(index, _)| index);
        for (_, node) in children {
            root.child(node);
        }
        root.attr("prepare_ns", prepare_ns)
            .attr("execute_ns", execute_ns)
            .attr("scatter_ns", scatter_started.elapsed().as_nanos());
        (answers, root)
    }

    /// Shared execute skeleton over a pluggable preparation source.
    fn execute_with(
        &self,
        engine: &dyn ReachabilityEngine,
        prepare: impl Fn(&Constraint) -> Result<Arc<Prepared>, QueryError> + Sync,
    ) -> Vec<Result<bool, QueryError>> {
        // Phase 1: one prepare per distinct constraint.
        let prepared: Vec<Result<Arc<Prepared>, QueryError>> = {
            let _span = rlc_obs::span!("rlc_plan_prepare_seconds");
            self.groups
                .par_iter()
                .map(|group| prepare(group.constraint))
                .collect()
        };

        // Phase 2: chunk every successfully prepared group and evaluate all
        // chunks in one parallel wave.
        let execute_span = rlc_obs::span!("rlc_plan_execute_seconds");
        let workers = crate::engine::batch_threads().max(1);
        let mut chunks: Vec<(usize, usize, usize)> = Vec::new();
        for (slot, group) in self.groups.iter().enumerate() {
            if prepared[slot].is_err() {
                continue;
            }
            let len = group.pairs.len();
            let chunk_len = len.div_ceil(workers).max(1);
            let mut start = 0;
            while start < len {
                let end = (start + chunk_len).min(len);
                chunks.push((slot, start, end));
                start = end;
            }
        }
        let chunk_answers: Vec<Vec<Result<bool, QueryError>>> = chunks
            .par_iter()
            .map(|&(slot, start, end)| {
                let artifact = prepared[slot]
                    .as_ref()
                    // rlc-analyze: allow(panic-free-library) — the chunk list is built in the loop above strictly from slots whose prepare succeeded
                    .expect("chunks are only built for prepared groups");
                engine.evaluate_prepared_group(&self.groups[slot].pairs[start..end], artifact)
            })
            .collect();
        drop(execute_span);

        // Scatter back in submission order.
        let _span = rlc_obs::span!("rlc_plan_scatter_seconds");
        let mut answers: Vec<Result<bool, QueryError>> = vec![Ok(false); self.query_count];
        for (slot, group) in self.groups.iter().enumerate() {
            if let Err(error) = &prepared[slot] {
                for &index in &group.indices {
                    answers[index] = Err(error.clone());
                }
            }
        }
        for (&(slot, start, end), results) in chunks.iter().zip(chunk_answers) {
            // Hard contract, not a debug assert: a third-party engine whose
            // grouped override returns the wrong number of results must not
            // silently leave queries at the Ok(false) placeholder.
            assert_eq!(
                end - start,
                results.len(),
                "evaluate_prepared_group must return one result per pair"
            );
            for (&index, result) in self.groups[slot].indices[start..end].iter().zip(results) {
                answers[index] = result;
            }
        }
        answers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::engine::{IndexEngine, PrepareCounting};
    use rlc_graph::examples::fig2_graph;
    use rlc_graph::Label;

    fn mixed_batch() -> Vec<Query> {
        let mut queries = Vec::new();
        for i in 0..6u32 {
            // Two interleaved constraints plus one concatenation.
            queries.push(Query::rlc(i % 6, (i + 1) % 6, vec![Label(1)]).unwrap());
            queries.push(Query::rlc((i + 2) % 6, i % 6, vec![Label(0), Label(1)]).unwrap());
            queries.push(
                Query::concat(i % 6, (i + 3) % 6, vec![vec![Label(1)], vec![Label(0)]]).unwrap(),
            );
        }
        queries
    }

    #[test]
    fn grouping_preserves_counts_and_order() {
        let queries = mixed_batch();
        let plan = BatchPlan::new(&queries);
        assert_eq!(plan.group_count(), 3);
        assert_eq!(plan.query_count(), queries.len());
        assert_eq!(plan.group_sizes(), vec![6, 6, 6]);
    }

    #[test]
    fn execute_matches_one_shot_in_submission_order() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries = mixed_batch();
        let planned = BatchPlan::new(&queries).execute(&engine);
        let one_shot: Vec<_> = queries.iter().map(|q| engine.evaluate(q)).collect();
        assert_eq!(planned, one_shot);
    }

    #[test]
    fn each_distinct_constraint_is_prepared_once() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let counting = PrepareCounting::new(&engine);
        let queries = mixed_batch();
        let plan = BatchPlan::new(&queries);
        let _ = plan.execute(&counting);
        assert_eq!(counting.prepare_count(), plan.group_count());
    }

    #[test]
    fn rejected_groups_error_without_poisoning_others() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries = vec![
            Query::rlc(0, 5, vec![Label(1)]).unwrap(),
            // Valid MR, but longer than the index's k = 2.
            Query::rlc(0, 5, vec![Label(0), Label(1), Label(2)]).unwrap(),
            Query::rlc(1, 4, vec![Label(1)]).unwrap(),
        ];
        let answers = BatchPlan::new(&queries).execute(&engine);
        assert!(answers[0].is_ok());
        assert_eq!(
            answers[1],
            Err(QueryError::BlockTooLong {
                block: 0,
                len: 3,
                k: 2
            })
        );
        assert!(answers[2].is_ok());
    }

    #[test]
    fn single_constraint_batch_still_prepares_once_and_orders_answers() {
        // A batch dominated by one constraint is split into chunks inside
        // the group (so multi-core hosts keep every worker busy), but the
        // chunking must not change the one-prepare contract or the
        // submission-order scatter.
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries: Vec<Query> = (0..60u32)
            .map(|i| Query::rlc((i * 5) % 6, (i * 7 + 1) % 6, vec![Label(1)]).unwrap())
            .collect();
        let counting = PrepareCounting::new(&engine);
        let plan = BatchPlan::new(&queries);
        assert_eq!(plan.group_count(), 1);
        let planned = plan.execute(&counting);
        assert_eq!(counting.prepare_count(), 1);
        let one_shot: Vec<_> = queries.iter().map(|q| engine.evaluate(q)).collect();
        assert_eq!(planned, one_shot);
    }

    #[test]
    fn cached_execution_prepares_once_per_process_not_per_batch() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let counting = PrepareCounting::new(&engine);
        let cache = crate::cache::PlanCache::new();
        let queries = mixed_batch();
        let plan = BatchPlan::new(&queries);
        let uncached = plan.execute(&engine);
        for _ in 0..3 {
            assert_eq!(plan.execute_cached(&counting, &cache), uncached);
        }
        // Without the cache this would be 3 × group_count.
        assert_eq!(counting.prepare_count(), plan.group_count());
        assert_eq!(cache.stats().misses, plan.group_count() as u64);
        assert_eq!(cache.stats().hits, 2 * plan.group_count() as u64);
    }

    #[test]
    fn empty_batch_executes_to_nothing() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries: Vec<Query> = Vec::new();
        let plan = BatchPlan::new(&queries);
        assert_eq!(plan.group_count(), 0);
        assert!(plan.execute(&engine).is_empty());
    }
}
