//! The evaluator abstraction every RLC-query backend plugs into.
//!
//! Historically each consumer of the workspace dispatched against four
//! incompatible evaluator APIs: [`RlcIndex::query`], the `bfs_query` /
//! `bibfs_query` / `dfs_query` free functions of `rlc-baselines`, the
//! `EtcIndex`, and a `GraphEngine` trait private to `rlc-engine-sim`. This
//! module unifies them: everything that can answer an RLC query implements
//! [`ReachabilityEngine`], and batch evaluation fans out across CPU cores
//! with rayon through the provided [`ReachabilityEngine::evaluate_batch`]
//! default.
//!
//! Implementations live next to the evaluators they wrap:
//!
//! * [`IndexEngine`] and [`HybridEngine`] (this module) — the RLC index,
//!   with hybrid index + traversal evaluation of concatenated constraints;
//! * `BfsEngine`, `BiBfsEngine`, `DfsEngine`, `EtcEngine` in
//!   `rlc-baselines` — the online traversals and the extended transitive
//!   closure;
//! * the three simulated mainstream engines in `rlc-engine-sim`.

use crate::build::BuildConfig;
use crate::hybrid::{evaluate_hybrid, ConcatQuery};
use crate::index::RlcIndex;
use crate::query::RlcQuery;
use rayon::prelude::*;
use rlc_graph::LabeledGraph;

/// An evaluator able to answer recursive label-concatenated reachability
/// queries: plain RLC queries `(s, t, L+)` and extended concatenations
/// `(s, t, B1+ ∘ … ∘ Bm+)`.
///
/// The `Sync` supertrait is what makes the batch path work: a batch borrows
/// the engine from every worker thread simultaneously.
pub trait ReachabilityEngine: Sync {
    /// Human-readable engine name, used in experiment reports.
    fn name(&self) -> &str;

    /// Evaluates one RLC query `(s, t, L+)`.
    fn evaluate(&self, query: &RlcQuery) -> bool;

    /// Evaluates one extended query whose constraint is a concatenation of
    /// Kleene-plus blocks.
    ///
    /// # Panics
    ///
    /// Index-backed engines panic when the query is structurally invalid for
    /// their configuration (e.g. a block longer than the index's recursive
    /// `k`); purely online engines accept any well-formed query.
    fn evaluate_concat(&self, query: &ConcatQuery) -> bool;

    /// Evaluates a batch of RLC queries, fanning out across CPU cores with
    /// rayon. Answers are returned in query order.
    ///
    /// The default implementation parallelizes [`Self::evaluate`]; engines
    /// with per-thread scratch state (the online traversals) reuse their
    /// buffers within each worker, so steady-state batch evaluation performs
    /// no per-query allocation.
    fn evaluate_batch(&self, queries: &[RlcQuery]) -> Vec<bool> {
        queries
            .par_iter()
            .map(|query| self.evaluate(query))
            .collect()
    }

    /// Evaluates a batch of extended queries in parallel, in query order.
    fn evaluate_concat_batch(&self, queries: &[ConcatQuery]) -> Vec<bool> {
        queries
            .par_iter()
            .map(|query| self.evaluate_concat(query))
            .collect()
    }
}

/// Number of worker threads batch evaluation fans out to (rayon's thread
/// count: `RAYON_NUM_THREADS` when set, available CPUs otherwise).
pub fn batch_threads() -> usize {
    rayon::current_num_threads()
}

/// Number of worker threads a parallel index build under `config` fans out
/// to: the explicit [`BuildConfig::num_threads`] when set, otherwise the
/// rayon thread count (`RAYON_NUM_THREADS` when set, available CPUs
/// otherwise). Always at least 1; a sequential build ignores it.
pub fn build_threads(config: &BuildConfig) -> usize {
    config
        .num_threads
        .unwrap_or_else(rayon::current_num_threads)
        .max(1)
}

/// The RLC index as a [`ReachabilityEngine`]: plain queries are answered by
/// the index alone (Algorithm 1), concatenated constraints by the hybrid
/// index + traversal strategy of §VI-C.
pub struct IndexEngine<'g> {
    graph: &'g LabeledGraph,
    index: &'g RlcIndex,
}

impl<'g> IndexEngine<'g> {
    /// Wraps a graph and its index.
    pub fn new(graph: &'g LabeledGraph, index: &'g RlcIndex) -> Self {
        IndexEngine { graph, index }
    }

    /// The wrapped index.
    pub fn index(&self) -> &RlcIndex {
        self.index
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &LabeledGraph {
        self.graph
    }
}

impl ReachabilityEngine for IndexEngine<'_> {
    fn name(&self) -> &str {
        "RLC"
    }

    fn evaluate(&self, query: &RlcQuery) -> bool {
        self.index.query(query)
    }

    fn evaluate_concat(&self, query: &ConcatQuery) -> bool {
        evaluate_hybrid(self.graph, self.index, query)
            .unwrap_or_else(|error| panic!("invalid concatenation query: {error}"))
    }
}

/// Hybrid evaluation as its own engine: *every* query — including plain RLC
/// queries — is routed through the combined index + online-traversal
/// evaluator of §VI-C. Useful for differential testing the hybrid path
/// against the pure index path on the query class where both apply.
pub struct HybridEngine<'g> {
    graph: &'g LabeledGraph,
    index: &'g RlcIndex,
}

impl<'g> HybridEngine<'g> {
    /// Wraps a graph and its index.
    pub fn new(graph: &'g LabeledGraph, index: &'g RlcIndex) -> Self {
        HybridEngine { graph, index }
    }
}

impl ReachabilityEngine for HybridEngine<'_> {
    fn name(&self) -> &str {
        "RLC hybrid"
    }

    fn evaluate(&self, query: &RlcQuery) -> bool {
        let concat = ConcatQuery::new(query.source, query.target, vec![query.constraint.clone()]);
        self.evaluate_concat(&concat)
    }

    fn evaluate_concat(&self, query: &ConcatQuery) -> bool {
        evaluate_hybrid(self.graph, self.index, query)
            .unwrap_or_else(|error| panic!("invalid concatenation query: {error}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use rlc_graph::examples::fig2_graph;
    use rlc_graph::Label;

    #[test]
    fn index_engine_answers_like_the_index() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        assert_eq!(engine.name(), "RLC");
        for source in graph.vertices() {
            for target in graph.vertices() {
                for constraint in [vec![Label(0)], vec![Label(0), Label(1)]] {
                    let q = RlcQuery::new(source, target, constraint).unwrap();
                    assert_eq!(engine.evaluate(&q), index.query(&q));
                }
            }
        }
    }

    #[test]
    fn batch_matches_single_evaluation() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries: Vec<RlcQuery> = graph
            .vertices()
            .flat_map(|s| {
                graph
                    .vertices()
                    .map(move |t| RlcQuery::new(s, t, vec![Label(0), Label(1)]).unwrap())
            })
            .collect();
        let batch = engine.evaluate_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (query, answer) in queries.iter().zip(&batch) {
            assert_eq!(*answer, engine.evaluate(query));
        }
    }

    #[test]
    fn hybrid_engine_agrees_with_index_engine_on_rlc_queries() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let index_engine = IndexEngine::new(&graph, &index);
        let hybrid = HybridEngine::new(&graph, &index);
        assert_eq!(hybrid.name(), "RLC hybrid");
        for source in graph.vertices() {
            for target in graph.vertices() {
                let q = RlcQuery::new(source, target, vec![Label(1)]).unwrap();
                assert_eq!(hybrid.evaluate(&q), index_engine.evaluate(&q));
            }
        }
    }

    #[test]
    fn concat_batch_matches_single_evaluation() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries: Vec<ConcatQuery> = graph
            .vertices()
            .flat_map(|s| {
                graph
                    .vertices()
                    .map(move |t| ConcatQuery::new(s, t, vec![vec![Label(0)], vec![Label(1)]]))
            })
            .collect();
        let batch = engine.evaluate_concat_batch(&queries);
        for (query, answer) in queries.iter().zip(&batch) {
            assert_eq!(*answer, engine.evaluate_concat(query));
        }
    }

    #[test]
    #[should_panic(expected = "invalid concatenation query")]
    fn invalid_concat_query_panics() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let bad = ConcatQuery::new(0, 1, vec![]);
        engine.evaluate_concat(&bad);
    }

    #[test]
    fn engines_are_object_safe() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engines: Vec<Box<dyn ReachabilityEngine + '_>> = vec![
            Box::new(IndexEngine::new(&graph, &index)),
            Box::new(HybridEngine::new(&graph, &index)),
        ];
        let q = RlcQuery::new(0, 1, vec![Label(0)]).unwrap();
        for engine in &engines {
            let single = engine.evaluate(&q);
            let batch = engine.evaluate_batch(std::slice::from_ref(&q));
            assert_eq!(batch, vec![single]);
        }
    }
}
