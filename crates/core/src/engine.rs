//! The evaluator abstraction every RLC-query backend plugs into.
//!
//! Historically each consumer of the workspace dispatched against four
//! incompatible evaluator APIs: [`RlcIndex::query`], the `bfs_query` /
//! `bibfs_query` / `dfs_query` free functions of `rlc-baselines`, the
//! `EtcIndex`, and a `GraphEngine` trait private to `rlc-engine-sim`. This
//! module unifies them behind [`ReachabilityEngine`], now organized around a
//! **prepare/execute split**:
//!
//! * [`ReachabilityEngine::prepare`] compiles the engine-specific artifact
//!   for a [`Constraint`] once — an NFA for the traversal engines, the
//!   validated block structure with a resolved catalog id for the index-
//!   backed engines — and returns it as a [`Prepared`];
//! * [`ReachabilityEngine::evaluate_prepared`] answers one `(source, target)`
//!   pair under a prepared constraint, reusing the artifact;
//! * [`ReachabilityEngine::evaluate`] is the one-shot convenience
//!   (prepare + execute), and [`ReachabilityEngine::evaluate_batch`] the
//!   rayon-parallel naive batch path (one prepare per query).
//!
//! Every evaluation path is fallible: invalid constraints surface as
//! [`QueryError`] values instead of panics. Batches that share constraints
//! should go through [`crate::plan::BatchPlan`], which groups by constraint
//! and prepares each distinct constraint exactly once.
//!
//! Implementations live next to the evaluators they wrap:
//!
//! * [`IndexEngine`] and [`HybridEngine`] (this module) — the RLC index,
//!   with hybrid index + traversal evaluation of concatenated constraints;
//! * `BfsEngine`, `BiBfsEngine`, `DfsEngine`, `EtcEngine` in
//!   `rlc-baselines` — the online traversals and the extended transitive
//!   closure;
//! * the three simulated mainstream engines in `rlc-engine-sim`.

use crate::build::BuildConfig;
use crate::catalog::MrId;
use crate::hybrid::{evaluate_blocks_grouped_with, evaluate_hybrid_prepared};
use crate::index::RlcIndex;
use crate::query::{Constraint, Query, QueryError};
use rayon::prelude::*;
use rlc_graph::{LabeledGraph, VertexId};
use rlc_obs::TraceNode;
use std::any::Any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// A compiled constraint, produced by [`ReachabilityEngine::prepare`] and
/// consumed by [`ReachabilityEngine::evaluate_prepared`].
///
/// The artifact is engine-specific (an NFA, a resolved catalog id, …) and
/// type-erased so the trait stays object safe across crates. A `Prepared` is
/// portable across engines without ever causing a panic or a wrong answer:
/// engines of a different kind detect the foreign artifact type, and the
/// index-backed engines additionally tag their artifacts with the identity
/// of the index they resolved against — on any mismatch the receiving
/// engine transparently re-prepares (re-running its own validation), at the
/// cost of one redundant compilation.
pub struct Prepared {
    constraint: Constraint,
    engine: String,
    artifact: Box<dyn Any + Send + Sync>,
    approx_bytes: usize,
}

/// Heap bytes held by a constraint's block lists (shared by the default
/// [`Prepared::approx_bytes`] pricing and [`crate::cache::PlanCache`]'s
/// key pricing).
pub(crate) fn constraint_heap_bytes(constraint: &Constraint) -> usize {
    constraint
        .blocks()
        .iter()
        .map(|block| {
            block.len() * std::mem::size_of::<rlc_graph::Label>()
                + std::mem::size_of::<Vec<rlc_graph::Label>>()
        })
        .sum()
}

/// Default allowance for a type-erased artifact whose producer did not call
/// [`Prepared::with_approx_bytes`]: the resolved-id artifacts of the
/// index-backed engines are this small by construction.
const DEFAULT_ARTIFACT_BYTES: usize = 64;

impl Prepared {
    /// Wraps an engine-specific artifact together with the constraint it was
    /// compiled from.
    ///
    /// The preparation's [`Prepared::approx_bytes`] defaults to the
    /// constraint's own heap footprint plus a small fixed artifact
    /// allowance; engines with large artifacts (compiled automata, per-shard
    /// tables) should override it via [`Prepared::with_approx_bytes`] so
    /// cache byte budgets stay honest.
    pub fn new(constraint: Constraint, engine: &str, artifact: impl Any + Send + Sync) -> Self {
        let approx_bytes = std::mem::size_of::<Prepared>()
            + constraint_heap_bytes(&constraint)
            + DEFAULT_ARTIFACT_BYTES;
        Prepared {
            constraint,
            engine: engine.to_owned(),
            artifact: Box::new(artifact),
            approx_bytes,
        }
    }

    /// Overrides the approximate resident footprint with an engine-supplied
    /// figure (NFA state and transition counts, per-shard table sizes, …).
    /// The constraint's own heap bytes and the box header are added on top,
    /// so callers only price the artifact itself.
    pub fn with_approx_bytes(mut self, artifact_bytes: usize) -> Self {
        self.approx_bytes = std::mem::size_of::<Prepared>()
            + constraint_heap_bytes(&self.constraint)
            + artifact_bytes;
        self
    }

    /// Approximate resident heap footprint of this preparation in bytes:
    /// the constraint copy it embeds plus the (engine-priced or defaulted)
    /// artifact. [`crate::cache::PlanCache`] charges this figure against its
    /// byte budget instead of a blind fixed overhead.
    pub fn approx_bytes(&self) -> usize {
        self.approx_bytes
    }

    /// The constraint this preparation was compiled from.
    pub fn constraint(&self) -> &Constraint {
        &self.constraint
    }

    /// Name of the engine that produced the preparation.
    pub fn engine(&self) -> &str {
        &self.engine
    }

    /// Downcasts the artifact, `None` when the preparation came from an
    /// engine with a different artifact type.
    pub fn artifact<T: Any>(&self) -> Option<&T> {
        self.artifact.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for Prepared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Prepared")
            .field("engine", &self.engine)
            .field("constraint", &self.constraint)
            .finish_non_exhaustive()
    }
}

/// An evaluator able to answer recursive label-concatenated reachability
/// queries under the unified [`Constraint`] model: plain RLC constraints
/// `(s, t, L+)` and extended concatenations `(s, t, B1+ ∘ … ∘ Bm+)`.
///
/// The `Sync` supertrait is what makes the batch path work: a batch borrows
/// the engine from every worker thread simultaneously.
pub trait ReachabilityEngine: Sync {
    /// Human-readable engine name, used in experiment reports.
    fn name(&self) -> &str;

    /// Compiles the engine-specific evaluation artifact for `constraint`.
    ///
    /// This is where per-constraint work that a naive evaluator pays on
    /// every query happens exactly once: NFA construction for the traversal
    /// engines, block validation against the recursive `k` and catalog
    /// resolution for the index-backed engines. The only error a
    /// structurally valid constraint can produce is
    /// [`QueryError::BlockTooLong`] against an engine with a bounded `k`.
    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError>;

    /// Evaluates one `(source, target)` pair under a prepared constraint.
    ///
    /// Implementations accept preparations from other engine kinds by
    /// re-preparing the embedded constraint, so a `Prepared` can never make
    /// an engine panic — at worst it costs one redundant compilation. Vertex
    /// ids are validated against the evaluated graph here (queries are
    /// constructed without a graph), so an unknown vertex surfaces as
    /// [`QueryError::VertexOutOfRange`] rather than a panic.
    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError>;

    /// One-shot evaluation: prepare, then execute once.
    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        let prepared = self.prepare(query.constraint())?;
        self.evaluate_prepared(query.source, query.target, &prepared)
    }

    /// Evaluates many `(source, target)` pairs under one prepared
    /// constraint, in pair order.
    ///
    /// The default delegates to [`Self::evaluate_prepared`] per pair; the
    /// traversal engines override it with a multi-target product search so
    /// one traversal answers every pair sharing a source (the grouped path
    /// [`crate::plan::BatchPlan`] fans out to).
    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        pairs
            .iter()
            .map(|&(s, t)| self.evaluate_prepared(s, t, prepared))
            .collect()
    }

    /// Evaluates one `(source, target)` pair under a prepared constraint
    /// *and explains it*: the returned [`TraceNode`] records the routing
    /// decisions the evaluation made (engine kind, and for engines that
    /// override this, shard route, stitch counters, per-phase timings).
    ///
    /// The contract is that explaining is observation only: the answer (and
    /// any error) must be identical to [`Self::evaluate_prepared`] on the
    /// same inputs. The default delegates to `evaluate_prepared` and
    /// reports the engine name, so every engine explains correctly even if
    /// shallowly.
    fn explain_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> (Result<bool, QueryError>, TraceNode) {
        let started = std::time::Instant::now();
        let answer = self.evaluate_prepared(source, target, prepared);
        let mut node = TraceNode::new("query");
        node.attr("engine", self.name())
            .attr("source", source)
            .attr("target", target)
            .attr("evaluate_ns", started.elapsed().as_nanos());
        match &answer {
            Ok(reachable) => node.attr("answer", reachable),
            Err(error) => node.attr("error", error),
        };
        (answer, node)
    }

    /// Evaluates a batch of queries, fanning out across CPU cores with
    /// rayon. Answers are returned in query order.
    ///
    /// This is the *naive* batch path: every query is prepared
    /// independently. Use [`crate::plan::BatchPlan`] to share one
    /// preparation (and, for traversal engines, one product search per
    /// source) across queries with equal constraints.
    fn evaluate_batch(&self, queries: &[Query]) -> Vec<Result<bool, QueryError>> {
        queries
            .par_iter()
            .map(|query| self.evaluate(query))
            .collect()
    }

    /// Identity of this engine instance for cross-batch plan caching
    /// ([`crate::cache::PlanCache`]).
    ///
    /// Two engines reporting equal identities must produce interchangeable
    /// [`Prepared`] artifacts for equal constraints. The default —
    /// [`PlanIdentity::Kind`] over the engine name — is correct for every
    /// engine whose artifact depends only on the constraint (the NFA-driven
    /// traversal and simulated engines). Index-backed engines override it
    /// with [`PlanIdentity::Index`] over their [`ArtifactTag`], because
    /// their artifacts embed a catalog-resolved [`MrId`] that is only
    /// meaningful against one specific index structure (and one generation
    /// of it).
    fn plan_identity(&self) -> PlanIdentity {
        PlanIdentity::Kind(self.name().to_owned())
    }
}

/// Identity of the preparation source of a cached plan — the cache key half
/// that tells interchangeable [`Prepared`] artifacts apart. See
/// [`ReachabilityEngine::plan_identity`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PlanIdentity {
    /// Artifacts depend only on the constraint and the engine kind; any
    /// instance of the kind can reuse them (traversal/simulated engines).
    Kind(String),
    /// Artifacts were resolved against one specific index structure and are
    /// invalid for any other, including a rebuilt one at the same address
    /// (the [`ArtifactTag`] embeds the index generation).
    Index(ArtifactTag),
}

/// Number of worker threads batch evaluation fans out to (rayon's thread
/// count: `RAYON_NUM_THREADS` when set, available CPUs otherwise).
pub fn batch_threads() -> usize {
    rayon::current_num_threads()
}

/// Number of worker threads a parallel index build under `config` fans out
/// to: the explicit [`BuildConfig::num_threads`] when set, otherwise the
/// rayon thread count (`RAYON_NUM_THREADS` when set, available CPUs
/// otherwise). Always at least 1; a sequential build ignores it.
pub fn build_threads(config: &BuildConfig) -> usize {
    config
        .num_threads
        .unwrap_or_else(rayon::current_num_threads)
        .max(1)
}

/// Counts [`ReachabilityEngine::prepare`] calls on a wrapped engine.
///
/// Used by tests and the `batch_planner` bench to assert the one-prepare-
/// per-distinct-constraint contract of [`crate::plan::BatchPlan`]. The
/// counter is atomic because batch execution prepares from rayon workers.
pub struct PrepareCounting<'e> {
    inner: &'e dyn ReachabilityEngine,
    prepares: AtomicUsize,
}

impl<'e> PrepareCounting<'e> {
    /// Wraps an engine.
    pub fn new(inner: &'e dyn ReachabilityEngine) -> Self {
        PrepareCounting {
            inner,
            prepares: AtomicUsize::new(0),
        }
    }

    /// Number of `prepare` calls observed so far.
    pub fn prepare_count(&self) -> usize {
        // rlc-analyze: allow(atomic-pairing) — observational measurement counter; nothing synchronizes through it
        self.prepares.load(Ordering::Relaxed)
    }

    /// Resets the counter (between measurement phases).
    pub fn reset(&self) {
        // rlc-analyze: allow(atomic-pairing) — measurement-phase reset of an observational counter
        self.prepares.store(0, Ordering::Relaxed);
    }
}

impl ReachabilityEngine for PrepareCounting<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        // rlc-analyze: allow(atomic-pairing) — observational measurement counter; nothing synchronizes through it
        self.prepares.fetch_add(1, Ordering::Relaxed);
        self.inner.prepare(constraint)
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        self.inner.evaluate_prepared(source, target, prepared)
    }

    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        self.inner.evaluate_prepared_group(pairs, prepared)
    }

    fn plan_identity(&self) -> PlanIdentity {
        // Forwarded so a cache keyed through the counting wrapper still
        // validates against the wrapped engine's real identity.
        self.inner.plan_identity()
    }
}

/// Checks a query's vertex ids against the evaluated graph's vertex count.
///
/// Every engine implementation calls this at the top of `evaluate_prepared`
/// so an out-of-range id surfaces as [`QueryError::VertexOutOfRange`]
/// instead of an index-out-of-bounds panic — queries are constructed
/// without a graph, so this is the first point the ids can be validated.
pub fn check_vertex_range(
    source: VertexId,
    target: VertexId,
    vertices: usize,
) -> Result<(), QueryError> {
    for vertex in [source, target] {
        if vertex as usize >= vertices {
            return Err(QueryError::VertexOutOfRange { vertex, vertices });
        }
    }
    Ok(())
}

/// Process-wide monotonic generation counter backing [`Generation::fresh`].
/// Starts at 1 so 0 can never be a valid stamp.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// A generation stamp minted when an index structure is constructed.
///
/// Every [`RlcIndex`] and `EtcIndex` gets a fresh stamp from a process-wide
/// monotonic counter at construction, and [`ArtifactTag`] folds the stamp
/// into the index identity. This closes the ABA blind spot of the previous
/// address-based tag: if an index is dropped and a new one with identical
/// `k` and catalog size is allocated at the same address, the generations
/// still differ, so a stale artifact's bare [`MrId`] is re-prepared instead
/// of silently naming the wrong minimum repeat.
///
/// Generations are a process-local concept and are **never serialized**:
/// the `RLC2`/`ETC1` wire formats do not carry them, and every
/// deserialization path (`from_bytes`, serde `Deserialize`) mints a fresh
/// stamp. A `Clone`d index copies the stamp — clones share content, so
/// artifacts resolved against one are valid against the other.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Generation(u64);

impl Generation {
    /// Mints the next stamp from the process-wide counter.
    pub fn fresh() -> Self {
        // rlc-analyze: allow(atomic-pairing) — monotonic stamp mint; uniqueness only, no data published
        Generation(NEXT_GENERATION.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw counter value (diagnostics only; stamps are compared, never
    /// interpreted).
    pub fn value(self) -> u64 {
        self.0
    }

    /// Folds the stamps of an aggregate structure's components into one
    /// stamp, for identities that must change whenever **any** component is
    /// rebuilt (the sharded engine folds every shard's generation this way).
    ///
    /// The fold hashes the component count and every value, so replacing one
    /// component — which always mints a strictly fresh stamp — changes the
    /// combined stamp. Combined stamps live in the same comparison-only
    /// world as minted ones: they are never serialized and never
    /// interpreted, only tested for equality inside an
    /// [`ArtifactTag`]/[`PlanIdentity`].
    pub fn combined(stamps: impl IntoIterator<Item = Generation>) -> Generation {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        let mut count = 0u64;
        for stamp in stamps {
            stamp.0.hash(&mut hasher);
            count += 1;
        }
        count.hash(&mut hasher);
        Generation(hasher.finish())
    }
}

impl Default for Generation {
    /// Minting on `Default` is what makes `#[serde(skip)]` fields get a
    /// fresh generation when an index is deserialized.
    fn default() -> Self {
        Generation::fresh()
    }
}

/// Identity of the index structure an artifact was resolved against.
///
/// A resolved [`MrId`] is a bare offset into one specific catalog, so a
/// `Prepared` from an `IndexEngine` over index A must never be evaluated
/// against index B — the same id would name a different minimum repeat, and
/// B's recursive `k` was never checked. Artifact-type downcasting cannot
/// tell two same-kind engines apart, so artifacts carry this tag and
/// evaluation re-prepares on any mismatch. The tag combines the index
/// structure's address, its `k` and catalog size, and — closing the ABA
/// blind spot of address reuse after a drop — the [`Generation`] stamped
/// into the index at construction. `EtcIndex`'s engine adapter in
/// `rlc-baselines` uses the same tag via [`ArtifactTag::from_raw`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactTag {
    ptr: usize,
    k: usize,
    catalog_len: usize,
    generation: Generation,
}

impl ArtifactTag {
    /// Tags an artifact with the identity of an arbitrary index structure:
    /// its address, recursive `k`, catalog size, and construction
    /// generation.
    pub fn from_raw(ptr: usize, k: usize, catalog_len: usize, generation: Generation) -> Self {
        ArtifactTag {
            ptr,
            k,
            catalog_len,
            generation,
        }
    }

    fn of(index: &RlcIndex) -> Self {
        ArtifactTag::from_raw(
            index as *const RlcIndex as usize,
            index.k(),
            index.catalog().len(),
            index.generation(),
        )
    }
}

/// Prepared artifact of the index-backed engines: the blocks validated
/// against the recursive `k`, with the final block's minimum repeat resolved
/// against the index catalog (`None` when absent — the constraint is then
/// unsatisfiable and evaluation is `false` without touching the graph).
struct PreparedHybrid {
    last_mr: Option<MrId>,
    index: ArtifactTag,
}

/// Shared prepare implementation of [`IndexEngine`] and [`HybridEngine`].
fn prepare_hybrid(
    index: &RlcIndex,
    engine_name: &str,
    constraint: &Constraint,
) -> Result<Prepared, QueryError> {
    constraint.check_block_len(index.k())?;
    let last_mr = index.catalog().resolve(constraint.last_block());
    Ok(Prepared::new(
        constraint.clone(),
        engine_name,
        PreparedHybrid {
            last_mr,
            index: ArtifactTag::of(index),
        },
    ))
}

/// Shared one-shot implementation of [`IndexEngine`] and [`HybridEngine`]:
/// the same validation order as prepare-then-execute (`k` check, then vertex
/// range), but without constructing a [`Prepared`] — one-shot and naive
/// batch evaluation stay free of per-query boxing and cloning.
fn evaluate_hybrid_one_shot(
    graph: &LabeledGraph,
    index: &RlcIndex,
    query: &Query,
) -> Result<bool, QueryError> {
    let constraint = query.constraint();
    constraint.check_block_len(index.k())?;
    check_vertex_range(query.source, query.target, graph.vertex_count())?;
    let last_mr = index.catalog().resolve(constraint.last_block());
    Ok(evaluate_hybrid_prepared(
        graph,
        index,
        query.source,
        query.target,
        constraint.blocks(),
        last_mr,
    ))
}

/// Resolves a preparation against this engine's index: the artifact's own
/// [`MrId`] when the tag matches, otherwise a fresh re-prepare. Re-preparing
/// covers a wrong artifact type as well as a same-kind engine over a
/// different index — or a different *generation* of an index at the same
/// address — and re-runs the `k` validation, so a constraint invalid here
/// still errors instead of silently evaluating.
fn hybrid_last_mr(
    engine: &dyn ReachabilityEngine,
    index: &RlcIndex,
    prepared: &Prepared,
) -> Result<Option<MrId>, QueryError> {
    match prepared.artifact::<PreparedHybrid>() {
        Some(artifact) if artifact.index == ArtifactTag::of(index) => Ok(artifact.last_mr),
        _ => {
            let own = engine.prepare(prepared.constraint())?;
            Ok(own
                .artifact::<PreparedHybrid>()
                // rlc-analyze: allow(panic-free-library) — prepare() of this engine always attaches a PreparedHybrid artifact; a None here is a broken engine contract, not an input error
                .expect("prepare_hybrid produces a PreparedHybrid artifact")
                .last_mr)
        }
    }
}

/// Shared execute implementation of [`IndexEngine`] and [`HybridEngine`].
fn evaluate_hybrid_engine(
    engine: &dyn ReachabilityEngine,
    graph: &LabeledGraph,
    index: &RlcIndex,
    source: VertexId,
    target: VertexId,
    prepared: &Prepared,
) -> Result<bool, QueryError> {
    check_vertex_range(source, target, graph.vertex_count())?;
    let last_mr = hybrid_last_mr(engine, index, prepared)?;
    Ok(evaluate_hybrid_prepared(
        graph,
        index,
        source,
        target,
        prepared.constraint().blocks(),
        last_mr,
    ))
}

/// Grouped execute implementation of [`IndexEngine`] and [`HybridEngine`]:
/// the shared grouped skeleton ([`evaluate_blocks_grouped_with`]) with the
/// final block answered by the index's merge-join lookup — the prefix-block
/// repetition closure is computed once per distinct source, single-block
/// constraints stay per-pair lookups.
fn evaluate_hybrid_engine_group(
    engine: &dyn ReachabilityEngine,
    graph: &LabeledGraph,
    index: &RlcIndex,
    pairs: &[(VertexId, VertexId)],
    prepared: &Prepared,
) -> Vec<Result<bool, QueryError>> {
    let resolved = hybrid_last_mr(engine, index, prepared)
        .map(|last_mr| last_mr.map(|mr| move |v, t| index.query_interned(v, t, mr)));
    evaluate_blocks_grouped_with(graph, pairs, prepared.constraint().blocks(), resolved)
}

/// The RLC index as a [`ReachabilityEngine`]: single-block constraints are
/// answered by the index alone (Algorithm 1), concatenated constraints by
/// the hybrid index + traversal strategy of §VI-C.
pub struct IndexEngine<'g> {
    graph: &'g LabeledGraph,
    index: &'g RlcIndex,
}

impl<'g> IndexEngine<'g> {
    /// Wraps a graph and its index.
    pub fn new(graph: &'g LabeledGraph, index: &'g RlcIndex) -> Self {
        IndexEngine { graph, index }
    }

    /// The wrapped index.
    pub fn index(&self) -> &RlcIndex {
        self.index
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &LabeledGraph {
        self.graph
    }
}

impl ReachabilityEngine for IndexEngine<'_> {
    fn name(&self) -> &str {
        "RLC"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        prepare_hybrid(self.index, self.name(), constraint)
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        evaluate_hybrid_engine(self, self.graph, self.index, source, target, prepared)
    }

    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        evaluate_hybrid_engine_group(self, self.graph, self.index, pairs, prepared)
    }

    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        evaluate_hybrid_one_shot(self.graph, self.index, query)
    }

    fn plan_identity(&self) -> PlanIdentity {
        PlanIdentity::Index(ArtifactTag::of(self.index))
    }
}

/// Hybrid evaluation as its own engine: *every* query — including plain RLC
/// queries — is routed through the combined index + online-traversal
/// evaluator of §VI-C. Useful for differential testing the hybrid path
/// against the pure index path on the query class where both apply.
pub struct HybridEngine<'g> {
    graph: &'g LabeledGraph,
    index: &'g RlcIndex,
}

impl<'g> HybridEngine<'g> {
    /// Wraps a graph and its index.
    pub fn new(graph: &'g LabeledGraph, index: &'g RlcIndex) -> Self {
        HybridEngine { graph, index }
    }
}

impl ReachabilityEngine for HybridEngine<'_> {
    fn name(&self) -> &str {
        "RLC hybrid"
    }

    fn prepare(&self, constraint: &Constraint) -> Result<Prepared, QueryError> {
        prepare_hybrid(self.index, self.name(), constraint)
    }

    fn evaluate_prepared(
        &self,
        source: VertexId,
        target: VertexId,
        prepared: &Prepared,
    ) -> Result<bool, QueryError> {
        evaluate_hybrid_engine(self, self.graph, self.index, source, target, prepared)
    }

    fn evaluate_prepared_group(
        &self,
        pairs: &[(VertexId, VertexId)],
        prepared: &Prepared,
    ) -> Vec<Result<bool, QueryError>> {
        evaluate_hybrid_engine_group(self, self.graph, self.index, pairs, prepared)
    }

    fn evaluate(&self, query: &Query) -> Result<bool, QueryError> {
        evaluate_hybrid_one_shot(self.graph, self.index, query)
    }

    fn plan_identity(&self) -> PlanIdentity {
        PlanIdentity::Index(ArtifactTag::of(self.index))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::query::RlcQuery;
    use rlc_graph::examples::fig2_graph;
    use rlc_graph::Label;

    #[test]
    fn index_engine_answers_like_the_index() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        assert_eq!(engine.name(), "RLC");
        for source in graph.vertices() {
            for target in graph.vertices() {
                for constraint in [vec![Label(0)], vec![Label(0), Label(1)]] {
                    let rlc = RlcQuery::new(source, target, constraint).unwrap();
                    let q = Query::from(&rlc);
                    assert_eq!(engine.evaluate(&q), Ok(index.query(&rlc)));
                }
            }
        }
    }

    #[test]
    fn prepared_evaluation_matches_one_shot() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let constraint = Constraint::single(vec![Label(0), Label(1)]).unwrap();
        let prepared = engine.prepare(&constraint).unwrap();
        assert_eq!(prepared.engine(), "RLC");
        assert_eq!(prepared.constraint(), &constraint);
        for source in graph.vertices() {
            for target in graph.vertices() {
                let q = Query::new(source, target, constraint.clone());
                assert_eq!(
                    engine.evaluate_prepared(source, target, &prepared),
                    engine.evaluate(&q)
                );
            }
        }
    }

    #[test]
    fn batch_matches_single_evaluation() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries: Vec<Query> = graph
            .vertices()
            .flat_map(|s| {
                graph
                    .vertices()
                    .map(move |t| Query::rlc(s, t, vec![Label(0), Label(1)]).unwrap())
            })
            .collect();
        let batch = engine.evaluate_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (query, answer) in queries.iter().zip(&batch) {
            assert_eq!(*answer, engine.evaluate(query));
        }
    }

    #[test]
    fn hybrid_engine_agrees_with_index_engine_on_rlc_queries() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let index_engine = IndexEngine::new(&graph, &index);
        let hybrid = HybridEngine::new(&graph, &index);
        assert_eq!(hybrid.name(), "RLC hybrid");
        for source in graph.vertices() {
            for target in graph.vertices() {
                let q = Query::rlc(source, target, vec![Label(1)]).unwrap();
                assert_eq!(hybrid.evaluate(&q), index_engine.evaluate(&q));
            }
        }
    }

    #[test]
    fn concat_batch_matches_single_evaluation() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let queries: Vec<Query> = graph
            .vertices()
            .flat_map(|s| {
                graph.vertices().map(move |t| {
                    Query::concat(s, t, vec![vec![Label(0)], vec![Label(1)]]).unwrap()
                })
            })
            .collect();
        let batch = engine.evaluate_batch(&queries);
        for (query, answer) in queries.iter().zip(&batch) {
            assert_eq!(*answer, engine.evaluate(query));
        }
    }

    #[test]
    fn invalid_queries_surface_errors_instead_of_panicking() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        // Structurally invalid constraints are unconstructible.
        assert_eq!(
            Query::concat(0, 1, vec![]).unwrap_err(),
            QueryError::EmptyConstraint
        );
        // A well-formed constraint that exceeds the index's recursive k
        // errors at prepare time (and therefore through every evaluate path).
        let too_long = Query::rlc(0, 1, vec![Label(0), Label(1), Label(2)]).unwrap();
        let expected = Err(QueryError::BlockTooLong {
            block: 0,
            len: 3,
            k: 2,
        });
        assert_eq!(engine.evaluate(&too_long), expected);
        assert_eq!(
            engine.prepare(too_long.constraint()).err(),
            expected.clone().err()
        );
        assert_eq!(
            engine.evaluate_batch(std::slice::from_ref(&too_long)),
            vec![expected]
        );
    }

    #[test]
    fn grouped_evaluation_matches_per_pair_for_the_index_engines() {
        // The grouped hybrid path shares the prefix-block repetition closure
        // across same-source pairs; its answers (and errors) must be
        // indistinguishable from the per-pair path, for single-block and
        // multi-block constraints alike.
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let n = graph.vertex_count() as u32;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        // Heavy source reuse (the case the shared closure accelerates) plus
        // unique sources and out-of-range ids (per-pair errors).
        for t in 0..n {
            pairs.push((1, t));
            pairs.push((t, (t * 5 + 2) % n));
        }
        pairs.push((n + 3, 0));
        pairs.push((0, n + 4));
        let constraints = [
            Constraint::single(vec![Label(1)]).unwrap(),
            Constraint::new(vec![vec![Label(1)], vec![Label(0)]]).unwrap(),
            Constraint::new(vec![vec![Label(0)], vec![Label(1)], vec![Label(2)]]).unwrap(),
            // A final block absent from the catalog: everything false.
            Constraint::new(vec![vec![Label(1)], vec![Label(9)]]).unwrap(),
        ];
        let index_engine = IndexEngine::new(&graph, &index);
        let hybrid = HybridEngine::new(&graph, &index);
        let engines: [&dyn ReachabilityEngine; 2] = [&index_engine, &hybrid];
        for engine in engines {
            for constraint in &constraints {
                let prepared = engine.prepare(constraint).unwrap();
                let grouped = engine.evaluate_prepared_group(&pairs, &prepared);
                assert_eq!(grouped.len(), pairs.len());
                for (&(s, t), grouped_answer) in pairs.iter().zip(&grouped) {
                    assert_eq!(
                        *grouped_answer,
                        engine.evaluate_prepared(s, t, &prepared),
                        "{} on ({s},{t}) under {constraint:?}",
                        engine.name()
                    );
                }
            }
        }
    }

    #[test]
    fn grouped_evaluation_with_a_foreign_preparation_errors_like_per_pair() {
        // A constraint too long for this engine, prepared elsewhere: the
        // grouped path must yield the same error for every pair.
        let graph = fig2_graph();
        let (index_k2, _) = build_index(&graph, &BuildConfig::new(2));
        let (index_k3, _) = build_index(&graph, &BuildConfig::new(3));
        let engine_k2 = IndexEngine::new(&graph, &index_k2);
        let engine_k3 = IndexEngine::new(&graph, &index_k3);
        let long =
            Constraint::new(vec![vec![Label(0)], vec![Label(0), Label(1), Label(2)]]).unwrap();
        let prepared_k3 = engine_k3.prepare(&long).unwrap();
        // Includes an out-of-range pair: the per-pair path range-checks
        // before surfacing the prepare error, and the grouped path must
        // report the identical error per pair.
        let n = graph.vertex_count() as u32;
        let pairs = [(0, 1), (0, 2), (3, 4), (n + 5, 0)];
        let grouped = engine_k2.evaluate_prepared_group(&pairs, &prepared_k3);
        let per_pair: Vec<_> = pairs
            .iter()
            .map(|&(s, t)| engine_k2.evaluate_prepared(s, t, &prepared_k3))
            .collect();
        assert_eq!(grouped, per_pair);
        let expected = Err(QueryError::BlockTooLong {
            block: 1,
            len: 3,
            k: 2,
        });
        assert_eq!(
            grouped,
            vec![
                expected.clone(),
                expected.clone(),
                expected,
                Err(QueryError::VertexOutOfRange {
                    vertex: n + 5,
                    vertices: graph.vertex_count(),
                }),
            ]
        );
    }

    #[test]
    fn generations_are_monotonic_and_tags_fold_them_in() {
        let graph = fig2_graph();
        let (index_a, _) = build_index(&graph, &BuildConfig::new(2));
        let (index_b, _) = build_index(&graph, &BuildConfig::new(2));
        assert_ne!(index_a.generation(), index_b.generation());
        assert!(index_a.generation().value() < index_b.generation().value());
        // Identical address + k + catalog size but different generations:
        // the tags must differ (the ABA fix).
        let aliased = ArtifactTag::from_raw(0xDEAD, 2, 7, index_a.generation());
        let rebuilt = ArtifactTag::from_raw(0xDEAD, 2, 7, index_b.generation());
        assert_ne!(aliased, rebuilt);
        assert_eq!(
            aliased,
            ArtifactTag::from_raw(0xDEAD, 2, 7, index_a.generation())
        );
    }

    #[test]
    fn aba_aliased_index_is_reprepared_not_misread() {
        // The ABA regression: an artifact prepared against index A whose
        // address is later reused by index B with identical `k` and catalog
        // size. The old address-based tag considered such an artifact valid
        // and misread its bare MrId against B's catalog; the generation
        // stamp forces a re-prepare. Allocator reuse is made deterministic
        // by forging the tag with `ArtifactTag::from_raw` on B's address.
        let mut builder = rlc_graph::GraphBuilder::new();
        builder.add_edge_named("a", "x", "b");
        builder.add_edge_named("a", "y", "b");
        let graph = builder.build();
        let x = graph.labels().resolve("x").unwrap();
        let y = graph.labels().resolve("y").unwrap();
        let a = graph.vertex_id("a").unwrap();
        let b = graph.vertex_id("b").unwrap();

        // Index A: catalog = [(y)], so the constraint y+ resolves to MrId 0.
        let order =
            crate::order::compute_order(&graph, crate::order::OrderingStrategy::InOutDegree);
        let mut index_a = RlcIndex::empty(2, order.clone());
        let mr_a = index_a.catalog.intern(&[y]);
        index_a.push_lin(b, crate::index::IndexEntry { hub: a, mr: mr_a });
        let constraint = Constraint::single(vec![y]).unwrap();
        let generation_a = index_a.generation();
        let stale_mr = {
            let engine_a = IndexEngine::new(&graph, &index_a);
            let prepared_a = engine_a.prepare(&constraint).unwrap();
            prepared_a
                .artifact::<PreparedHybrid>()
                .expect("index engines produce PreparedHybrid artifacts")
                .last_mr
        };
        assert_eq!(stale_mr, Some(mr_a));
        drop(index_a);

        // Index B: identical k and catalog size, but MrId 0 now names (x),
        // and (a, b) is connected under x+, not y+.
        let mut index_b = RlcIndex::empty(2, order);
        let mr_b = index_b.catalog.intern(&[x]);
        index_b.push_lin(b, crate::index::IndexEntry { hub: a, mr: mr_b });
        let engine_b = IndexEngine::new(&graph, &index_b);

        // Forge the exact stale artifact the old scheme could not detect:
        // A's resolution and generation, force-aliased onto B's address.
        let forged = Prepared::new(
            constraint.clone(),
            "RLC",
            PreparedHybrid {
                last_mr: stale_mr,
                index: ArtifactTag::from_raw(
                    &index_b as *const RlcIndex as usize,
                    index_b.k(),
                    index_b.catalog().len(),
                    generation_a,
                ),
            },
        );

        // Misreading the stale MrId against B's catalog would answer `true`
        // (MrId 0 in B names x+, which does connect a to b) — demonstrably
        // the wrong answer for y+, which B's catalog does not even contain.
        assert!(evaluate_hybrid_prepared(
            &graph,
            &index_b,
            a,
            b,
            constraint.blocks(),
            stale_mr
        ));
        assert_eq!(
            engine_b.evaluate(&Query::new(a, b, constraint.clone())),
            Ok(false)
        );

        // The generation mismatch forces a re-prepare: the forged artifact
        // evaluates to B's own (correct) answers, per pair and grouped.
        assert_eq!(engine_b.evaluate_prepared(a, b, &forged), Ok(false));
        assert_eq!(
            engine_b.evaluate_prepared_group(&[(a, b), (b, a)], &forged),
            vec![Ok(false), Ok(false)]
        );
    }

    #[test]
    fn plan_identities_distinguish_indexes_but_not_instances() {
        let graph = fig2_graph();
        let (index_a, _) = build_index(&graph, &BuildConfig::new(2));
        let (index_b, _) = build_index(&graph, &BuildConfig::new(2));
        // Two engine instances over the same index share an identity…
        assert_eq!(
            IndexEngine::new(&graph, &index_a).plan_identity(),
            IndexEngine::new(&graph, &index_a).plan_identity()
        );
        // …but engines over different indexes (even content-equal ones) do
        // not, and the counting wrapper forwards the inner identity.
        let engine_a = IndexEngine::new(&graph, &index_a);
        let engine_b = IndexEngine::new(&graph, &index_b);
        assert_ne!(engine_a.plan_identity(), engine_b.plan_identity());
        assert_eq!(
            PrepareCounting::new(&engine_a).plan_identity(),
            engine_a.plan_identity()
        );
    }

    #[test]
    fn foreign_preparations_are_recompiled() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let constraint = Constraint::single(vec![Label(0), Label(1)]).unwrap();
        // A preparation with an artifact this engine does not understand.
        let foreign = Prepared::new(constraint.clone(), "other", 42u32);
        for source in graph.vertices() {
            for target in graph.vertices() {
                assert_eq!(
                    engine.evaluate_prepared(source, target, &foreign),
                    engine.evaluate(&Query::new(source, target, constraint.clone()))
                );
            }
        }
    }

    #[test]
    fn preparations_from_another_index_are_recompiled_not_misread() {
        // A resolved MrId is only meaningful against the catalog that
        // produced it: handing engine B a preparation from engine A (same
        // kind, different index) must re-prepare, re-running B's k check
        // and catalog resolution.
        let graph = fig2_graph();
        let (index_k2, _) = build_index(&graph, &BuildConfig::new(2));
        let (index_k3, _) = build_index(&graph, &BuildConfig::new(3));
        let engine_k2 = IndexEngine::new(&graph, &index_k2);
        let engine_k3 = IndexEngine::new(&graph, &index_k3);

        // Valid for k = 3, too long for k = 2: the k = 2 engine must error
        // even though the artifact type matches.
        let long = Constraint::single(vec![Label(0), Label(1), Label(2)]).unwrap();
        let prepared_k3 = engine_k3.prepare(&long).unwrap();
        assert_eq!(
            engine_k2.evaluate_prepared(0, 1, &prepared_k3),
            Err(QueryError::BlockTooLong {
                block: 0,
                len: 3,
                k: 2
            })
        );

        // For a constraint both support, cross-index preparations must give
        // exactly the engine's own answers.
        let shared = Constraint::single(vec![Label(0), Label(1)]).unwrap();
        let prepared_k3 = engine_k3.prepare(&shared).unwrap();
        for source in graph.vertices() {
            for target in graph.vertices() {
                assert_eq!(
                    engine_k2.evaluate_prepared(source, target, &prepared_k3),
                    engine_k2.evaluate(&Query::new(source, target, shared.clone()))
                );
            }
        }
    }

    #[test]
    fn prepare_counting_counts_prepares() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let counting = PrepareCounting::new(&engine);
        assert_eq!(counting.name(), "RLC");
        let q = Query::rlc(0, 1, vec![Label(0)]).unwrap();
        assert_eq!(counting.evaluate(&q), engine.evaluate(&q));
        assert_eq!(counting.prepare_count(), 1);
        let prepared = counting.prepare(q.constraint()).unwrap();
        assert_eq!(counting.prepare_count(), 2);
        // Prepared evaluation does not re-prepare.
        let _ = counting.evaluate_prepared(0, 1, &prepared);
        let _ = counting.evaluate_prepared_group(&[(0, 1), (1, 0)], &prepared);
        assert_eq!(counting.prepare_count(), 2);
        counting.reset();
        assert_eq!(counting.prepare_count(), 0);
    }

    #[test]
    fn engines_are_object_safe() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engines: Vec<Box<dyn ReachabilityEngine + '_>> = vec![
            Box::new(IndexEngine::new(&graph, &index)),
            Box::new(HybridEngine::new(&graph, &index)),
        ];
        let q = Query::rlc(0, 1, vec![Label(0)]).unwrap();
        for engine in &engines {
            let single = engine.evaluate(&q);
            let batch = engine.evaluate_batch(std::slice::from_ref(&q));
            assert_eq!(batch, vec![single]);
        }
    }
}
