//! Cross-batch prepared-plan caching.
//!
//! [`crate::plan::BatchPlan`] prepares each distinct constraint once **per
//! execution**; a server answering many batches re-pays that preparation on
//! every request. [`PlanCache`] amortizes it across batches the way
//! production path-index systems keep compiled query plans resident: a
//! sharded, `Send + Sync` LRU mapping *(engine identity, constraint)* to the
//! [`Prepared`] artifact (or the [`QueryError`] preparation produced — an
//! engine that rejects a constraint rejects it deterministically, so the
//! rejection is as cacheable as a plan).
//!
//! ## Keying and the generation stamp
//!
//! Entries are keyed by engine kind ([`ReachabilityEngine::name`]) plus
//! constraint, and validated on every hit against the engine's
//! [`ReachabilityEngine::plan_identity`]:
//!
//! * engines whose artifacts depend only on the constraint (the NFA-driven
//!   traversal and simulated engines) report [`PlanIdentity::Kind`], so any
//!   instance of the kind shares cached plans;
//! * index-backed engines report [`PlanIdentity::Index`] over their
//!   [`ArtifactTag`](crate::engine::ArtifactTag), which embeds the
//!   [`Generation`](crate::engine::Generation) stamped into the index at
//!   construction. When an index is dropped and rebuilt — even at the same
//!   address, with the same `k` and catalog size — the generation differs,
//!   the identity check fails, and the **stale entry is dropped** (counted
//!   in [`CacheStats::stale_drops`]) instead of being re-served.
//!
//! ## Miss coalescing
//!
//! Two rayon workers that miss on the same constraint at the same time used
//! to both call [`ReachabilityEngine::prepare`] (the second insert won).
//! Misses now rendezvous on a per-key **in-flight latch**: the first worker
//! compiles, every concurrent worker with the same key *and identity* blocks
//! on the latch and reuses the result (counted in
//! [`CacheStats::coalesced`]), so each distinct constraint is compiled
//! exactly once per process no matter how many workers race on first touch.
//! Workers with a different identity (another index instance) get their own
//! latch — a latch never hands a plan across identities.
//!
//! ## Eviction
//!
//! Each shard enforces an entry-count budget and an approximate byte budget
//! (totals divided evenly across shards), evicting least-recently-used
//! entries first. Byte accounting combines the key-side floor
//! ([`PlanCache::entry_bytes`]) with each plan's own
//! [`Prepared::approx_bytes`] — engines with large artifacts (compiled
//! automata, per-shard tables) price them there, so the budget tracks real
//! residency instead of a blind fixed overhead.

use crate::engine::{PlanIdentity, Prepared, ReachabilityEngine};
use crate::query::{Constraint, QueryError};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Fixed per-entry overhead charged by [`PlanCache::entry_bytes`]: the hash
/// map bucket and entry bookkeeping. The `Prepared` box and its artifact are
/// priced by [`Prepared::approx_bytes`] instead.
const ENTRY_OVERHEAD_BYTES: usize = 128;

/// Configuration of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheConfig {
    /// Number of independently locked shards (clamped to `1..=1024`). More
    /// shards means less lock contention between rayon workers; budgets are
    /// split evenly across shards, so eviction precision drops as shard
    /// count grows.
    pub shards: usize,
    /// Maximum number of resident entries across all shards (at least 1 per
    /// shard is always allowed).
    pub max_entries: usize,
    /// Approximate maximum resident bytes across all shards, as priced by
    /// [`PlanCache::entry_bytes`].
    pub max_bytes: usize,
}

impl Default for PlanCacheConfig {
    fn default() -> Self {
        PlanCacheConfig {
            shards: 16,
            max_entries: 4096,
            max_bytes: 64 << 20,
        }
    }
}

/// Counter snapshot of a [`PlanCache`] — the cache-side analogue of the
/// [`crate::engine::PrepareCounting`] instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to call [`ReachabilityEngine::prepare`].
    pub misses: u64,
    /// Entries evicted by the entry-count or byte budget.
    pub evictions: u64,
    /// Entries dropped because their [`PlanIdentity`] no longer matched the
    /// engine's — the generation-mismatch path (a dropped-and-rebuilt
    /// index's stale plans land here, never back at a caller).
    pub stale_drops: u64,
    /// Misses that waited on another worker's in-flight compilation of the
    /// same key instead of calling [`ReachabilityEngine::prepare`]
    /// themselves (each one is a duplicate compile the latch saved).
    pub coalesced: u64,
    /// Resident entries at snapshot time.
    pub entries: usize,
    /// Approximate resident bytes at snapshot time.
    pub bytes: usize,
}

/// How one [`PlanCache::prepare_outcome`] call was resolved — the per-call
/// view the EXPLAIN path attaches to its trace, where [`CacheStats`] is the
/// process-lifetime aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrepareOutcome {
    /// The plan was served from a resident entry.
    pub hit: bool,
    /// The miss waited on another worker's in-flight compilation.
    pub coalesced: bool,
    /// A resident entry with a mismatched identity was dropped on the way.
    pub stale_drop: bool,
}

/// Cache key: the engine kind bucketing interchangeable instances together,
/// plus the constraint the plan was compiled from.
#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    kind: String,
    constraint: Constraint,
}

/// One resident plan (or cached rejection) with its validation identity and
/// LRU bookkeeping.
struct CacheEntry {
    identity: PlanIdentity,
    plan: Result<Arc<Prepared>, QueryError>,
    bytes: usize,
    last_used: u64,
}

/// The outcome slot concurrent missers of one `(key, identity)` rendezvous
/// on: the first caller's closure compiles, everyone else blocks in
/// `get_or_init` and reuses the result.
type Latch = Arc<OnceLock<Result<Arc<Prepared>, QueryError>>>;

/// In-flight compilations are keyed by identity *as well as* the cache key:
/// two same-kind engines over different indexes must never share a latch,
/// or one would receive a plan resolved against the other's catalog.
#[derive(Clone, PartialEq, Eq, Hash)]
struct LatchKey {
    key: CacheKey,
    identity: PlanIdentity,
}

/// One independently locked shard.
#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, CacheEntry>,
    bytes: usize,
    /// Compilations currently in flight for keys hashing to this shard.
    /// Transient: the winning worker removes its latch right after
    /// publishing the entry into `map`.
    in_flight: HashMap<LatchKey, Latch>,
}

/// Locks a shard, recovering from lock poisoning instead of panicking.
///
/// Everything guarded by a shard lock is plain bookkeeping over immutable
/// `Arc<Prepared>` values: a panic mid-section can at worst leave the
/// byte/LRU accounting drifted, which only shifts *when* eviction triggers —
/// it can never tear a plan. Propagating the poison would instead take the
/// whole cache down for every later caller.
fn lock_shard(shard: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    shard
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Bumps a monotonic statistics counter (also used for the LRU tick),
/// returning the pre-increment value.
fn bump(counter: &AtomicU64) -> u64 {
    // rlc-analyze: allow(atomic-pairing) — monotonic stats/LRU counter; no memory is published through it
    counter.fetch_add(1, Ordering::Relaxed)
}

/// Reads a monotonic statistics counter for a snapshot.
fn read_counter(counter: &AtomicU64) -> u64 {
    // rlc-analyze: allow(atomic-pairing) — observational stats read; approximate by design
    counter.load(Ordering::Relaxed)
}

/// Adds to a residency gauge (entries/bytes mirror). Always called with the
/// owning shard's lock held, so the mirror tracks the locked state exactly;
/// the atomic only makes the *read* side lock-free.
fn gauge_add(gauge: &AtomicU64, delta: u64) {
    // rlc-analyze: allow(atomic-pairing) — gauge mirror written under the shard lock; readers are observational
    gauge.fetch_add(delta, Ordering::Relaxed);
}

/// Subtracts from a residency gauge; see [`gauge_add`].
fn gauge_sub(gauge: &AtomicU64, delta: u64) {
    // rlc-analyze: allow(atomic-pairing) — gauge mirror written under the shard lock; readers are observational
    gauge.fetch_sub(delta, Ordering::Relaxed);
}

/// A sharded, thread-safe LRU cache of prepared constraints, shared across
/// batches (and across engines — entries are keyed per engine kind and
/// validated per engine identity).
///
/// ```
/// use rlc_core::{build_index, BatchPlan, BuildConfig, IndexEngine, PlanCache, Query};
/// use rlc_graph::examples::fig2_graph;
/// use rlc_graph::Label;
///
/// let graph = fig2_graph();
/// let (index, _) = build_index(&graph, &BuildConfig::new(2));
/// let engine = IndexEngine::new(&graph, &index);
/// let cache = PlanCache::new();
/// let batch = vec![Query::rlc(0, 5, vec![Label(1)]).unwrap()];
/// // Repeated batches prepare each distinct constraint once per *process*,
/// // not once per execution:
/// for _ in 0..3 {
///     let answers = BatchPlan::new(&batch).execute_cached(&engine, &cache);
///     assert_eq!(answers.len(), 1);
/// }
/// assert_eq!(cache.stats().misses, 1);
/// assert_eq!(cache.stats().hits, 2);
/// ```
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard entry budget (total split evenly, at least 1).
    shard_max_entries: usize,
    /// Per-shard byte budget (total split evenly, at least one entry's
    /// overhead so a shard can always hold something).
    shard_max_bytes: usize,
    /// Monotonic LRU clock; bumped on every touch.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    stale_drops: AtomicU64,
    coalesced: AtomicU64,
    /// Lock-free mirror of `Σ shard.map.len()`, updated under each shard's
    /// lock at every insert/remove so [`PlanCache::counters`] never has to
    /// stop the world.
    resident_entries: AtomicU64,
    /// Lock-free mirror of `Σ shard.bytes`; same discipline.
    resident_bytes: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::new()
    }
}

impl PlanCache {
    /// Creates a cache with [`PlanCacheConfig::default`] budgets.
    pub fn new() -> Self {
        PlanCache::with_config(PlanCacheConfig::default())
    }

    /// Creates a cache with explicit shard count and budgets.
    pub fn with_config(config: PlanCacheConfig) -> Self {
        let shards = config.shards.clamp(1, 1024);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            shard_max_entries: config.max_entries.div_ceil(shards).max(1),
            shard_max_bytes: config.max_bytes.div_ceil(shards).max(ENTRY_OVERHEAD_BYTES),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            stale_drops: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            resident_entries: AtomicU64::new(0),
            resident_bytes: AtomicU64::new(0),
        }
    }

    /// The artifact-independent floor charged for one cached constraint:
    /// the resident key copy of the constraint's heap data plus the map
    /// bookkeeping. The plan side of an entry is priced on top via
    /// [`Prepared::approx_bytes`] (see [`PlanCache::plan_bytes`]); cached
    /// rejections carry no plan and are charged the floor alone.
    pub fn entry_bytes(constraint: &Constraint) -> usize {
        crate::engine::constraint_heap_bytes(constraint) + ENTRY_OVERHEAD_BYTES
    }

    /// The full footprint charged for one cached outcome: the key-side floor
    /// plus the plan's own [`Prepared::approx_bytes`] when preparation
    /// succeeded. Exposed so byte-budget tests (and capacity planning) can
    /// price entries the same way the cache does.
    pub fn plan_bytes(constraint: &Constraint, plan: &Result<Arc<Prepared>, QueryError>) -> usize {
        PlanCache::entry_bytes(constraint)
            + plan.as_ref().map(|p| p.approx_bytes()).unwrap_or_default()
    }

    /// Prepares `constraint` on `engine` through the cache: a hit returns
    /// the resident plan (after validating the engine's identity), a miss
    /// calls [`ReachabilityEngine::prepare`] — outside any lock — and caches
    /// the outcome, successful or not. A hit whose stored identity no longer
    /// matches the engine (a rebuilt index: new generation) is dropped and
    /// treated as a miss. Concurrent misses on the same key and identity
    /// coalesce onto one in-flight compilation (see the module docs), so the
    /// engine's `prepare` runs exactly once per first touch.
    pub fn prepare(
        &self,
        engine: &dyn ReachabilityEngine,
        constraint: &Constraint,
    ) -> Result<Arc<Prepared>, QueryError> {
        self.prepare_outcome(engine, constraint).0
    }

    /// [`PlanCache::prepare`], additionally reporting how this particular
    /// call was resolved. When the global observability registry is enabled
    /// the call's latency is recorded into the `rlc_plan_cache_hit_seconds`
    /// / `rlc_plan_cache_miss_seconds` histograms — the hit/miss latency
    /// split that makes cache efficacy visible as a distribution rather
    /// than a ratio.
    pub fn prepare_outcome(
        &self,
        engine: &dyn ReachabilityEngine,
        constraint: &Constraint,
    ) -> (Result<Arc<Prepared>, QueryError>, PrepareOutcome) {
        let timed = rlc_obs::global_enabled().then(std::time::Instant::now);
        let (plan, outcome) = self.prepare_inner(engine, constraint);
        if let Some(started) = timed {
            static HIT_SITE: OnceLock<Arc<rlc_obs::Histogram>> = OnceLock::new();
            static MISS_SITE: OnceLock<Arc<rlc_obs::Histogram>> = OnceLock::new();
            let hist = if outcome.hit {
                HIT_SITE.get_or_init(|| rlc_obs::global().histogram("rlc_plan_cache_hit_seconds"))
            } else {
                MISS_SITE.get_or_init(|| rlc_obs::global().histogram("rlc_plan_cache_miss_seconds"))
            };
            hist.record_duration(started.elapsed());
        }
        (plan, outcome)
    }

    fn prepare_inner(
        &self,
        engine: &dyn ReachabilityEngine,
        constraint: &Constraint,
    ) -> (Result<Arc<Prepared>, QueryError>, PrepareOutcome) {
        let mut outcome = PrepareOutcome::default();
        let identity = engine.plan_identity();
        let key = CacheKey {
            kind: engine.name().to_owned(),
            constraint: constraint.clone(),
        };
        let shard = &self.shards[self.shard_of(&key)];
        // One critical section covers the resident lookup, the stale drop,
        // and the latch acquisition: a worker can never slip between "no
        // resident entry" and "no latch" while another worker is publishing
        // the entry (the publisher inserts into the map *before* removing
        // its latch, under this same lock).
        let latch: Latch = {
            let mut guard = lock_shard(shard);
            if let Some(entry) = guard.map.get_mut(&key) {
                if entry.identity == identity {
                    entry.last_used = bump(&self.tick);
                    bump(&self.hits);
                    outcome.hit = true;
                    return (entry.plan.clone(), outcome);
                }
                // Generation mismatch: this plan was resolved against an
                // index that no longer exists (or a different instance of
                // the kind). Drop it so it can never be re-served.
                if let Some(stale) = guard.map.remove(&key) {
                    guard.bytes -= stale.bytes;
                    gauge_sub(&self.resident_entries, 1);
                    gauge_sub(&self.resident_bytes, stale.bytes as u64);
                }
                bump(&self.stale_drops);
                outcome.stale_drop = true;
            }
            let latch_key = LatchKey {
                key: key.clone(),
                identity: identity.clone(),
            };
            guard.in_flight.entry(latch_key).or_default().clone()
        };
        bump(&self.misses);

        // Exactly one of the coalescing workers runs the closure (outside
        // the shard lock — preparation can be expensive); the rest block
        // here and wake with the shared outcome.
        let mut compiled = false;
        let plan = latch
            .get_or_init(|| {
                compiled = true;
                engine.prepare(constraint).map(Arc::new)
            })
            .clone();
        if !compiled {
            bump(&self.coalesced);
            outcome.coalesced = true;
            return (plan, outcome);
        }

        // The compiling worker publishes the entry and retires its latch.
        let bytes = PlanCache::plan_bytes(constraint, &plan);
        let entry = CacheEntry {
            identity: identity.clone(),
            plan: plan.clone(),
            bytes,
            last_used: bump(&self.tick),
        };
        let mut guard = lock_shard(shard);
        // A same-key entry can exist here only for a *different* identity
        // (same identities coalesced on the latch); last write wins, exactly
        // like the pre-latch behavior for competing identities.
        if let Some(old) = guard.map.insert(key.clone(), entry) {
            guard.bytes -= old.bytes;
            gauge_sub(&self.resident_bytes, old.bytes as u64);
        } else {
            gauge_add(&self.resident_entries, 1);
        }
        guard.bytes += bytes;
        gauge_add(&self.resident_bytes, bytes as u64);
        // The resident latch is necessarily our own: only the unique
        // compiling worker removes latches, and `or_default` never replaces
        // a resident one, so waiters arriving before this removal shared
        // `latch` and waiters after it hit the map entry published above.
        guard.in_flight.remove(&LatchKey { key, identity });
        self.evict_over_budget(&mut guard);
        (plan, outcome)
    }

    /// Evicts least-recently-used entries until the shard is within both
    /// budgets: one scan per eviction to find the victim, removed by key.
    fn evict_over_budget(&self, shard: &mut Shard) {
        while shard.map.len() > self.shard_max_entries || shard.bytes > self.shard_max_bytes {
            let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
            else {
                break;
            };
            let Some(evicted) = shard.map.remove(&victim) else {
                break;
            };
            shard.bytes -= evicted.bytes;
            gauge_sub(&self.resident_entries, 1);
            gauge_sub(&self.resident_bytes, evicted.bytes as u64);
            bump(&self.evictions);
        }
    }

    /// Number of resident entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_shard(s).map.len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every resident entry (counters are preserved).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut guard = lock_shard(shard);
            gauge_sub(&self.resident_entries, guard.map.len() as u64);
            gauge_sub(&self.resident_bytes, guard.bytes as u64);
            guard.map.clear();
            guard.bytes = 0;
        }
    }

    /// Lock-free counter snapshot: every field is read from an atomic, so a
    /// metrics endpoint (or a test) can sample the cache without stopping a
    /// single shard — a `prepare` storm on every shard cannot delay this.
    /// The residency gauges are mirrors maintained under the shard locks at
    /// each insert/remove, so concurrent snapshots are at worst one in-flight
    /// mutation out of date, never drifted.
    pub fn counters(&self) -> CacheStats {
        CacheStats {
            hits: read_counter(&self.hits),
            misses: read_counter(&self.misses),
            evictions: read_counter(&self.evictions),
            stale_drops: read_counter(&self.stale_drops),
            coalesced: read_counter(&self.coalesced),
            entries: read_counter(&self.resident_entries) as usize,
            bytes: read_counter(&self.resident_bytes) as usize,
        }
    }

    /// Snapshot of the hit/miss/eviction counters and resident footprint.
    /// Since the residency gauges became lock-free mirrors this is the same
    /// snapshot as [`PlanCache::counters`]; kept as the established name.
    pub fn stats(&self) -> CacheStats {
        self.counters()
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{build_index, BuildConfig};
    use crate::engine::{IndexEngine, PrepareCounting};
    use crate::plan::BatchPlan;
    use crate::query::Query;
    use rayon::prelude::*;
    use rlc_graph::examples::fig2_graph;
    use rlc_graph::Label;

    fn constraint(labels: &[u16]) -> Constraint {
        Constraint::single(labels.iter().map(|&l| Label(l)).collect()).unwrap()
    }

    /// A one-shard cache so LRU order is deterministic in tests.
    fn one_shard(max_entries: usize, max_bytes: usize) -> PlanCache {
        PlanCache::with_config(PlanCacheConfig {
            shards: 1,
            max_entries,
            max_bytes,
        })
    }

    #[test]
    fn repeated_prepares_hit_after_the_first() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let counting = PrepareCounting::new(&engine);
        let cache = PlanCache::new();
        let c = constraint(&[1]);
        for _ in 0..5 {
            let plan = cache.prepare(&counting, &c).unwrap();
            assert_eq!(plan.constraint(), &c);
        }
        assert_eq!(counting.prepare_count(), 1, "one engine prepare, ever");
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 4));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes >= PlanCache::entry_bytes(&c));
    }

    #[test]
    fn rejections_are_cached_too() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let counting = PrepareCounting::new(&engine);
        let cache = PlanCache::new();
        let too_long = constraint(&[0, 1, 2]);
        let expected = crate::query::QueryError::BlockTooLong {
            block: 0,
            len: 3,
            k: 2,
        };
        for _ in 0..3 {
            assert_eq!(
                cache.prepare(&counting, &too_long).err(),
                Some(expected.clone())
            );
        }
        assert_eq!(counting.prepare_count(), 1, "the rejection is resident");
    }

    #[test]
    fn lru_eviction_order_is_least_recently_used_first() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let cache = one_shard(2, usize::MAX);
        let c1 = constraint(&[0]);
        let c2 = constraint(&[1]);
        let c3 = constraint(&[2]);
        cache.prepare(&engine, &c1).unwrap();
        cache.prepare(&engine, &c2).unwrap();
        // Touch c1 so c2 becomes the least recently used…
        cache.prepare(&engine, &c1).unwrap();
        // …and inserting c3 must evict exactly c2.
        cache.prepare(&engine, &c3).unwrap();
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
        let hits_before = cache.stats().hits;
        cache.prepare(&engine, &c1).unwrap();
        cache.prepare(&engine, &c3).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 2, "c1 and c3 survived");
        cache.prepare(&engine, &c2).unwrap();
        assert_eq!(cache.stats().hits, hits_before + 2, "c2 was the victim");
    }

    #[test]
    fn byte_budget_bounds_the_resident_footprint() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let pool: Vec<Constraint> = (0..6u16).map(|l| constraint(&[l])).collect();
        // Room for roughly two entries (priced the way the cache prices
        // them: key floor + plan footprint), far below the entry budget.
        let sample = engine.prepare(&pool[0]).map(Arc::new);
        let budget = 2 * PlanCache::plan_bytes(&pool[0], &sample) + 1;
        let cache = one_shard(1024, budget);
        for c in &pool {
            cache.prepare(&engine, c).unwrap();
            assert!(
                cache.stats().bytes <= budget,
                "resident bytes must stay within the budget after every insert"
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions >= 4, "the budget forced evictions");
        assert!(stats.entries <= 2);
    }

    #[test]
    fn stale_identities_are_dropped_not_reserved() {
        // The cross-batch face of the ABA fix: a cache populated against
        // index A must not serve A's plans to an engine over index B, even
        // though both engines are named "RLC" — and the stale entry is
        // removed, not left to shadow the fresh one.
        let graph = fig2_graph();
        let c = constraint(&[1]);
        let cache = one_shard(16, usize::MAX);
        let (index_a, _) = build_index(&graph, &BuildConfig::new(2));
        let plan_a = {
            let engine_a = IndexEngine::new(&graph, &index_a);
            cache.prepare(&engine_a, &c).unwrap()
        };
        drop(index_a);
        let (index_b, _) = build_index(&graph, &BuildConfig::new(2));
        let engine_b = IndexEngine::new(&graph, &index_b);
        let counting = PrepareCounting::new(&engine_b);
        let plan_b = cache.prepare(&counting, &c).unwrap();
        assert_eq!(counting.prepare_count(), 1, "B re-prepared");
        assert!(!Arc::ptr_eq(&plan_a, &plan_b), "A's plan was not re-served");
        let stats = cache.stats();
        assert_eq!(stats.stale_drops, 1);
        assert_eq!(stats.entries, 1, "the stale entry is gone");
        // B's plan is now resident.
        cache.prepare(&counting, &c).unwrap();
        assert_eq!(counting.prepare_count(), 1);
    }

    #[test]
    fn concurrent_rayon_workers_share_the_cache() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let counting = PrepareCounting::new(&engine);
        let cache = PlanCache::new();
        let pool: Vec<Constraint> = vec![
            constraint(&[0]),
            constraint(&[1]),
            constraint(&[0, 1]),
            Constraint::new(vec![vec![Label(0)], vec![Label(1)]]).unwrap(),
        ];
        let work: Vec<(u32, u32, usize)> = (0..200u32)
            .map(|i| (i % 6, (i * 7 + 1) % 6, (i as usize) % pool.len()))
            .collect();
        let answers: Vec<Result<bool, crate::query::QueryError>> = work
            .par_iter()
            .map(|&(s, t, which)| {
                let plan = cache.prepare(&counting, &pool[which])?;
                counting.evaluate_prepared(s, t, &plan)
            })
            .collect();
        for (&(s, t, which), answer) in work.iter().zip(&answers) {
            assert_eq!(
                *answer,
                engine.evaluate(&Query::new(s, t, pool[which].clone()))
            );
        }
        // Workers racing on first touch of a constraint coalesce on the
        // in-flight latch: the engine prepares each distinct constraint
        // EXACTLY once, no matter how many rayon workers miss concurrently.
        assert_eq!(
            counting.prepare_count(),
            pool.len(),
            "the latch must collapse concurrent misses to one prepare"
        );
        assert_eq!(cache.stats().hits + cache.stats().misses, work.len() as u64);
        // Every miss beyond the first per key waited on the latch.
        assert_eq!(
            cache.stats().misses,
            pool.len() as u64 + cache.stats().coalesced
        );
    }

    #[test]
    fn threads_hammering_one_key_compile_it_once() {
        // The single-prepare guarantee is structural (OnceLock), not a
        // timing accident: any number of OS threads calling prepare for the
        // same constraint, starting at any interleaving, yield exactly one
        // engine prepare per distinct constraint.
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let counting = PrepareCounting::new(&engine);
        let cache = PlanCache::new();
        let pool: Vec<Constraint> = (0..3u16).map(|l| constraint(&[l])).collect();
        std::thread::scope(|scope| {
            for worker in 0..4 {
                let cache = &cache;
                let counting = &counting;
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..8 {
                        let c = &pool[(worker + round) % pool.len()];
                        let plan = cache.prepare(counting, c).unwrap();
                        assert_eq!(plan.constraint(), c);
                    }
                });
            }
        });
        assert_eq!(
            counting.prepare_count(),
            pool.len(),
            "one prepare per distinct constraint across all threads"
        );
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 8);
        assert_eq!(stats.misses, pool.len() as u64 + stats.coalesced);
        assert_eq!(stats.entries, pool.len());
    }

    #[test]
    fn latches_do_not_hand_plans_across_identities() {
        // Two same-kind engines over different indexes miss on the same key
        // concurrently: each must end up with a plan resolved against its
        // own index (distinct latches per identity), never the other's.
        let graph = fig2_graph();
        let (index_a, _) = build_index(&graph, &BuildConfig::new(2));
        let (index_b, _) = build_index(&graph, &BuildConfig::new(3));
        let engine_a = IndexEngine::new(&graph, &index_a);
        let engine_b = IndexEngine::new(&graph, &index_b);
        let cache = one_shard(16, usize::MAX);
        // Too long for A (k = 2), fine for B (k = 3): the outcomes differ,
        // so any cross-identity handoff is observable.
        let c = constraint(&[0, 1, 2]);
        std::thread::scope(|scope| {
            let a = scope.spawn(|| cache.prepare(&engine_a, &c));
            let b = scope.spawn(|| cache.prepare(&engine_b, &c));
            assert!(a.join().unwrap().is_err(), "A's k = 2 rejects the block");
            assert!(b.join().unwrap().is_ok(), "B's k = 3 accepts the block");
        });
        // And sequentially ever after, each engine sees its own outcome
        // (the loser of the publish race re-prepares via the stale path).
        assert!(cache.prepare(&engine_a, &c).is_err());
        assert!(cache.prepare(&engine_b, &c).is_ok());
    }

    #[test]
    fn clear_resets_residency_but_not_counters() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let cache = PlanCache::new();
        assert!(cache.is_empty());
        cache.prepare(&engine, &constraint(&[0])).unwrap();
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().bytes, 0);
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lock_free_counters_track_every_mutation_path() {
        // `counters()` reads only atomics; `len()` walks the shard locks.
        // Drive the cache through every residency mutation — insert,
        // replace-by-identity, LRU eviction, stale drop, clear — and the
        // gauge mirrors must agree with the locked ground truth at each step.
        let graph = fig2_graph();
        let check = |cache: &PlanCache| {
            let c = cache.counters();
            assert_eq!(c, cache.stats(), "stats() and counters() are one snapshot");
            assert_eq!(c.entries, cache.len(), "entry gauge mirrors the shards");
        };
        let cache = one_shard(2, usize::MAX);
        let (index_a, _) = build_index(&graph, &BuildConfig::new(2));
        {
            let engine = IndexEngine::new(&graph, &index_a);
            for l in 0..4u16 {
                cache.prepare(&engine, &constraint(&[l])).unwrap();
                check(&cache); // inserts, then LRU evictions past entry 2
            }
        }
        assert!(cache.counters().evictions >= 2);
        drop(index_a);
        let (index_b, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index_b);
        cache.prepare(&engine, &constraint(&[3])).unwrap();
        check(&cache); // stale drop + re-insert under the new generation
        assert_eq!(cache.counters().stale_drops, 1);
        cache.clear();
        check(&cache);
        assert_eq!(cache.counters().entries, 0);
        assert_eq!(cache.counters().bytes, 0);
    }

    #[test]
    fn cached_and_uncached_plans_execute_identically() {
        let graph = fig2_graph();
        let (index, _) = build_index(&graph, &BuildConfig::new(2));
        let engine = IndexEngine::new(&graph, &index);
        let cache = PlanCache::new();
        let queries: Vec<Query> = (0..24u32)
            .map(|i| {
                let c = match i % 3 {
                    0 => constraint(&[1]),
                    1 => constraint(&[0, 1]),
                    _ => constraint(&[0, 1, 2]), // rejected by k = 2
                };
                Query::new(i % 6, (i * 5 + 2) % 6, c)
            })
            .collect();
        let plan = BatchPlan::new(&queries);
        let uncached = plan.execute(&engine);
        for _ in 0..3 {
            assert_eq!(plan.execute_cached(&engine, &cache), uncached);
        }
        // Three distinct constraints (one of them a cached rejection): three
        // misses total across the three repeated executions.
        assert_eq!(cache.stats().misses, 3);
    }
}
