//! The indexing algorithm (§IV, §V-B, Algorithm 2).
//!
//! For every vertex `v`, taken in the order given by the configured
//! [`OrderingStrategy`], the builder runs a *backward* and a *forward*
//! kernel-based search (KBS). Each KBS has two phases:
//!
//! 1. **Kernel search** — a breadth-first enumeration of all label sequences
//!    of length at most `k` (eager strategy; `2k` under the lazy strategy)
//!    reaching/leaving `v`. Every sequence found yields an insertion attempt
//!    of `(v, MR(sequence))` into the visited vertex's `Lout` (backward) or
//!    `Lin` (forward), and registers the visited vertex as a *frontier* for
//!    the kernel candidate `MR(sequence)` when the next repetition of that
//!    kernel would exceed the phase-1 depth.
//! 2. **Kernel BFS** — for each kernel candidate, a BFS constrained to the
//!    cyclic label pattern of the kernel, continuing from the frontier
//!    vertices. Every time a repetition boundary is crossed at a vertex, an
//!    insertion attempt is made; if the attempt is pruned, the branch is cut
//!    (pruning rule PR3).
//!
//! Insertion attempts apply pruning rule PR2 (skip if the search root has a
//! larger access id than the visited vertex — the visited vertex's own
//! searches cover the fact) and PR1 (skip if the query is already answerable
//! from the current snapshot of the index). The combination yields a sound,
//! complete and condensed index (Theorems 2 and 3).
//!
//! # Parallel construction
//!
//! With [`BuildConfig::parallel`] the build fans the kernel-based searches
//! out across worker threads while staying **byte-identical** to the
//! sequential build. The vertex order is partitioned into consecutive
//! *access-id blocks* ([`crate::order::VertexOrder::blocks`]); for each
//! block:
//!
//! 1. **Speculative exploration (parallel).** Every root of the block runs
//!    its backward and forward searches against an immutable snapshot of the
//!    index (the state at the block boundary), with a per-thread
//!    epoch-stamped scratch. Phase-1 enumeration never depends on the index,
//!    so its insertion attempts are recorded verbatim; each kernel BFS
//!    explores with PR3 cuts driven by the *stale* snapshot — a superset of
//!    the exact exploration, because answerability only grows as the index
//!    fills in — and records its label-matched transitions.
//! 2. **Deterministic merge (sequential).** Roots are replayed in access-id
//!    order against the live index: phase-1 attempts are re-applied through
//!    the real PR1/PR2/duplicate checks, and each kernel BFS is re-run over
//!    the recorded transitions (a superset of what the exact search needs),
//!    with cuts now driven by the up-to-date index.
//!
//! Because every pruning decision is re-made against exactly the state the
//! sequential build would have seen, the merged index — entry lists, catalog
//! intern order, and [`BuildStats`] counters — is identical to the
//! sequential result for any thread count and block size. (Builds that hit a
//! wall-clock budget are the exception: where the budget lands depends on
//! timing in either mode.)

use crate::catalog::{MrCatalog, MrId};
use crate::index::{IndexEntry, RlcIndex};
use crate::order::{compute_order, OrderingStrategy};
use crate::repeats::minimum_repeat_len;
use rayon::prelude::*;
use rlc_graph::{Label, LabeledGraph, VertexId};
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Which kernel-search strategy to use (§IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum KbsStrategy {
    /// Determine kernel candidates as soon as a sequence of length ≤ `k` is
    /// seen (the strategy the paper adopts: cheaper because enumerating all
    /// sequences of length `2k` is avoided).
    #[default]
    Eager,
    /// Enumerate all sequences up to length `2k` before switching to
    /// kernel-guided BFS (the strategy Theorem 1 directly suggests). Provided
    /// for the eager-vs-lazy ablation.
    Lazy,
}

/// Configuration of an index build.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BuildConfig {
    /// The recursive `k`: the maximum constraint length the index will
    /// support.
    pub k: usize,
    /// Vertex processing order.
    pub ordering: OrderingStrategy,
    /// Eager or lazy kernel search.
    pub strategy: KbsStrategy,
    /// Apply pruning rule PR1 (skip entries already answerable from the
    /// current index snapshot).
    pub use_pr1: bool,
    /// Apply pruning rule PR2 (skip entries whose search root has a larger
    /// access id than the visited vertex).
    pub use_pr2: bool,
    /// Apply pruning rule PR3 (stop a kernel-BFS branch when PR1/PR2 fires).
    pub use_pr3: bool,
    /// Abort the build after this wall-clock budget (partial index returned,
    /// [`BuildStats::timed_out`] set). Mirrors the paper's 24-hour cap.
    pub time_budget: Option<Duration>,
    /// Abort the build when the entry count exceeds this bound.
    pub max_entries: Option<usize>,
    /// Run the block-parallel build (see the module docs); the result is
    /// byte-identical to the sequential build for any thread count.
    pub parallel: bool,
    /// Worker threads for the parallel build; `None` uses the rayon thread
    /// count (`RAYON_NUM_THREADS` when set, available CPUs otherwise).
    pub num_threads: Option<usize>,
    /// Roots per access-id block in the parallel build; `None` picks a block
    /// size proportional to the thread count. Larger blocks amortize fan-out
    /// overhead but stale the snapshot (more speculative over-exploration);
    /// the choice never affects the produced index.
    pub block_size: Option<usize>,
}

impl BuildConfig {
    /// Default configuration (paper settings) for a given recursive `k`.
    pub fn new(k: usize) -> Self {
        BuildConfig {
            k,
            ordering: OrderingStrategy::InOutDegree,
            strategy: KbsStrategy::Eager,
            use_pr1: true,
            use_pr2: true,
            use_pr3: true,
            time_budget: None,
            max_entries: None,
            parallel: false,
            num_threads: None,
            block_size: None,
        }
    }

    /// Disables all pruning rules; used by the pruning ablation and by the
    /// extended-transitive-closure baseline.
    pub fn without_pruning(mut self) -> Self {
        self.use_pr1 = false;
        self.use_pr2 = false;
        self.use_pr3 = false;
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the ordering strategy.
    pub fn with_ordering(mut self, ordering: OrderingStrategy) -> Self {
        self.ordering = ordering;
        self
    }

    /// Sets the kernel-search strategy.
    pub fn with_strategy(mut self, strategy: KbsStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Enables the block-parallel build with the default thread count (see
    /// [`crate::engine::build_threads`]).
    pub fn with_parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Enables the block-parallel build with an explicit worker count.
    pub fn with_threads(mut self, num_threads: usize) -> Self {
        self.parallel = true;
        self.num_threads = Some(num_threads);
        self
    }

    /// Sets the access-id block size of the parallel build.
    pub fn with_block_size(mut self, block_size: usize) -> Self {
        self.block_size = Some(block_size);
        self
    }
}

impl Default for BuildConfig {
    fn default() -> Self {
        BuildConfig::new(2)
    }
}

/// Counters and timing collected while building an index.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildStats {
    /// Wall-clock build time.
    pub duration: Duration,
    /// Number of kernel-based searches performed (two per processed vertex).
    pub kernel_searches: u64,
    /// Number of kernel-BFS phases launched (one per kernel candidate).
    pub kernel_bfs_runs: u64,
    /// Total insertion attempts.
    pub insert_attempts: u64,
    /// Entries actually inserted.
    pub inserted: u64,
    /// Attempts pruned by PR1.
    pub pruned_pr1: u64,
    /// Attempts pruned by PR2.
    pub pruned_pr2: u64,
    /// Attempts skipped because the identical entry already existed.
    pub duplicates: u64,
    /// Kernel-BFS branches cut by PR3.
    pub pr3_cutoffs: u64,
    /// Whether the build hit its time or entry budget and returned a partial
    /// index.
    pub timed_out: bool,
}

/// Builds the RLC index of `graph` under `config`, returning the index and
/// the build statistics.
pub fn build_index(graph: &LabeledGraph, config: &BuildConfig) -> (RlcIndex, BuildStats) {
    assert!(config.k >= 1, "recursive k must be at least 1");
    let started = Instant::now();
    let order = compute_order(graph, config.ordering);
    let mut builder = Builder {
        graph,
        config: *config,
        index: RlcIndex::empty(config.k, order),
        stats: BuildStats::default(),
        scratch: Scratch::new(graph.vertex_count(), config.k),
        deadline: config.time_budget.map(|b| started + b),
    };
    if config.parallel {
        builder.run_parallel();
    } else {
        builder.run();
    }
    builder.stats.duration = started.elapsed();
    (builder.index, builder.stats)
}

impl RlcIndex {
    /// Builds the index with the paper's default settings for the given `k`.
    pub fn build(graph: &LabeledGraph, k: usize) -> RlcIndex {
        build_index(graph, &BuildConfig::new(k)).0
    }

    /// Builds the index with the paper's default settings using the
    /// block-parallel build; the result is byte-identical to
    /// [`RlcIndex::build`].
    pub fn build_parallel(graph: &LabeledGraph, k: usize) -> RlcIndex {
        build_index(graph, &BuildConfig::new(k).with_parallel()).0
    }
}

/// Direction of a kernel-based search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Traverses in-edges from the root; discovered facts are `u ⇝ root` and
    /// land in `Lout(u)`.
    Backward,
    /// Traverses out-edges from the root; discovered facts are `root ⇝ u` and
    /// land in `Lin(u)`.
    Forward,
}

/// Outcome of an insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InsertOutcome {
    Inserted,
    AlreadyPresent,
    PrunedPr1,
    PrunedPr2,
}

impl InsertOutcome {
    fn is_pruned(self) -> bool {
        matches!(
            self,
            InsertOutcome::AlreadyPresent | InsertOutcome::PrunedPr1 | InsertOutcome::PrunedPr2
        )
    }
}

/// Reusable visited-state table for kernel-BFS phases, shared by the
/// sequential builder, the merge replay, and (one per worker thread) the
/// parallel speculative exploration.
struct Scratch {
    /// The recursive `k` the table is sized for.
    k: usize,
    /// Visited stamps for kernel-BFS states: `state_stamp[v * k + state]`
    /// equals the current epoch when `(v, state)` has been visited.
    state_stamp: Vec<u32>,
    epoch: u32,
}

impl Scratch {
    fn new(vertices: usize, k: usize) -> Self {
        Scratch {
            k,
            state_stamp: vec![0u32; vertices * k],
            epoch: 0,
        }
    }

    /// Starts a fresh kernel-BFS phase by bumping the epoch.
    fn begin_phase(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: reset the table once every 2^32 phases.
            self.state_stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    #[inline]
    fn visited(&self, v: VertexId, state: usize) -> bool {
        self.state_stamp[v as usize * self.k + state] == self.epoch
    }

    /// Marks `(v, state)` visited; returns whether it was already visited.
    #[inline]
    fn mark(&mut self, v: VertexId, state: usize) -> bool {
        let slot = &mut self.state_stamp[v as usize * self.k + state];
        let was = *slot == self.epoch;
        *slot = self.epoch;
        was
    }
}

/// A [`Scratch`] checked out of a shared pool for the duration of one
/// worker's block chunk; returned on drop so the next block's workers reuse
/// it instead of allocating (and zeroing) a fresh `|V| * k` table.
struct PooledScratch<'p> {
    scratch: Option<Scratch>,
    pool: &'p std::sync::Mutex<Vec<Scratch>>,
}

impl<'p> PooledScratch<'p> {
    fn acquire(pool: &'p std::sync::Mutex<Vec<Scratch>>, vertices: usize, k: usize) -> Self {
        // Poison recovery: the pool is a plain Vec of reusable buffers, and
        // every user resets its scratch before use, so a panic between lock
        // and pop can never leave the pool in a state worth dying over.
        let scratch = pool
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_else(|| Scratch::new(vertices, k));
        PooledScratch {
            scratch: Some(scratch),
            pool,
        }
    }

    fn get_mut(&mut self) -> &mut Scratch {
        // rlc-analyze: allow(panic-free-library) — the Option is Some from construction until Drop takes it; no caller can observe the in-between
        self.scratch.as_mut().expect("scratch present until drop")
    }
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let (Some(scratch), Ok(mut pool)) = (self.scratch.take(), self.pool.lock()) {
            pool.push(scratch);
        }
    }
}

struct Builder<'g> {
    graph: &'g LabeledGraph,
    config: BuildConfig,
    index: RlcIndex,
    stats: BuildStats,
    scratch: Scratch,
    deadline: Option<Instant>,
}

impl<'g> Builder<'g> {
    fn run(&mut self) {
        let sequence = self.index.order.sequence.clone();
        for root in sequence {
            if self.budget_exhausted() {
                self.stats.timed_out = true;
                break;
            }
            // Backward first, then forward, as in Algorithm 2.
            self.kernel_based_search(root, Direction::Backward);
            self.kernel_based_search(root, Direction::Forward);
        }
    }

    /// The block-parallel build (see the module docs): speculative parallel
    /// exploration per access-id block, then a deterministic sequential merge
    /// that replays every pruning decision against the live index.
    fn run_parallel(&mut self) {
        let threads = crate::engine::build_threads(&self.config);
        if threads == 1 || self.config.max_entries.is_some() {
            // One worker means nothing to overlap, and an entry budget is
            // only enforced by the merge — workers would speculatively
            // explore whole blocks the merge then discards. Both cases
            // produce a byte-identical result either way, so take the
            // sequential path directly.
            return self.run();
        }
        let block_size = self.config.block_size.unwrap_or((threads * 8).max(32));
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            // rlc-analyze: allow(panic-free-library) — the vendored stand-in's build() is documented to never fail; the Result only mirrors upstream rayon's signature
            .expect("thread pool construction cannot fail");
        // Worker scratches are pooled across blocks: the vendored rayon
        // spawns fresh scoped threads per block, so a plain `map_init` would
        // re-allocate a |V| * k table per thread per block. At most `threads`
        // scratches ever exist; the epoch stamps make reuse free.
        let scratch_pool: std::sync::Mutex<Vec<Scratch>> = std::sync::Mutex::new(Vec::new());
        let order = self.index.order.clone();
        'blocks: for block in order.blocks(block_size) {
            if self.budget_exhausted() {
                self.stats.timed_out = true;
                break;
            }
            let records: Vec<RootRecord> = {
                // Spans (inert unless the global observability registry is
                // enabled) split the block-parallel build's wall-time into
                // its two phases: speculative exploration vs merge replay.
                let _span = rlc_obs::span!("rlc_build_explore_seconds");
                let graph = self.graph;
                let config = self.config;
                let deadline = self.deadline;
                // The block's workers share the index frozen at the block
                // boundary; the merge below is the only writer and runs
                // strictly after this borrow ends.
                let snapshot = &self.index;
                let vertices = graph.vertex_count();
                pool.install(|| {
                    block
                        .par_iter()
                        .map_init(
                            || PooledScratch::acquire(&scratch_pool, vertices, config.k),
                            |pooled, &root| {
                                explore_root(
                                    graph,
                                    &config,
                                    snapshot,
                                    deadline,
                                    pooled.get_mut(),
                                    root,
                                )
                            },
                        )
                        .collect()
                })
            };
            let _span = rlc_obs::span!("rlc_build_merge_seconds");
            for record in &records {
                if self.budget_exhausted() {
                    self.stats.timed_out = true;
                    break 'blocks;
                }
                self.replay_root(record);
                if record.timed_out {
                    self.stats.timed_out = true;
                    break 'blocks;
                }
            }
        }
    }

    /// Merges one root's speculative exploration into the live index,
    /// re-making every pruning decision exactly as the sequential build
    /// would: phase-1 attempts replay through [`Builder::try_insert`] in
    /// enumeration order, kernel BFS phases replay over the recorded
    /// transition superset.
    fn replay_root(&mut self, record: &RootRecord) {
        for (dir, search) in [
            (Direction::Backward, &record.backward),
            (Direction::Forward, &record.forward),
        ] {
            self.stats.kernel_searches += 1;
            for attempt in &search.phase1 {
                let mr = record.catalog.sequence(attempt.mr);
                // Phase-1 insertion attempts never cut the search, exactly as
                // in the sequential phase 1.
                let _ = self.try_insert(record.root, attempt.visited, mr, dir);
            }
            for phase in &search.phases {
                self.stats.kernel_bfs_runs += 1;
                self.replay_kernel_bfs(
                    record.root,
                    dir,
                    record.catalog.sequence(phase.kernel),
                    phase,
                );
            }
        }
    }

    /// Re-runs one kernel BFS over the transitions recorded by the worker.
    ///
    /// The recorded adjacency is a superset of what this exact search
    /// traverses (the worker's stale snapshot prunes at most as often as the
    /// live index, so it explored at least as far), which makes this loop
    /// behaviorally identical to [`Builder::kernel_bfs_phase`] on the full
    /// graph — same BFS order, same insertion attempts, same PR3 cuts — at
    /// the cost of a hash lookup instead of a neighbor scan.
    fn replay_kernel_bfs(
        &mut self,
        root: VertexId,
        dir: Direction,
        kernel: &[Label],
        phase: &PhaseRecord,
    ) {
        let klen = kernel.len();
        self.scratch.begin_phase();
        let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
        for &v in &phase.frontier {
            if !self.scratch.mark(v, 0) {
                queue.push_back((v, 0));
            }
        }
        let mut steps = 0u32;
        while let Some((x, state)) = queue.pop_front() {
            steps += 1;
            if steps.is_multiple_of(4096) && self.budget_exhausted() {
                self.stats.timed_out = true;
                return;
            }
            let Some(matched) = phase.edges.get(&(x, state as u32)) else {
                continue;
            };
            for &y in matched {
                let next_state = (state + 1) % klen;
                if self.scratch.visited(y, next_state) {
                    continue;
                }
                self.scratch.mark(y, next_state);
                if next_state == 0 {
                    let outcome = self.try_insert(root, y, kernel, dir);
                    if outcome.is_pruned() {
                        self.stats.pr3_cutoffs += 1;
                        if self.config.use_pr3 {
                            continue;
                        }
                    }
                    queue.push_back((y, 0));
                } else {
                    queue.push_back((y, next_state));
                }
            }
        }
    }

    fn budget_exhausted(&self) -> bool {
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        if let Some(max_entries) = self.config.max_entries {
            if self.stats.inserted as usize >= max_entries {
                return true;
            }
        }
        false
    }

    fn neighbors(&self, v: VertexId, dir: Direction) -> rlc_graph::graph::OutEdges<'g> {
        match dir {
            Direction::Backward => self.graph.in_edges(v),
            Direction::Forward => self.graph.out_edges(v),
        }
    }

    /// One kernel-based search from `root` in direction `dir`.
    fn kernel_based_search(&mut self, root: VertexId, dir: Direction) {
        self.stats.kernel_searches += 1;
        let frontiers = self.kernel_search_phase(root, dir);
        for (kernel, frontier) in frontiers {
            self.stats.kernel_bfs_runs += 1;
            self.kernel_bfs_phase(root, dir, &kernel, &frontier);
        }
    }

    /// Phase 1: enumerate label sequences up to the phase-1 depth, insert the
    /// corresponding entries, and collect kernel candidates with their
    /// frontier vertices.
    fn kernel_search_phase(
        &mut self,
        root: VertexId,
        dir: Direction,
    ) -> Vec<(Vec<Label>, Vec<VertexId>)> {
        let k = self.config.k;
        let depth_limit = match self.config.strategy {
            KbsStrategy::Eager => k,
            KbsStrategy::Lazy => 2 * k,
        };
        let mut frontiers: HashMap<Vec<Label>, Vec<VertexId>> = HashMap::new();
        let mut seen: HashSet<(VertexId, Vec<Label>)> = HashSet::new();
        let mut queue: VecDeque<(VertexId, Vec<Label>)> = VecDeque::new();
        queue.push_back((root, Vec::new()));

        while let Some((x, seq)) = queue.pop_front() {
            for (y, label) in self.neighbors(x, dir) {
                let mut extended = Vec::with_capacity(seq.len() + 1);
                match dir {
                    // Backward traversal prepends: the sequence is always the
                    // forward label sequence from the visited vertex to root.
                    Direction::Backward => {
                        extended.push(label);
                        extended.extend_from_slice(&seq);
                    }
                    Direction::Forward => {
                        extended.extend_from_slice(&seq);
                        extended.push(label);
                    }
                }
                if !seen.insert((y, extended.clone())) {
                    continue;
                }
                let mr_len = minimum_repeat_len(&extended);
                if mr_len <= k {
                    let mr = &extended[..mr_len];
                    // Phase-1 insertion attempts never cut the search (PR3
                    // applies only to the kernel-BFS phase).
                    let _ = self.try_insert(root, y, mr, dir);
                    // The sequence is an exact power of its MR; register the
                    // vertex as frontier when the next repetition would not
                    // fit within the phase-1 depth.
                    if extended.len() + mr_len > depth_limit {
                        match frontiers.entry(mr.to_vec()) {
                            MapEntry::Occupied(mut o) => o.get_mut().push(y),
                            MapEntry::Vacant(v) => {
                                v.insert(vec![y]);
                            }
                        }
                    }
                }
                if extended.len() < depth_limit {
                    queue.push_back((y, extended));
                }
            }
        }
        let mut result: Vec<(Vec<Label>, Vec<VertexId>)> = frontiers.into_iter().collect();
        // Deterministic kernel order keeps builds reproducible across runs.
        result.sort();
        result
    }

    /// Phase 2: BFS constrained to the cyclic label pattern of `kernel`,
    /// starting from the frontier vertices (each sitting on a repetition
    /// boundary).
    fn kernel_bfs_phase(
        &mut self,
        root: VertexId,
        dir: Direction,
        kernel: &[Label],
        frontier: &[VertexId],
    ) {
        let klen = kernel.len();
        self.scratch.begin_phase();
        let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
        for &v in frontier {
            if !self.scratch.mark(v, 0) {
                queue.push_back((v, 0));
            }
        }
        let mut steps = 0u32;
        while let Some((x, state)) = queue.pop_front() {
            steps += 1;
            if steps.is_multiple_of(4096) && self.budget_exhausted() {
                self.stats.timed_out = true;
                return;
            }
            // The label expected on the next traversed edge: forward searches
            // consume the kernel left to right, backward searches right to
            // left (the sequence read along the path stays `kernel^m`).
            let expected = match dir {
                Direction::Forward => kernel[state],
                Direction::Backward => kernel[klen - 1 - state],
            };
            for (y, label) in self.neighbors(x, dir) {
                if label != expected {
                    continue;
                }
                let next_state = (state + 1) % klen;
                if self.scratch.visited(y, next_state) {
                    continue;
                }
                self.scratch.mark(y, next_state);
                if next_state == 0 {
                    // `y` sits on a repetition boundary: a path between `y`
                    // and the root with label sequence `kernel^m` exists.
                    let outcome = self.try_insert(root, y, kernel, dir);
                    if outcome.is_pruned() {
                        self.stats.pr3_cutoffs += 1;
                        if self.config.use_pr3 {
                            // PR3: do not expand past a pruned boundary.
                            continue;
                        }
                    }
                    queue.push_back((y, 0));
                } else {
                    queue.push_back((y, next_state));
                }
            }
        }
    }

    /// Attempts to record that a `mr`-repetition path exists between `visited`
    /// and `root` (direction-dependent), applying PR2 and PR1.
    fn try_insert(
        &mut self,
        root: VertexId,
        visited: VertexId,
        mr: &[Label],
        dir: Direction,
    ) -> InsertOutcome {
        self.stats.insert_attempts += 1;
        // PR2: only roots with access id no larger than the visited vertex
        // record entries there; later roots rely on the earlier vertex's own
        // searches.
        if self.config.use_pr2 && self.index.order.aid(root) > self.index.order.aid(visited) {
            self.stats.pruned_pr2 += 1;
            return InsertOutcome::PrunedPr2;
        }
        let (s, t) = match dir {
            Direction::Backward => (visited, root),
            Direction::Forward => (root, visited),
        };
        let resolved = self.index.catalog.resolve(mr);
        if let Some(mr_id) = resolved {
            // Exact-duplicate check: the current root's entries sit at the
            // tail of the list, so only the tail needs scanning.
            let list = match dir {
                Direction::Backward => &self.index.lout[visited as usize],
                Direction::Forward => &self.index.lin[visited as usize],
            };
            let duplicate = list
                .iter()
                .rev()
                .take_while(|e| e.hub == root)
                .any(|e| e.mr == mr_id);
            if duplicate {
                self.stats.duplicates += 1;
                return InsertOutcome::AlreadyPresent;
            }
            // PR1: skip entries already answerable from the current snapshot.
            if self.config.use_pr1 && self.index.query_interned(s, t, mr_id) {
                self.stats.pruned_pr1 += 1;
                return InsertOutcome::PrunedPr1;
            }
        }
        let mr_id = resolved.unwrap_or_else(|| self.index.catalog.intern(mr));
        let entry = IndexEntry {
            hub: root,
            mr: mr_id,
        };
        match dir {
            Direction::Backward => self.index.push_lout(visited, entry),
            Direction::Forward => self.index.push_lin(visited, entry),
        }
        self.stats.inserted += 1;
        InsertOutcome::Inserted
    }
}

/// An insertion attempt recorded by a worker's phase-1 enumeration, with the
/// minimum repeat interned in the record's worker-local catalog.
struct RecordedAttempt {
    visited: VertexId,
    mr: MrId,
}

/// One speculatively explored kernel BFS: the kernel (worker-local id), the
/// frontier it started from, and the label-matched transitions of the
/// superset exploration, keyed by `(vertex, kernel state)` with targets in
/// neighbor-iteration order.
struct PhaseRecord {
    kernel: MrId,
    frontier: Vec<VertexId>,
    edges: HashMap<(VertexId, u32), Vec<VertexId>>,
}

/// One direction of a root's kernel-based search, as recorded by a worker.
struct SearchRecord {
    phase1: Vec<RecordedAttempt>,
    phases: Vec<PhaseRecord>,
}

/// Everything a worker recorded about one root, ready for the sequential
/// merge.
struct RootRecord {
    root: VertexId,
    /// Worker-local interner naming the minimum repeats of this record; the
    /// merge resolves ids through it and re-interns into the real catalog in
    /// replay order, so global catalog ids stay identical to the sequential
    /// build.
    catalog: MrCatalog,
    backward: SearchRecord,
    forward: SearchRecord,
    /// The worker hit the wall-clock budget mid-exploration; the record is
    /// partial and the merge stops after replaying it.
    timed_out: bool,
}

/// Speculative per-root exploration against a frozen index snapshot.
struct Explorer<'a> {
    graph: &'a LabeledGraph,
    config: &'a BuildConfig,
    snapshot: &'a RlcIndex,
    scratch: &'a mut Scratch,
    catalog: MrCatalog,
    /// `(visited, local mr, is-forward)` facts this root has speculatively
    /// inserted — the stand-in for the sequential tail-scan duplicate check,
    /// which only ever sees the current root's own entries.
    inserted: HashSet<(VertexId, MrId, bool)>,
    deadline: Option<Instant>,
    timed_out: bool,
}

/// Runs both kernel-based searches of `root` against `snapshot`, recording
/// phase-1 attempts and kernel-BFS transitions for the merge.
fn explore_root(
    graph: &LabeledGraph,
    config: &BuildConfig,
    snapshot: &RlcIndex,
    deadline: Option<Instant>,
    scratch: &mut Scratch,
    root: VertexId,
) -> RootRecord {
    let mut explorer = Explorer {
        graph,
        config,
        snapshot,
        scratch,
        catalog: MrCatalog::new(),
        inserted: HashSet::new(),
        deadline,
        timed_out: false,
    };
    let backward = explorer.explore_search(root, Direction::Backward);
    let forward = explorer.explore_search(root, Direction::Forward);
    RootRecord {
        root,
        catalog: explorer.catalog,
        backward,
        forward,
        timed_out: explorer.timed_out,
    }
}

impl<'a> Explorer<'a> {
    fn neighbors(&self, v: VertexId, dir: Direction) -> rlc_graph::graph::OutEdges<'a> {
        match dir {
            Direction::Backward => self.graph.in_edges(v),
            Direction::Forward => self.graph.out_edges(v),
        }
    }

    fn deadline_exceeded(&self) -> bool {
        self.deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// The worker-side stand-in for [`Builder::try_insert`]: decides against
    /// the *stale* snapshot (plus this root's own speculative insertions)
    /// whether an attempt would be pruned. Because the snapshot holds a
    /// subset of the entries the live index will hold at merge time, and
    /// answerability only grows with entries, a speculative "pruned" verdict
    /// implies the merge's verdict — which is what makes cutting on it safe.
    fn speculative_pruned(
        &mut self,
        root: VertexId,
        visited: VertexId,
        mr: MrId,
        dir: Direction,
    ) -> bool {
        let order = self.snapshot.order();
        if self.config.use_pr2 && order.aid(root) > order.aid(visited) {
            return true;
        }
        let key = (visited, mr, matches!(dir, Direction::Forward));
        if self.inserted.contains(&key) {
            return true;
        }
        if self.config.use_pr1 {
            let (s, t) = match dir {
                Direction::Backward => (visited, root),
                Direction::Forward => (root, visited),
            };
            if self.snapshot.answerable(s, t, self.catalog.sequence(mr)) {
                return true;
            }
        }
        self.inserted.insert(key);
        false
    }

    /// Mirror of [`Builder::kernel_based_search`] that records instead of
    /// inserting.
    fn explore_search(&mut self, root: VertexId, dir: Direction) -> SearchRecord {
        let (phase1, frontiers) = self.explore_phase1(root, dir);
        let mut phases = Vec::with_capacity(frontiers.len());
        for (kernel, frontier) in frontiers {
            if self.timed_out {
                break;
            }
            phases.push(self.explore_kernel_bfs(root, dir, &kernel, &frontier));
        }
        SearchRecord { phase1, phases }
    }

    /// Mirror of [`Builder::kernel_search_phase`]. Phase-1 exploration never
    /// consults the index, so the recorded attempts and frontiers are
    /// exactly the sequential ones; the speculative prune verdicts are
    /// tracked only to seed [`Explorer::inserted`] for later cut decisions.
    #[allow(clippy::type_complexity)]
    fn explore_phase1(
        &mut self,
        root: VertexId,
        dir: Direction,
    ) -> (Vec<RecordedAttempt>, Vec<(Vec<Label>, Vec<VertexId>)>) {
        let k = self.config.k;
        let depth_limit = match self.config.strategy {
            KbsStrategy::Eager => k,
            KbsStrategy::Lazy => 2 * k,
        };
        let mut attempts: Vec<RecordedAttempt> = Vec::new();
        let mut frontiers: HashMap<Vec<Label>, Vec<VertexId>> = HashMap::new();
        let mut seen: HashSet<(VertexId, Vec<Label>)> = HashSet::new();
        let mut queue: VecDeque<(VertexId, Vec<Label>)> = VecDeque::new();
        queue.push_back((root, Vec::new()));

        while let Some((x, seq)) = queue.pop_front() {
            for (y, label) in self.neighbors(x, dir) {
                let mut extended = Vec::with_capacity(seq.len() + 1);
                match dir {
                    Direction::Backward => {
                        extended.push(label);
                        extended.extend_from_slice(&seq);
                    }
                    Direction::Forward => {
                        extended.extend_from_slice(&seq);
                        extended.push(label);
                    }
                }
                if !seen.insert((y, extended.clone())) {
                    continue;
                }
                let mr_len = minimum_repeat_len(&extended);
                if mr_len <= k {
                    let mr = self.catalog.intern(&extended[..mr_len]);
                    let _ = self.speculative_pruned(root, y, mr, dir);
                    attempts.push(RecordedAttempt { visited: y, mr });
                    if extended.len() + mr_len > depth_limit {
                        match frontiers.entry(extended[..mr_len].to_vec()) {
                            MapEntry::Occupied(mut o) => o.get_mut().push(y),
                            MapEntry::Vacant(v) => {
                                v.insert(vec![y]);
                            }
                        }
                    }
                }
                if extended.len() < depth_limit {
                    queue.push_back((y, extended));
                }
            }
        }
        let mut result: Vec<(Vec<Label>, Vec<VertexId>)> = frontiers.into_iter().collect();
        // Same deterministic kernel order as the sequential build.
        result.sort();
        (attempts, result)
    }

    /// Mirror of [`Builder::kernel_bfs_phase`] with cuts driven by the stale
    /// snapshot, recording every label-matched transition of each expanded
    /// state so the merge can replay the exact search.
    fn explore_kernel_bfs(
        &mut self,
        root: VertexId,
        dir: Direction,
        kernel: &[Label],
        frontier: &[VertexId],
    ) -> PhaseRecord {
        let klen = kernel.len();
        let kernel_local = self.catalog.intern(kernel);
        self.scratch.begin_phase();
        let mut edges: HashMap<(VertexId, u32), Vec<VertexId>> = HashMap::new();
        let mut queue: VecDeque<(VertexId, usize)> = VecDeque::new();
        for &v in frontier {
            if !self.scratch.mark(v, 0) {
                queue.push_back((v, 0));
            }
        }
        let mut steps = 0u32;
        while let Some((x, state)) = queue.pop_front() {
            steps += 1;
            if steps.is_multiple_of(4096) && self.deadline_exceeded() {
                self.timed_out = true;
                break;
            }
            let expected = match dir {
                Direction::Forward => kernel[state],
                Direction::Backward => kernel[klen - 1 - state],
            };
            let mut matched: Vec<VertexId> = Vec::new();
            for (y, label) in self.neighbors(x, dir) {
                if label != expected {
                    continue;
                }
                matched.push(y);
                let next_state = (state + 1) % klen;
                if self.scratch.visited(y, next_state) {
                    continue;
                }
                self.scratch.mark(y, next_state);
                if next_state == 0 {
                    // A speculative prune implies the merge will prune too,
                    // so cutting here can only under-cut relative to the
                    // exact search — the recorded transitions stay a
                    // superset of what the merge replays.
                    if self.speculative_pruned(root, y, kernel_local, dir) && self.config.use_pr3 {
                        continue;
                    }
                    queue.push_back((y, 0));
                } else {
                    queue.push_back((y, next_state));
                }
            }
            if !matched.is_empty() {
                edges.insert((x, state as u32), matched);
            }
        }
        PhaseRecord {
            kernel: kernel_local,
            frontier: frontier.to_vec(),
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::RlcQuery;
    use rlc_graph::examples::{fig1_graph, fig2_graph};
    use rlc_graph::GraphBuilder;

    fn labels(graph: &LabeledGraph, names: &[&str]) -> Vec<Label> {
        names
            .iter()
            .map(|n| graph.labels().resolve(n).unwrap())
            .collect()
    }

    #[test]
    fn fig2_queries_from_example4() {
        let g = fig2_graph();
        let (index, stats) = build_index(&g, &BuildConfig::new(2));
        assert!(stats.inserted > 0);
        let q1 = RlcQuery::from_names(&g, "v3", "v6", &["l2", "l1"]).unwrap();
        assert!(index.query(&q1), "Q1(v3, v6, (l2,l1)+) must be true");
        let q2 = RlcQuery::from_names(&g, "v1", "v2", &["l2", "l1"]).unwrap();
        assert!(index.query(&q2), "Q2(v1, v2, (l2,l1)+) must be true");
        let q3 = RlcQuery::from_names(&g, "v1", "v3", &["l1"]).unwrap();
        assert!(!index.query(&q3), "Q3(v1, v3, (l1)+) must be false");
    }

    #[test]
    fn fig2_index_is_condensed_and_compact() {
        let g = fig2_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        assert!(
            index.is_condensed(),
            "Theorem 2: the index must be condensed"
        );
        // Table II lists 22 entries for this graph with k = 2; a correct,
        // condensed build should be in the same ballpark (the exact set may
        // differ slightly with tie-breaking of equal-priority vertices).
        let entries = index.entry_count();
        assert!(
            (18..=26).contains(&entries),
            "expected about 22 entries as in Table II, got {entries}"
        );
    }

    #[test]
    fn fig1_fraud_queries() {
        let g = fig1_graph();
        let (index, _) = build_index(&g, &BuildConfig::new(3));
        let q1 = RlcQuery::from_names(&g, "A14", "A19", &["debits", "credits"]).unwrap();
        assert!(index.query(&q1), "Q1 of Example 1 must be true");
        let q2 = RlcQuery::from_names(&g, "P10", "P13", &["knows", "knows", "worksFor"]).unwrap();
        assert!(!index.query(&q2), "Q2 of Example 1 must be false");
        let knows = RlcQuery::from_names(&g, "P10", "P16", &["knows"]).unwrap();
        assert!(index.query(&knows));
    }

    #[test]
    fn self_loop_single_label() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "a");
        b.add_edge_named("a", "y", "b");
        let g = b.build();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let a = g.vertex_id("a").unwrap();
        let b_id = g.vertex_id("b").unwrap();
        let x = labels(&g, &["x"]);
        let y = labels(&g, &["y"]);
        assert!(index.reaches(a, a, &x));
        assert!(index.reaches(a, b_id, &y));
        assert!(!index.reaches(a, b_id, &x));
        assert!(!index.reaches(b_id, a, &y));
    }

    #[test]
    fn two_label_cycle_longer_than_k_paths() {
        // A 6-cycle alternating labels x,y: every even-offset pair is
        // reachable under (x,y)+ starting on an x edge.
        let mut b = GraphBuilder::with_capacity(6, 2);
        for i in 0..6u32 {
            let label = Label((i % 2) as u16);
            b.add_edge(i, label, (i + 1) % 6);
        }
        let g = b.build();
        let (index, _) = build_index(&g, &BuildConfig::new(2));
        let xy = vec![Label(0), Label(1)];
        let yx = vec![Label(1), Label(0)];
        // From vertex 0 (whose outgoing edge is x) the (x,y)+ constraint
        // reaches vertices 2, 4 and 0 itself (going all the way around).
        assert!(index.reaches(0, 2, &xy));
        assert!(index.reaches(0, 4, &xy));
        assert!(index.reaches(0, 0, &xy));
        assert!(!index.reaches(0, 1, &xy));
        assert!(!index.reaches(0, 2, &yx));
        // From vertex 1 the outgoing edge is y, so (y,x)+ applies.
        assert!(index.reaches(1, 3, &yx));
        assert!(index.reaches(1, 1, &yx));
    }

    #[test]
    fn pruning_rules_do_not_change_answers() {
        let g = fig2_graph();
        let full = build_index(&g, &BuildConfig::new(2)).0;
        let unpruned = build_index(&g, &BuildConfig::new(2).without_pruning()).0;
        for s in g.vertices() {
            for t in g.vertices() {
                for (_, seq) in unpruned.catalog().iter() {
                    let q = RlcQuery::new(s, t, seq.to_vec()).unwrap();
                    assert_eq!(
                        full.query(&q),
                        unpruned.query(&q),
                        "answers diverge for ({s}, {t}, {seq:?})"
                    );
                }
            }
        }
        assert!(
            full.entry_count() <= unpruned.entry_count(),
            "pruning must not add entries"
        );
    }

    #[test]
    fn lazy_and_eager_strategies_agree() {
        let g = fig2_graph();
        let eager = build_index(&g, &BuildConfig::new(2)).0;
        let lazy = build_index(&g, &BuildConfig::new(2).with_strategy(KbsStrategy::Lazy)).0;
        for s in g.vertices() {
            for t in g.vertices() {
                for (_, seq) in eager.catalog().iter() {
                    let q = RlcQuery::new(s, t, seq.to_vec()).unwrap();
                    assert_eq!(eager.query(&q), lazy.query(&q));
                }
            }
        }
    }

    #[test]
    fn build_stats_account_for_attempts() {
        let g = fig2_graph();
        let (_, stats) = build_index(&g, &BuildConfig::new(2));
        assert_eq!(stats.kernel_searches, 12, "two searches per vertex");
        assert!(stats.insert_attempts >= stats.inserted);
        assert_eq!(
            stats.insert_attempts,
            stats.inserted + stats.pruned_pr1 + stats.pruned_pr2 + stats.duplicates
        );
        assert!(!stats.timed_out);
    }

    /// Serialized bytes plus stats with the timing-dependent field zeroed,
    /// for exact equality comparison across build modes.
    fn fingerprint(graph: &LabeledGraph, config: &BuildConfig) -> (Vec<u8>, BuildStats) {
        let (index, stats) = build_index(graph, config);
        (
            index.to_bytes(),
            BuildStats {
                duration: Duration::ZERO,
                ..stats
            },
        )
    }

    #[test]
    fn parallel_build_is_byte_identical_across_threads_and_blocks() {
        let g = fig2_graph();
        let sequential = fingerprint(&g, &BuildConfig::new(2));
        for threads in [1, 2, 8] {
            for block_size in [1, 3, 64] {
                let config = BuildConfig::new(2)
                    .with_threads(threads)
                    .with_block_size(block_size);
                assert_eq!(
                    fingerprint(&g, &config),
                    sequential,
                    "threads = {threads}, block size = {block_size}"
                );
            }
        }
    }

    #[test]
    fn parallel_build_matches_under_lazy_strategy_and_no_pruning() {
        let g = fig2_graph();
        for base in [
            BuildConfig::new(2).with_strategy(KbsStrategy::Lazy),
            BuildConfig::new(2).without_pruning(),
            BuildConfig::new(3),
        ] {
            assert_eq!(
                fingerprint(&g, &base.with_threads(4)),
                fingerprint(&g, &base),
                "config {base:?}"
            );
        }
    }

    #[test]
    fn parallel_build_on_cycles_matches() {
        // The 6-cycle exercises kernel-BFS phases (paths longer than k),
        // which is where the transition-replay machinery earns its keep.
        let mut b = GraphBuilder::with_capacity(6, 2);
        for i in 0..6u32 {
            b.add_edge(i, Label((i % 2) as u16), (i + 1) % 6);
        }
        let g = b.build();
        assert_eq!(
            fingerprint(&g, &BuildConfig::new(2).with_threads(3).with_block_size(2)),
            fingerprint(&g, &BuildConfig::new(2)),
        );
    }

    #[test]
    fn parallel_build_respects_entry_budget() {
        let g = fig2_graph();
        let mut config = BuildConfig::new(2).with_threads(2);
        config.max_entries = Some(3);
        let (index, stats) = build_index(&g, &config);
        assert!(stats.timed_out);
        assert!(index.entry_count() < build_index(&g, &BuildConfig::new(2)).0.entry_count());
    }

    #[test]
    fn parallel_build_on_empty_graph() {
        let g = GraphBuilder::with_capacity(4, 1).build();
        let (index, stats) = build_index(&g, &BuildConfig::new(2).with_parallel());
        assert_eq!(index.entry_count(), 0);
        assert!(!stats.timed_out);
    }

    #[test]
    fn time_budget_yields_partial_index() {
        let g = rlc_graph::generate::erdos_renyi(&rlc_graph::generate::SyntheticConfig::new(
            2000, 5.0, 4, 3,
        ));
        let (_, stats) = build_index(
            &g,
            &BuildConfig::new(2).with_time_budget(Duration::from_nanos(1)),
        );
        assert!(stats.timed_out);
    }

    #[test]
    #[should_panic(expected = "recursive k must be at least 1")]
    fn zero_k_is_rejected() {
        let g = fig2_graph();
        let _ = build_index(
            &g,
            &BuildConfig {
                k: 0,
                ..BuildConfig::new(1)
            },
        );
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = GraphBuilder::with_capacity(5, 2).build();
        let (index, stats) = build_index(&g, &BuildConfig::new(2));
        assert_eq!(index.entry_count(), 0);
        assert_eq!(stats.inserted, 0);
        assert!(!index.reaches(0, 1, &[Label(0)]));
    }
}
