//! Minimum repeats and kernels of label sequences (§III-A and §IV).
//!
//! A sequence `L'` is a *repeat* of `L` if `L` is `L'` concatenated with
//! itself an integral number of times; the *minimum repeat* `MR(L)` is the
//! shortest repeat (Lemma 1: it is unique). A sequence has a *kernel* `L'`
//! and *tail* `L''` (Definition 3) if `L = (L')^h ∘ L''` with `h ≥ 2`,
//! `MR(L') = L'` and `L''` a proper prefix of `L'` (possibly empty); the
//! kernel is unique when it exists (Lemma 2).
//!
//! Minimum repeats are computed with the KMP failure function, as in the
//! paper (§V-B): the smallest period of a sequence of length `n` is
//! `p = n - fail[n]`, and the sequence is a power of its length-`p` prefix
//! iff `p` divides `n`.

use rlc_graph::Label;

/// Computes the KMP failure function of `seq`.
///
/// `fail[i]` is the length of the longest proper prefix of `seq[..i]` that is
/// also a suffix of it; `fail[0] = 0` by convention. The returned vector has
/// length `seq.len() + 1`.
pub fn kmp_failure(seq: &[Label]) -> Vec<usize> {
    let n = seq.len();
    let mut fail = vec![0usize; n + 1];
    let mut k = 0usize;
    for i in 1..n {
        while k > 0 && seq[i] != seq[k] {
            k = fail[k];
        }
        if seq[i] == seq[k] {
            k += 1;
        }
        fail[i + 1] = k;
    }
    fail
}

/// Length of the minimum repeat of `seq`.
///
/// Returns 0 for the empty sequence (whose MR is the empty sequence `ε`).
pub fn minimum_repeat_len(seq: &[Label]) -> usize {
    let n = seq.len();
    if n == 0 {
        return 0;
    }
    let fail = kmp_failure(seq);
    let period = n - fail[n];
    if n.is_multiple_of(period) {
        period
    } else {
        n
    }
}

/// The minimum repeat `MR(seq)` as a prefix slice of `seq`.
pub fn minimum_repeat(seq: &[Label]) -> &[Label] {
    &seq[..minimum_repeat_len(seq)]
}

/// Whether `seq` is its own minimum repeat (`seq = MR(seq)`).
///
/// RLC query constraints are required to satisfy this (Definition 1): a
/// constraint like `(knows, knows)+` would additionally constrain the path
/// length, which the paper excludes (the even-path problem).
pub fn is_minimum_repeat(seq: &[Label]) -> bool {
    !seq.is_empty() && minimum_repeat_len(seq) == seq.len()
}

/// The kernel/tail decomposition of a sequence (Definition 3), if it exists.
///
/// Returns `(kernel, tail)` as prefix slices of `seq`: `seq = kernel^h ∘ tail`
/// with `h ≥ 2`, `MR(kernel) = kernel`, and `tail` a proper prefix of
/// `kernel` (possibly empty). By Lemma 2 the decomposition is unique; this
/// function returns it, preferring (as the lemma implies) the shortest kernel.
pub fn kernel_tail(seq: &[Label]) -> Option<(&[Label], &[Label])> {
    let n = seq.len();
    // Try candidate kernel lengths from shortest to longest; the first valid
    // decomposition is the unique one (Lemma 2).
    for c in 1..=n / 2 {
        let kernel = &seq[..c];
        if !is_minimum_repeat(kernel) {
            continue;
        }
        let h = n / c;
        if h < 2 {
            break;
        }
        // Check seq = kernel^h ∘ tail with tail a proper prefix of kernel.
        let repeats_ok = (0..h * c).all(|i| seq[i] == kernel[i % c]);
        if !repeats_ok {
            continue;
        }
        let tail = &seq[h * c..];
        let tail_ok = tail.len() < c && tail.iter().zip(kernel.iter()).all(|(a, b)| a == b);
        if tail_ok {
            return Some((kernel, tail));
        }
    }
    None
}

/// The *k-MR* of a path's label sequence, when it exists: `MR(seq)` if its
/// length is at most `k`, otherwise `None`.
///
/// This is the quantity the RLC index records (Definition 2). The name
/// mirrors the paper's "non-empty k-MR".
pub fn k_mr(seq: &[Label], k: usize) -> Option<&[Label]> {
    if seq.is_empty() {
        return None;
    }
    let len = minimum_repeat_len(seq);
    if len <= k {
        Some(&seq[..len])
    } else {
        None
    }
}

/// Checks the three-case characterization of Theorem 1 for a *split* path:
/// the first `2k` labels are `prefix`, the remainder is `rest`.
///
/// This is the lazy-KBS decision procedure: given the label sequence of the
/// first `2k` edges of a path and the label sequence of the rest, decide
/// whether the whole path has a non-empty k-MR and return it.
pub fn k_mr_by_theorem1(prefix: &[Label], rest: &[Label], k: usize) -> Option<Vec<Label>> {
    let total = prefix.len() + rest.len();
    if total == 0 {
        return None;
    }
    if total <= 2 * k {
        // Cases 1 and 2: the whole sequence is short enough to inspect.
        let mut whole = prefix.to_vec();
        whole.extend_from_slice(rest);
        return k_mr(&whole, k).map(|mr| mr.to_vec());
    }
    // Case 3: |p| > 2k, so prefix must have length exactly 2k.
    assert_eq!(prefix.len(), 2 * k, "case 3 requires a prefix of length 2k");
    let (kernel, tail) = kernel_tail(prefix)?;
    let mut continued = tail.to_vec();
    continued.extend_from_slice(rest);
    if minimum_repeat(&continued) == kernel {
        Some(kernel.to_vec())
    } else {
        None
    }
}

/// Enumerates every distinct minimum repeat of length at most `k` over an
/// alphabet of `label_count` labels.
///
/// The count of such sequences is the constant `C = O(|L|^k)` in the paper's
/// index-size analysis; this helper is used by tests and by the workload
/// generator when choosing query constraints uniformly over valid constraints.
pub fn enumerate_minimum_repeats(label_count: usize, k: usize) -> Vec<Vec<Label>> {
    let mut result = Vec::new();
    let mut current: Vec<Label> = Vec::new();
    fn recurse(
        label_count: usize,
        k: usize,
        current: &mut Vec<Label>,
        result: &mut Vec<Vec<Label>>,
    ) {
        if !current.is_empty() && is_minimum_repeat(current) {
            result.push(current.clone());
        }
        if current.len() == k {
            return;
        }
        for l in 0..label_count {
            current.push(Label::from_index(l));
            recurse(label_count, k, current, result);
            current.pop();
        }
    }
    recurse(label_count, k, &mut current, &mut result);
    result.sort();
    result.dedup();
    result
}

/// The number of distinct minimum repeats of length at most `k` over
/// `label_count` labels, computed by the paper's recurrence
/// `F(i) = |L|^i - Σ_{j | i, j ≠ i} F(j)` with `C = Σ_{i=1..k} F(i)`.
pub fn count_minimum_repeats(label_count: usize, k: usize) -> u64 {
    let mut f = vec![0u64; k + 1];
    for i in 1..=k {
        let mut value = (label_count as u64).pow(i as u32);
        for (j, f_j) in f.iter().enumerate().take(i).skip(1) {
            if i.is_multiple_of(j) {
                value -= f_j;
            }
        }
        f[i] = value;
    }
    f[1..=k].iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u16]) -> Vec<Label> {
        ids.iter().map(|&i| Label(i)).collect()
    }

    #[test]
    fn mr_of_simple_sequences() {
        assert_eq!(minimum_repeat_len(&seq(&[0, 0, 0])), 1);
        assert_eq!(minimum_repeat_len(&seq(&[0, 1, 0, 1])), 2);
        assert_eq!(minimum_repeat_len(&seq(&[0, 1, 2])), 3);
        assert_eq!(minimum_repeat_len(&seq(&[0, 1, 0])), 3);
        assert_eq!(minimum_repeat_len(&seq(&[0])), 1);
        assert_eq!(minimum_repeat_len(&[]), 0);
    }

    #[test]
    fn mr_of_paper_example() {
        // MR(knows, worksFor, knows, worksFor) = (knows, worksFor) — the
        // Fig. 1 path from P10 to P16 in §III-A.
        let knows = Label(0);
        let works_for = Label(1);
        let s = vec![knows, works_for, knows, works_for];
        assert_eq!(minimum_repeat(&s), &[knows, works_for][..]);
    }

    #[test]
    fn mr_is_its_own_mr() {
        for candidate in enumerate_minimum_repeats(3, 3) {
            assert!(is_minimum_repeat(&candidate));
            assert_eq!(minimum_repeat(&candidate), candidate.as_slice());
        }
    }

    #[test]
    fn non_trivial_period_that_does_not_divide_length() {
        // (a, b, a) has border "a" giving period 2, which does not divide 3.
        assert_eq!(minimum_repeat_len(&seq(&[0, 1, 0])), 3);
        // (a, a, b, a, a) has border (a,a) giving period 3, not dividing 5.
        assert_eq!(minimum_repeat_len(&seq(&[0, 0, 1, 0, 0])), 5);
    }

    #[test]
    fn kernel_tail_basic() {
        // (a a a a) = (a)^4 ∘ ε
        let aaaa = seq(&[0, 0, 0, 0]);
        let (kernel, tail) = kernel_tail(&aaaa).unwrap();
        assert_eq!(kernel, &seq(&[0])[..]);
        assert!(tail.is_empty());

        // (a b a b a) = (a b)^2 ∘ (a)
        let s = seq(&[0, 1, 0, 1, 0]);
        let (kernel, tail) = kernel_tail(&s).unwrap();
        assert_eq!(kernel, &seq(&[0, 1])[..]);
        assert_eq!(tail, &seq(&[0])[..]);

        // (a b c a) has no kernel: (a b c) appears only once.
        assert!(kernel_tail(&seq(&[0, 1, 2, 0])).is_none());

        // (a b) has no kernel (h must be at least 2).
        assert!(kernel_tail(&seq(&[0, 1])).is_none());
    }

    #[test]
    fn kernel_is_minimum_repeat_itself() {
        // (a a a a b a) : candidate (a a) is not an MR so it cannot be a
        // kernel even though (a a)^2 is a prefix; and (a) repeated 4 times
        // followed by (b a) fails the proper-prefix requirement, so there is
        // no kernel at all.
        assert!(kernel_tail(&seq(&[0, 0, 0, 0, 1, 0])).is_none());
    }

    #[test]
    fn kernel_uniqueness_on_exhaustive_small_sequences() {
        // Lemma 2: brute-force check that at most one valid decomposition
        // exists for every sequence of length up to 8 over 2 labels.
        for len in 1..=8usize {
            for code in 0..(1u32 << len) {
                let s: Vec<Label> = (0..len).map(|i| Label(((code >> i) & 1) as u16)).collect();
                let mut decompositions = Vec::new();
                for c in 1..=len / 2 {
                    let kernel = &s[..c];
                    if !is_minimum_repeat(kernel) {
                        continue;
                    }
                    let h = len / c;
                    if h < 2 {
                        continue;
                    }
                    let body_ok = (0..h * c).all(|i| s[i] == kernel[i % c]);
                    let tail = &s[h * c..];
                    let tail_ok =
                        tail.len() < c && tail.iter().zip(kernel.iter()).all(|(a, b)| a == b);
                    if body_ok && tail_ok {
                        decompositions.push(c);
                    }
                }
                assert!(
                    decompositions.len() <= 1,
                    "sequence {s:?} has multiple kernels: {decompositions:?}"
                );
                match kernel_tail(&s) {
                    Some((kernel, _)) => assert_eq!(decompositions, vec![kernel.len()]),
                    None => assert!(decompositions.is_empty()),
                }
            }
        }
    }

    #[test]
    fn k_mr_respects_bound() {
        let s = seq(&[0, 1, 2, 0, 1, 2]);
        assert_eq!(k_mr(&s, 3), Some(&seq(&[0, 1, 2])[..]));
        assert_eq!(k_mr(&s, 2), None);
        assert_eq!(k_mr(&[], 2), None);
    }

    #[test]
    fn theorem1_case1_and_2() {
        // Case 1: short path.
        assert_eq!(k_mr_by_theorem1(&seq(&[0, 1]), &[], 2), Some(seq(&[0, 1])));
        // Case 2: k < |p| <= 2k with |MR| <= k.
        assert_eq!(
            k_mr_by_theorem1(&seq(&[0, 1, 0]), &seq(&[1]), 2),
            Some(seq(&[0, 1]))
        );
        // Case 2 negative: MR longer than k.
        assert_eq!(k_mr_by_theorem1(&seq(&[0, 1, 2]), &seq(&[0]), 2), None);
    }

    #[test]
    fn theorem1_case3() {
        let k = 2;
        // prefix of length 2k = 4: (a b a b), kernel (a b), tail ε;
        // rest (a b): MR(tail ∘ rest) = (a b) = kernel → k-MR is (a b).
        assert_eq!(
            k_mr_by_theorem1(&seq(&[0, 1, 0, 1]), &seq(&[0, 1]), k),
            Some(seq(&[0, 1]))
        );
        // rest (b a): MR(tail ∘ rest) = (b a) ≠ kernel → no k-MR.
        assert_eq!(
            k_mr_by_theorem1(&seq(&[0, 1, 0, 1]), &seq(&[1, 0]), k),
            None
        );
        // prefix without kernel → no k-MR regardless of rest.
        assert_eq!(k_mr_by_theorem1(&seq(&[0, 1, 2, 0]), &seq(&[1]), 2), None);
    }

    #[test]
    fn theorem1_agrees_with_direct_mr_on_long_paths() {
        // Cross-check Case 3 against computing the MR of the whole sequence.
        let k = 2;
        for len in (2 * k + 1)..=10 {
            for code in 0..(1u32 << len) {
                let s: Vec<Label> = (0..len).map(|i| Label(((code >> i) & 1) as u16)).collect();
                let expected = k_mr(&s, k).map(|mr| mr.to_vec());
                let got = k_mr_by_theorem1(&s[..2 * k], &s[2 * k..], k);
                assert_eq!(got, expected, "sequence {s:?}");
            }
        }
    }

    #[test]
    fn enumerate_and_count_agree() {
        for labels in 1..=4usize {
            for k in 1..=3usize {
                let enumerated = enumerate_minimum_repeats(labels, k);
                assert_eq!(
                    enumerated.len() as u64,
                    count_minimum_repeats(labels, k),
                    "|L|={labels}, k={k}"
                );
            }
        }
    }

    #[test]
    fn count_matches_paper_formula_examples() {
        // F(1) = |L|, F(2) = |L|^2 - |L|.
        assert_eq!(count_minimum_repeats(8, 1), 8);
        assert_eq!(count_minimum_repeats(8, 2), 8 + 64 - 8);
        // k = 3: F(3) = |L|^3 - F(1).
        assert_eq!(count_minimum_repeats(2, 3), 2 + 2 + (8 - 2));
    }
}
