//! Interning of minimum repeats.
//!
//! The number of distinct minimum repeats appearing in an index is bounded by
//! `C = O(|L|^k)` (§V-C), which is tiny compared to the number of index
//! entries, so entries store a dense `MrId` instead of the sequence itself.
//! This keeps every index entry at 8 bytes and makes entry comparison a
//! single integer comparison.

use crate::repeats::is_minimum_repeat;
use rlc_graph::Label;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Dense identifier of an interned minimum repeat.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MrId(pub u32);

impl MrId {
    /// The raw dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Append-only interner for minimum repeats.
///
/// Only the sequence list is serialized; deserialization rebuilds the
/// sequence → id map automatically, so a deserialized catalog resolves
/// constraints immediately.
#[derive(Debug, Clone, Default, Serialize)]
pub struct MrCatalog {
    sequences: Vec<Vec<Label>>,
    #[serde(skip)]
    lookup: HashMap<Vec<Label>, MrId>,
}

impl Deserialize for MrCatalog {
    /// Reconstructs the catalog and rebuilds the skipped lookup map.
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected a map for MrCatalog"))?;
        let mut catalog = MrCatalog {
            sequences: serde::map_field(entries, "sequences", "MrCatalog")?,
            lookup: HashMap::new(),
        };
        catalog.rebuild_lookup();
        Ok(catalog)
    }
}

impl MrCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a minimum repeat, returning its id.
    ///
    /// Debug-asserts that `mr` really is its own minimum repeat: the index
    /// must never record a reducible sequence.
    pub fn intern(&mut self, mr: &[Label]) -> MrId {
        debug_assert!(is_minimum_repeat(mr), "catalog only stores minimum repeats");
        if let Some(&id) = self.lookup.get(mr) {
            return id;
        }
        let id = MrId(self.sequences.len() as u32);
        self.sequences.push(mr.to_vec());
        self.lookup.insert(mr.to_vec(), id);
        id
    }

    /// Looks up a sequence without interning it.
    pub fn resolve(&self, mr: &[Label]) -> Option<MrId> {
        self.lookup.get(mr).copied()
    }

    /// Returns the sequence for an id.
    pub fn sequence(&self, id: MrId) -> &[Label] {
        &self.sequences[id.index()]
    }

    /// Number of distinct minimum repeats interned.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total bytes used by the stored sequences (for index-size reporting).
    pub fn memory_bytes(&self) -> usize {
        self.sequences
            .iter()
            .map(|s| s.len() * std::mem::size_of::<Label>() + std::mem::size_of::<Vec<Label>>())
            .sum()
    }

    /// Rebuilds the lookup map after deserialization.
    pub fn rebuild_lookup(&mut self) {
        self.lookup = self
            .sequences
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), MrId(i as u32)))
            .collect();
    }

    /// Iterates over `(id, sequence)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MrId, &[Label])> + '_ {
        self.sequences
            .iter()
            .enumerate()
            .map(|(i, s)| (MrId(i as u32), s.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(ids: &[u16]) -> Vec<Label> {
        ids.iter().map(|&i| Label(i)).collect()
    }

    #[test]
    fn intern_is_idempotent() {
        let mut catalog = MrCatalog::new();
        let a = catalog.intern(&seq(&[0, 1]));
        let b = catalog.intern(&seq(&[1]));
        let a2 = catalog.intern(&seq(&[0, 1]));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(catalog.len(), 2);
        assert_eq!(catalog.sequence(a), &seq(&[0, 1])[..]);
    }

    #[test]
    fn resolve_does_not_intern() {
        let mut catalog = MrCatalog::new();
        catalog.intern(&seq(&[0]));
        assert!(catalog.resolve(&seq(&[1])).is_none());
        assert_eq!(catalog.len(), 1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "minimum repeats")]
    fn interning_reducible_sequence_panics_in_debug() {
        let mut catalog = MrCatalog::new();
        catalog.intern(&seq(&[0, 0]));
    }

    #[test]
    fn serde_round_trip_is_self_healing() {
        let mut catalog = MrCatalog::new();
        let id = catalog.intern(&seq(&[0, 1, 2]));
        let json = serde_json::to_string(&catalog).unwrap();
        let back: MrCatalog = serde_json::from_str(&json).unwrap();
        // The lookup map is rebuilt by the custom Deserialize impl — no
        // rebuild_lookup() call needed.
        assert_eq!(back.resolve(&seq(&[0, 1, 2])), Some(id));
        assert_eq!(back.len(), 1);
    }

    #[test]
    fn iter_lists_all_sequences() {
        let mut catalog = MrCatalog::new();
        catalog.intern(&seq(&[0]));
        catalog.intern(&seq(&[0, 1]));
        let all: Vec<_> = catalog.iter().map(|(_, s)| s.to_vec()).collect();
        assert_eq!(all, vec![seq(&[0]), seq(&[0, 1])]);
    }
}
