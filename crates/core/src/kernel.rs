//! Bit-parallel frontier kernels with runtime-dispatched SIMD.
//!
//! Every traversal in the workspace — the baseline BFS/BiBFS/DFS product
//! searches, the hybrid layer's repetition closures, and the sharded
//! stitcher — explores dense slot spaces (`vertex × NFA-state` products or
//! plain vertex sets). This module re-represents those visited/frontier
//! sets as dense `u64` bitset words so that dedup, settled checks, and
//! frontier meets process 64 slots per operation:
//!
//! * [`FrontierSet`] — an epoch-stamped bitset. The epoch-stamp trick of
//!   the scalar scratch tables carries over at *word* granularity: each
//!   64-bit word has a `u32` stamp, a word participates only when its
//!   stamp equals the set's current epoch, and clearing between queries is
//!   a single epoch bump (no per-query allocation, no O(slots) clear).
//! * [`WordOps`] — the word-wise kernel behind the set operations:
//!   intersection tests (`intersects`), OR-expansion (`or_expand`) and
//!   population counts (`count_ones`) over epoch-masked word arrays.
//!
//! Two `WordOps` backends exist behind one trait object: a portable
//! generic backend (plain scalar word loops, compiled on every platform)
//! and a SIMD lane — AVX2 on `x86_64`, NEON on `aarch64` — selected once
//! at first use via runtime feature detection. One binary therefore runs
//! vectorized where the CPU supports it and falls back to the generic
//! reference everywhere else. The choice can be forced for testing with
//! the `RLC_KERNEL=generic|simd` environment variable or switched
//! in-process with [`set_kernel`]; both backends produce bit-identical
//! results (the `simd_vs_generic` bench asserts this on every row).
//!
//! [`KernelScratch`] bundles the frontier sets and work queue a closure
//! traversal needs, behind a thread-local pool ([`with_kernel_scratch`])
//! so steady-state evaluation stays allocation-free.

use rlc_graph::VertexId;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU8, Ordering};

/// Bits per frontier word.
const WORD_BITS: usize = 64;

/// A borrowed, epoch-masked view of a [`FrontierSet`]'s word array.
///
/// A word at position `i` contributes its stored bits iff
/// `stamps[i] == epoch`; otherwise it reads as an all-zero word (it is
/// left over from an earlier traversal and has not been lazily cleared
/// yet). `words` and `stamps` always have equal length.
#[derive(Clone, Copy, Debug)]
pub struct WordsView<'a> {
    /// The bitset words.
    pub words: &'a [u64],
    /// Per-word epoch stamps.
    pub stamps: &'a [u32],
    /// The epoch a stamp must equal for its word to be live.
    pub epoch: u32,
}

/// The word-wise kernel operations, implemented by the generic backend and
/// the per-architecture SIMD backends. All implementations are
/// answer-identical; only throughput differs. Operations over two views
/// run over the common word prefix (bits past the shorter array are
/// absent from that set, so they cannot contribute to an intersection or
/// union).
pub trait WordOps: Sync + Send {
    /// Backend name for diagnostics: `"generic"`, `"avx2"`, or `"neon"`.
    fn name(&self) -> &'static str;

    /// Whether the two epoch-masked bitsets share at least one set bit.
    /// Early-exits on the first intersecting word.
    fn intersects(&self, a: WordsView<'_>, b: WordsView<'_>) -> bool;

    /// ORs the live words of `src` into the destination set (given by its
    /// raw parts) over the common prefix, stamping every touched
    /// destination word live at `dst_epoch`. Returns whether any
    /// destination bit changed.
    fn or_expand(
        &self,
        dst_words: &mut [u64],
        dst_stamps: &mut [u32],
        dst_epoch: u32,
        src: WordsView<'_>,
    ) -> bool;

    /// Population count over the live words of the view.
    fn count_ones(&self, a: WordsView<'_>) -> usize;
}

// ---------------------------------------------------------------------------
// Generic backend: portable scalar word loops. This is the reference
// semantics; the SIMD lanes must match it bit-for-bit.
// ---------------------------------------------------------------------------

struct GenericKernel;

#[inline]
fn live(word: u64, stamp: u32, epoch: u32) -> u64 {
    if stamp == epoch {
        word
    } else {
        0
    }
}

impl WordOps for GenericKernel {
    fn name(&self) -> &'static str {
        "generic"
    }

    fn intersects(&self, a: WordsView<'_>, b: WordsView<'_>) -> bool {
        a.words
            .iter()
            .zip(a.stamps)
            .zip(b.words.iter().zip(b.stamps))
            .any(|((&aw, &ast), (&bw, &bst))| live(aw, ast, a.epoch) & live(bw, bst, b.epoch) != 0)
    }

    fn or_expand(
        &self,
        dst_words: &mut [u64],
        dst_stamps: &mut [u32],
        dst_epoch: u32,
        src: WordsView<'_>,
    ) -> bool {
        let mut changed = false;
        for ((dw, ds), (&sw, &sst)) in dst_words
            .iter_mut()
            .zip(dst_stamps.iter_mut())
            .zip(src.words.iter().zip(src.stamps))
        {
            let old = live(*dw, *ds, dst_epoch);
            let new = old | live(sw, sst, src.epoch);
            changed |= new != old;
            *dw = new;
            *ds = dst_epoch;
        }
        changed
    }

    fn count_ones(&self, a: WordsView<'_>) -> usize {
        a.words
            .iter()
            .zip(a.stamps)
            .map(|(&w, &s)| live(w, s, a.epoch).count_ones() as usize)
            .sum()
    }
}

static GENERIC: GenericKernel = GenericKernel;

// ---------------------------------------------------------------------------
// AVX2 backend (x86_64): 4 words (256 bits) per step. The per-word u32
// stamps are compared against the epoch with a 128-bit compare whose
// 0/-1 lanes are sign-extended to 64-bit masks, so the epoch filter is
// applied in-register with no branches.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{live, WordsView};
    use std::arch::x86_64::*;

    /// Loads 4 words starting at `i`, masked by their epoch stamps.
    ///
    /// # Safety
    /// Requires AVX2; `i + 4` must not exceed the array lengths.
    #[inline]
    #[target_feature(enable = "avx2,popcnt")]
    unsafe fn masked_load(
        words: *const u64,
        stamps: *const u32,
        epoch: __m128i,
        i: usize,
    ) -> __m256i {
        let w = _mm256_loadu_si256(words.add(i) as *const __m256i);
        let s = _mm_loadu_si128(stamps.add(i) as *const __m128i);
        // 0/-1 per 32-bit stamp lane, widened to a 0/-1 64-bit word mask.
        let mask = _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(s, epoch));
        _mm256_and_si256(w, mask)
    }

    /// # Safety
    /// Requires AVX2 + POPCNT (checked by the dispatcher).
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn intersects(a: WordsView<'_>, b: WordsView<'_>) -> bool {
        let n = a.words.len().min(b.words.len());
        let ae = _mm_set1_epi32(a.epoch as i32);
        let be = _mm_set1_epi32(b.epoch as i32);
        let mut i = 0;
        while i + 4 <= n {
            let aw = masked_load(a.words.as_ptr(), a.stamps.as_ptr(), ae, i);
            let bw = masked_load(b.words.as_ptr(), b.stamps.as_ptr(), be, i);
            let hit = _mm256_and_si256(aw, bw);
            if _mm256_testz_si256(hit, hit) == 0 {
                return true;
            }
            i += 4;
        }
        while i < n {
            if live(a.words[i], a.stamps[i], a.epoch) & live(b.words[i], b.stamps[i], b.epoch) != 0
            {
                return true;
            }
            i += 1;
        }
        false
    }

    /// # Safety
    /// Requires AVX2 + POPCNT (checked by the dispatcher).
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn or_expand(
        dst_words: &mut [u64],
        dst_stamps: &mut [u32],
        dst_epoch: u32,
        src: WordsView<'_>,
    ) -> bool {
        let n = dst_words.len().min(src.words.len());
        let de = _mm_set1_epi32(dst_epoch as i32);
        let se = _mm_set1_epi32(src.epoch as i32);
        let mut changed = false;
        let mut i = 0;
        while i + 4 <= n {
            let old = masked_load(dst_words.as_ptr(), dst_stamps.as_ptr(), de, i);
            let s = masked_load(src.words.as_ptr(), src.stamps.as_ptr(), se, i);
            let new = _mm256_or_si256(old, s);
            let diff = _mm256_xor_si256(new, old);
            if _mm256_testz_si256(diff, diff) == 0 {
                changed = true;
            }
            _mm256_storeu_si256(dst_words.as_mut_ptr().add(i) as *mut __m256i, new);
            _mm_storeu_si128(dst_stamps.as_mut_ptr().add(i) as *mut __m128i, de);
            i += 4;
        }
        while i < n {
            let old = live(dst_words[i], dst_stamps[i], dst_epoch);
            let new = old | live(src.words[i], src.stamps[i], src.epoch);
            changed |= new != old;
            dst_words[i] = new;
            dst_stamps[i] = dst_epoch;
            i += 1;
        }
        changed
    }

    /// # Safety
    /// Requires AVX2 + POPCNT (checked by the dispatcher) — the live-word
    /// counts lower to the hardware `popcnt` instruction.
    #[target_feature(enable = "avx2,popcnt")]
    pub unsafe fn count_ones(a: WordsView<'_>) -> usize {
        let mut total = 0usize;
        for (&w, &s) in a.words.iter().zip(a.stamps) {
            total += live(w, s, a.epoch).count_ones() as usize;
        }
        total
    }
}

#[cfg(target_arch = "x86_64")]
struct Avx2Kernel;

#[cfg(target_arch = "x86_64")]
impl WordOps for Avx2Kernel {
    fn name(&self) -> &'static str {
        "avx2"
    }

    fn intersects(&self, a: WordsView<'_>, b: WordsView<'_>) -> bool {
        // SAFETY: this backend is only selected when AVX2+POPCNT are
        // detected at runtime (see `simd_available`).
        unsafe { avx2::intersects(a, b) }
    }

    fn or_expand(
        &self,
        dst_words: &mut [u64],
        dst_stamps: &mut [u32],
        dst_epoch: u32,
        src: WordsView<'_>,
    ) -> bool {
        // SAFETY: as above — AVX2+POPCNT presence is a selection invariant.
        unsafe { avx2::or_expand(dst_words, dst_stamps, dst_epoch, src) }
    }

    fn count_ones(&self, a: WordsView<'_>) -> usize {
        // SAFETY: as above — AVX2+POPCNT presence is a selection invariant.
        unsafe { avx2::count_ones(a) }
    }
}

#[cfg(target_arch = "x86_64")]
static AVX2_KERNEL: Avx2Kernel = Avx2Kernel;

// ---------------------------------------------------------------------------
// NEON backend (aarch64): 2 words (128 bits) per step. NEON is part of the
// baseline aarch64 feature set, so detection effectively always succeeds;
// the runtime check is kept for uniformity with the x86_64 path.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{live, WordsView};
    use std::arch::aarch64::*;

    /// Loads 2 words starting at `i`, masked by their epoch stamps.
    ///
    /// # Safety
    /// Requires NEON; `i + 2` must not exceed the array lengths.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn masked_load(
        words: *const u64,
        stamps: *const u32,
        epoch: uint32x2_t,
        i: usize,
    ) -> uint64x2_t {
        let w = vld1q_u64(words.add(i));
        // 0/-1 per 32-bit stamp lane; duplicating each lane yields the
        // 0/-1 64-bit word masks.
        let cmp = vceq_u32(vld1_u32(stamps.add(i)), epoch);
        let zipped = vzip_u32(cmp, cmp);
        let mask = vreinterpretq_u64_u32(vcombine_u32(zipped.0, zipped.1));
        vandq_u64(w, mask)
    }

    /// # Safety
    /// Requires NEON (checked by the dispatcher).
    #[target_feature(enable = "neon")]
    pub unsafe fn intersects(a: WordsView<'_>, b: WordsView<'_>) -> bool {
        let n = a.words.len().min(b.words.len());
        let ae = vdup_n_u32(a.epoch);
        let be = vdup_n_u32(b.epoch);
        let mut i = 0;
        while i + 2 <= n {
            let aw = masked_load(a.words.as_ptr(), a.stamps.as_ptr(), ae, i);
            let bw = masked_load(b.words.as_ptr(), b.stamps.as_ptr(), be, i);
            let hit = vandq_u64(aw, bw);
            if vmaxvq_u32(vreinterpretq_u32_u64(hit)) != 0 {
                return true;
            }
            i += 2;
        }
        while i < n {
            if live(a.words[i], a.stamps[i], a.epoch) & live(b.words[i], b.stamps[i], b.epoch) != 0
            {
                return true;
            }
            i += 1;
        }
        false
    }

    /// # Safety
    /// Requires NEON (checked by the dispatcher).
    #[target_feature(enable = "neon")]
    pub unsafe fn or_expand(
        dst_words: &mut [u64],
        dst_stamps: &mut [u32],
        dst_epoch: u32,
        src: WordsView<'_>,
    ) -> bool {
        let n = dst_words.len().min(src.words.len());
        let de = vdup_n_u32(dst_epoch);
        let se = vdup_n_u32(src.epoch);
        let mut changed = false;
        let mut i = 0;
        while i + 2 <= n {
            let old = masked_load(dst_words.as_ptr(), dst_stamps.as_ptr(), de, i);
            let s = masked_load(src.words.as_ptr(), src.stamps.as_ptr(), se, i);
            let new = vorrq_u64(old, s);
            let diff = veorq_u64(new, old);
            if vmaxvq_u32(vreinterpretq_u32_u64(diff)) != 0 {
                changed = true;
            }
            vst1q_u64(dst_words.as_mut_ptr().add(i), new);
            vst1_u32(dst_stamps.as_mut_ptr().add(i), de);
            i += 2;
        }
        while i < n {
            let old = live(dst_words[i], dst_stamps[i], dst_epoch);
            let new = old | live(src.words[i], src.stamps[i], src.epoch);
            changed |= new != old;
            dst_words[i] = new;
            dst_stamps[i] = dst_epoch;
            i += 1;
        }
        changed
    }

    /// # Safety
    /// Requires NEON (checked by the dispatcher).
    #[target_feature(enable = "neon")]
    pub unsafe fn count_ones(a: WordsView<'_>) -> usize {
        let mut total = 0usize;
        for (&w, &s) in a.words.iter().zip(a.stamps) {
            total += live(w, s, a.epoch).count_ones() as usize;
        }
        total
    }
}

#[cfg(target_arch = "aarch64")]
struct NeonKernel;

#[cfg(target_arch = "aarch64")]
impl WordOps for NeonKernel {
    fn name(&self) -> &'static str {
        "neon"
    }

    fn intersects(&self, a: WordsView<'_>, b: WordsView<'_>) -> bool {
        // SAFETY: this backend is only selected when NEON is detected at
        // runtime (see `simd_available`).
        unsafe { neon::intersects(a, b) }
    }

    fn or_expand(
        &self,
        dst_words: &mut [u64],
        dst_stamps: &mut [u32],
        dst_epoch: u32,
        src: WordsView<'_>,
    ) -> bool {
        // SAFETY: as above — NEON presence is a selection invariant.
        unsafe { neon::or_expand(dst_words, dst_stamps, dst_epoch, src) }
    }

    fn count_ones(&self, a: WordsView<'_>) -> usize {
        // SAFETY: as above — NEON presence is a selection invariant.
        unsafe { neon::count_ones(a) }
    }
}

#[cfg(target_arch = "aarch64")]
static NEON_KERNEL: NeonKernel = NeonKernel;

// ---------------------------------------------------------------------------
// Runtime dispatch.
// ---------------------------------------------------------------------------

/// Which kernel backend to use. See [`set_kernel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    /// Runtime feature detection: the SIMD lane when the CPU supports it,
    /// the generic backend otherwise. This is the startup default (unless
    /// overridden by the `RLC_KERNEL` environment variable).
    Auto,
    /// Force the portable generic backend.
    Generic,
    /// Request the SIMD lane; falls back to generic when the CPU lacks
    /// the required features (so forcing `simd` is always safe).
    Simd,
}

const BACKEND_UNSET: u8 = 0;
const BACKEND_GENERIC: u8 = 1;
const BACKEND_SIMD: u8 = 2;

/// The resolved backend: `BACKEND_UNSET` until first use, then one of
/// `BACKEND_GENERIC`/`BACKEND_SIMD`. An atomic (rather than a `OnceLock`)
/// so [`set_kernel`] can switch backends in-process — the differential
/// tests and the `simd_vs_generic` bench run both lanes in one binary.
static BACKEND: AtomicU8 = AtomicU8::new(BACKEND_UNSET);

/// Whether the CPU provides the features the SIMD lane needs.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2") && is_x86_feature_detected!("popcnt")
    }
    #[cfg(target_arch = "aarch64")]
    {
        std::arch::is_aarch64_feature_detected!("neon")
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        false
    }
}

fn simd_backend() -> &'static dyn WordOps {
    #[cfg(target_arch = "x86_64")]
    {
        &AVX2_KERNEL
    }
    #[cfg(target_arch = "aarch64")]
    {
        &NEON_KERNEL
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        &GENERIC
    }
}

fn resolve(choice: KernelChoice) -> u8 {
    match choice {
        KernelChoice::Generic => BACKEND_GENERIC,
        KernelChoice::Auto | KernelChoice::Simd => {
            if simd_supported() {
                BACKEND_SIMD
            } else {
                BACKEND_GENERIC
            }
        }
    }
}

/// Parses an `RLC_KERNEL` value; unknown strings mean [`KernelChoice::Auto`].
fn parse_choice(value: &str) -> KernelChoice {
    match value {
        "generic" => KernelChoice::Generic,
        "simd" => KernelChoice::Simd,
        _ => KernelChoice::Auto,
    }
}

fn env_choice() -> KernelChoice {
    match std::env::var("RLC_KERNEL") {
        Ok(value) => parse_choice(&value),
        Err(_) => KernelChoice::Auto,
    }
}

fn backend_for(id: u8) -> &'static dyn WordOps {
    if id == BACKEND_SIMD {
        simd_backend()
    } else {
        &GENERIC
    }
}

/// The active [`WordOps`] backend.
///
/// The first call resolves the backend once: the `RLC_KERNEL` environment
/// variable (`generic` or `simd`) if set, otherwise runtime feature
/// detection (AVX2 on `x86_64`, NEON on `aarch64`, generic elsewhere).
/// After that the hot path is a single relaxed atomic load.
pub fn kernel() -> &'static dyn WordOps {
    // rlc-analyze: allow(atomic-pairing) — any value read is a valid backend tag; races re-resolve
    let mut id = BACKEND.load(Ordering::Relaxed);
    if id == BACKEND_UNSET {
        id = resolve(env_choice());
        // rlc-analyze: allow(atomic-pairing) — idempotent resolution; concurrent stores agree
        BACKEND.store(id, Ordering::Relaxed);
    }
    backend_for(id)
}

/// Forces the kernel backend for the whole process and returns the name
/// of the backend actually selected (`Simd` silently degrades to
/// `"generic"` on CPUs without the required features; `Auto` restores the
/// detection default). Intended for tests and benches that compare lanes.
pub fn set_kernel(choice: KernelChoice) -> &'static str {
    let id = resolve(choice);
    // rlc-analyze: allow(atomic-pairing) — backend id is a self-contained tag; no data is published
    BACKEND.store(id, Ordering::Relaxed);
    backend_for(id).name()
}

/// The name of the active backend: `"generic"`, `"avx2"`, or `"neon"`.
pub fn kernel_name() -> &'static str {
    kernel().name()
}

// ---------------------------------------------------------------------------
// FrontierSet.
// ---------------------------------------------------------------------------

/// A dense bitset over traversal slots with word-granular lazy clearing.
///
/// A "slot" is whatever dense encoding the traversal uses (a vertex id,
/// or `vertex * state_count + state` for product searches). Each 64-slot
/// word carries a `u32` epoch stamp; the word's bits are meaningful only
/// when the stamp equals the set's current epoch, so [`begin`] clears the
/// whole set by bumping a counter and stale words are zeroed lazily on
/// first touch. This keeps the O(1)-clear property of the scalar
/// epoch-stamp tables while shrinking the per-slot footprint from 32 bits
/// to 1 bit (plus 0.5 bits of stamp).
///
/// [`begin`]: FrontierSet::begin
#[derive(Debug, Default)]
pub struct FrontierSet {
    words: Vec<u64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl FrontierSet {
    /// Creates an empty set. Call [`Self::begin`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new traversal over `slots` slots: grows the word tables
    /// if needed and invalidates every previously set bit via an epoch
    /// bump (with a full stamp reset once every 2^32 traversals, when the
    /// epoch counter wraps — see the wraparound regression tests).
    pub fn begin(&mut self, slots: usize) {
        self.reserve_words(slots);
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: a stale stamp from 2^32 traversals ago
            // could otherwise equal the fresh epoch and resurrect bits.
            self.stamps.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
    }

    /// Grows the set to cover `slots` slots *without* starting a new
    /// traversal (existing bits stay valid). For lazily-sized secondary
    /// sets, mirroring the scalar scratch's `ensure_backward`.
    pub fn ensure(&mut self, slots: usize) {
        self.reserve_words(slots);
    }

    fn reserve_words(&mut self, slots: usize) {
        let words = slots.div_ceil(WORD_BITS);
        if self.words.len() < words {
            self.words.resize(words, 0);
            // Fresh stamps are 0; `begin` guarantees the live epoch is
            // never 0, so new words start dead.
            self.stamps.resize(words, 0);
        }
    }

    #[inline]
    fn split(slot: usize) -> (usize, u64) {
        (slot / WORD_BITS, 1u64 << (slot % WORD_BITS))
    }

    /// Sets `slot` and returns whether it was already set. Lazily clears
    /// the containing word if it is stale.
    #[inline]
    pub fn test_and_set(&mut self, slot: usize) -> bool {
        let (w, bit) = Self::split(slot);
        if self.stamps[w] != self.epoch {
            self.stamps[w] = self.epoch;
            self.words[w] = 0;
        }
        let was = self.words[w] & bit != 0;
        self.words[w] |= bit;
        was
    }

    /// Whether `slot` is set in the current traversal.
    #[inline]
    pub fn contains(&self, slot: usize) -> bool {
        let (w, bit) = Self::split(slot);
        self.stamps[w] == self.epoch && self.words[w] & bit != 0
    }

    /// An epoch-masked view of the word array, for [`WordOps`] calls.
    pub fn view(&self) -> WordsView<'_> {
        WordsView {
            words: &self.words,
            stamps: &self.stamps,
            epoch: self.epoch,
        }
    }

    /// Whether this set and `other` share a bit (dispatched word-wise
    /// intersection with early exit).
    pub fn intersects(&self, other: &FrontierSet) -> bool {
        kernel().intersects(self.view(), other.view())
    }

    /// ORs every bit of `src` into this set over the common prefix;
    /// returns whether anything changed (dispatched word-wise OR-expand).
    pub fn union_from(&mut self, src: &FrontierSet) -> bool {
        let epoch = self.epoch;
        kernel().or_expand(&mut self.words, &mut self.stamps, epoch, src.view())
    }

    /// Number of set bits (dispatched popcount).
    pub fn count(&self) -> usize {
        kernel().count_ones(self.view())
    }

    /// Calls `f` with every set slot, in ascending order.
    pub fn for_each_set(&self, mut f: impl FnMut(usize)) {
        for (i, (&w, &s)) in self.words.iter().zip(&self.stamps).enumerate() {
            if s != self.epoch {
                continue;
            }
            let mut bits = w;
            while bits != 0 {
                f(i * WORD_BITS + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }

    /// Resident heap footprint in bytes (word + stamp tables).
    pub fn memory_bytes(&self) -> usize {
        self.words.capacity() * std::mem::size_of::<u64>()
            + self.stamps.capacity() * std::mem::size_of::<u32>()
    }

    /// Sets the epoch counter directly, so tests can drive the
    /// wraparound path without 2^32 traversals. Not part of the API.
    #[doc(hidden)]
    pub fn force_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
    }

    /// The current epoch (exposed for wraparound tests).
    #[doc(hidden)]
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

// ---------------------------------------------------------------------------
// KernelScratch: pooled per-thread traversal state.
// ---------------------------------------------------------------------------

/// Reusable state for closure traversals over the word representation:
/// a product-slot visited set, vertex-level boundary and hop-memo sets,
/// and a work queue of `(vertex, state)` pairs. Acquired from a
/// thread-local pool via [`with_kernel_scratch`] so steady-state batch
/// evaluation performs no per-query allocation.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// Visited set over product slots (`vertex * period + offset`).
    pub visited: FrontierSet,
    /// Result accumulator over vertices.
    pub boundary: FrontierSet,
    /// Secondary vertex-level set (hop dedup in the sharded stitcher).
    pub hopped: FrontierSet,
    /// BFS work queue of `(vertex, state)` pairs.
    pub queue: VecDeque<(VertexId, u32)>,
}

impl KernelScratch {
    /// Creates empty scratch state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resident heap footprint in bytes (all three bitsets + queue).
    pub fn memory_bytes(&self) -> usize {
        self.visited.memory_bytes()
            + self.boundary.memory_bytes()
            + self.hopped.memory_bytes()
            + self.queue.capacity() * std::mem::size_of::<(VertexId, u32)>()
    }
}

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<KernelScratch>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a [`KernelScratch`] from this thread's pool. Re-entrant:
/// a nested call receives a second scratch instead of aliasing the outer
/// one. (If `f` panics its scratch is dropped, not returned to the pool.)
pub fn with_kernel_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    let mut scratch = SCRATCH_POOL
        .with(|pool| pool.borrow_mut().pop())
        .unwrap_or_default();
    let result = f(&mut scratch);
    SCRATCH_POOL.with(|pool| pool.borrow_mut().push(scratch));
    result
}

/// Resident bytes of the calling thread's idle kernel-scratch pool —
/// the word tables queries on this thread have grown and parked. Lets
/// stats surfaces price the traversal scratch alongside index structures.
pub fn pooled_scratch_bytes() -> usize {
    SCRATCH_POOL.with(|pool| pool.borrow().iter().map(|s| s.memory_bytes()).sum())
}

/// Heap-allocation counting for allocation-freedom proofs.
///
/// The serve crate's load-shedding path promises to write its preformatted
/// 503/504 responses without touching the allocator — a server already out
/// of memory headroom must be able to say "go away" without asking for more.
/// "No allocation" is a claim only the allocator itself can certify, so this
/// module provides a counting [`GlobalAlloc`] wrapper around [`System`]: a
/// test binary installs it via `#[global_allocator]`, snapshots
/// [`allocation_count`] around the path under test, and asserts the delta is
/// zero. Counter-based, not heuristic.
///
/// It lives here because implementing [`GlobalAlloc`] is necessarily
/// `unsafe`, and this kernel module is the one place the workspace confines
/// `unsafe` code to (enforced by `rlc-analyze`'s unsafe-confinement rule).
/// The wrapper adds one relaxed atomic increment per allocation and
/// delegates everything else verbatim, so installing it does not change
/// allocation behavior — only observes it.
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Process-wide count of allocation calls (`alloc`, `alloc_zeroed`,
    /// and growing/shrinking via `realloc`) since process start. Only ever
    /// incremented; deallocations are not tracked because allocation-freedom
    /// proofs only care that nothing was *requested*.
    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// The observed allocation-call total. Meaningful only in a binary that
    /// installed [`CountingAllocator`] as its `#[global_allocator]`;
    /// elsewhere it stays zero.
    pub fn allocation_count() -> u64 {
        // rlc-analyze: allow(atomic-pairing) — count read for reporting; exactness not required
        ALLOCATIONS.load(Ordering::Relaxed)
    }

    /// A [`System`]-delegating allocator that counts allocation calls.
    ///
    /// ```ignore
    /// #[global_allocator]
    /// static ALLOC: rlc_core::kernel::alloc_count::CountingAllocator =
    ///     rlc_core::kernel::alloc_count::CountingAllocator;
    /// ```
    pub struct CountingAllocator;

    // SAFETY: every method delegates verbatim to `System`, which upholds the
    // `GlobalAlloc` contract; the only addition is a relaxed counter bump,
    // which cannot affect the returned pointers or layouts.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            // rlc-analyze: allow(atomic-pairing) — observational counter bump; nothing is published
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            // rlc-analyze: allow(atomic-pairing) — observational counter bump; nothing is published
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // rlc-analyze: allow(atomic-pairing) — observational counter bump; nothing is published
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test_roundtrip() {
        let mut set = FrontierSet::new();
        set.begin(200);
        assert!(!set.test_and_set(3));
        assert!(set.test_and_set(3));
        assert!(set.contains(3));
        assert!(!set.contains(4));
        assert!(!set.contains(199));
        assert!(!set.test_and_set(199));
        assert!(set.contains(199));
    }

    #[test]
    fn begin_clears_previous_traversal() {
        let mut set = FrontierSet::new();
        set.begin(128);
        set.test_and_set(7);
        set.test_and_set(100);
        set.begin(128);
        assert!(!set.contains(7));
        assert!(!set.contains(100));
        assert_eq!(set.count(), 0);
    }

    #[test]
    fn epoch_wraparound_resets_stamps() {
        let mut set = FrontierSet::new();
        set.begin(64); // epoch 1
        set.test_and_set(5);
        // Fast-forward to the wrap: the next begin would recycle epoch
        // value 1, under which slot 5's word was stamped live.
        set.force_epoch(u32::MAX);
        set.begin(64);
        assert_eq!(set.epoch(), 1);
        assert!(
            !set.contains(5),
            "stale bits must not resurrect across an epoch wrap"
        );
        assert_eq!(set.count(), 0);
    }

    #[test]
    fn ensure_grows_without_clearing() {
        let mut set = FrontierSet::new();
        set.begin(64);
        set.test_and_set(10);
        set.ensure(1024);
        assert!(set.contains(10));
        assert!(!set.contains(1000));
        assert!(!set.test_and_set(1000));
        assert!(set.contains(1000));
    }

    #[test]
    fn for_each_set_is_ascending_and_complete() {
        let mut set = FrontierSet::new();
        set.begin(300);
        for slot in [255, 0, 64, 63, 130, 299] {
            set.test_and_set(slot);
        }
        let mut seen = Vec::new();
        set.for_each_set(|slot| seen.push(slot));
        assert_eq!(seen, vec![0, 63, 64, 130, 255, 299]);
        assert_eq!(set.count(), 6);
    }

    #[test]
    fn union_from_merges_and_reports_change() {
        let mut a = FrontierSet::new();
        let mut b = FrontierSet::new();
        a.begin(256);
        b.begin(256);
        a.test_and_set(1);
        b.test_and_set(1);
        b.test_and_set(200);
        assert!(a.union_from(&b));
        assert!(a.contains(1));
        assert!(a.contains(200));
        assert!(!a.union_from(&b), "second union must be a no-op");
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn intersects_respects_epoch_masking() {
        let mut a = FrontierSet::new();
        let mut b = FrontierSet::new();
        a.begin(256);
        b.begin(256);
        a.test_and_set(70);
        b.test_and_set(71);
        assert!(!a.intersects(&b));
        b.test_and_set(70);
        assert!(a.intersects(&b));
        // Stale words must read as empty: b's bits die with its epoch bump.
        b.begin(256);
        assert!(!a.intersects(&b));
    }

    /// Builds a deterministic pseudo-random view with a mix of live and
    /// stale words, so backend comparisons exercise the epoch masking.
    fn scrambled(seed: u64, words: usize, epoch: u32) -> (Vec<u64>, Vec<u32>) {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut ws = Vec::with_capacity(words);
        let mut ss = Vec::with_capacity(words);
        for _ in 0..words {
            ws.push(next());
            // ~half the words stale, with garbage bits left in them.
            ss.push(if next() % 2 == 0 {
                epoch
            } else {
                epoch ^ 0x5a5a
            });
        }
        (ws, ss)
    }

    #[test]
    fn simd_and_generic_backends_agree() {
        if !simd_supported() {
            return; // generic-only platform: nothing to compare.
        }
        let simd = simd_backend();
        for seed in 0..24u64 {
            // Odd lengths exercise the scalar tails past the SIMD chunks.
            let words = (seed as usize % 9) + 1;
            let (aw, ast) = scrambled(seed, words, 7);
            let (bw, bst) = scrambled(seed + 1000, words, 9);
            let a = WordsView {
                words: &aw,
                stamps: &ast,
                epoch: 7,
            };
            let b = WordsView {
                words: &bw,
                stamps: &bst,
                epoch: 9,
            };
            assert_eq!(
                GENERIC.intersects(a, b),
                simd.intersects(a, b),
                "seed {seed}"
            );
            assert_eq!(GENERIC.count_ones(a), simd.count_ones(a), "seed {seed}");

            let mut dw_g = aw.clone();
            let mut ds_g = ast.clone();
            let mut dw_s = aw.clone();
            let mut ds_s = ast.clone();
            let changed_g = GENERIC.or_expand(&mut dw_g, &mut ds_g, 7, b);
            let changed_s = simd.or_expand(&mut dw_s, &mut ds_s, 7, b);
            assert_eq!(changed_g, changed_s, "seed {seed}");
            assert_eq!(dw_g, dw_s, "seed {seed}");
            assert_eq!(ds_g, ds_s, "seed {seed}");
        }
    }

    #[test]
    fn backend_dispatch_respects_forced_choice() {
        // All name assertions live in this one test: `set_kernel` flips a
        // process-global, and concurrent tests may observe (harmlessly —
        // answers are backend-identical) but must not assert the name.
        let name = set_kernel(KernelChoice::Generic);
        assert_eq!(name, "generic");
        assert_eq!(kernel_name(), "generic");
        let forced = set_kernel(KernelChoice::Simd);
        if simd_supported() {
            assert!(forced == "avx2" || forced == "neon", "got {forced}");
        } else {
            assert_eq!(forced, "generic", "Simd must degrade gracefully");
        }
        let auto = set_kernel(KernelChoice::Auto);
        assert_eq!(auto == "generic", !simd_supported());
    }

    #[test]
    fn env_values_parse_as_documented() {
        assert_eq!(parse_choice("generic"), KernelChoice::Generic);
        assert_eq!(parse_choice("simd"), KernelChoice::Simd);
        assert_eq!(parse_choice(""), KernelChoice::Auto);
        assert_eq!(parse_choice("avx512"), KernelChoice::Auto);
    }

    #[test]
    fn scratch_pool_is_reentrant_and_priced() {
        let outer_bytes = with_kernel_scratch(|outer| {
            outer.visited.begin(10_000);
            outer.visited.test_and_set(1234);
            // A nested acquisition must not alias the outer scratch.
            with_kernel_scratch(|inner| {
                inner.visited.begin(64);
                assert!(!inner.visited.contains(34));
            });
            assert!(outer.visited.contains(1234));
            outer.memory_bytes()
        });
        assert!(outer_bytes > 0);
        assert!(
            pooled_scratch_bytes() >= outer_bytes,
            "released scratch must be visible to the pool pricing"
        );
    }
}
