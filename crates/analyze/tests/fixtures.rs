//! Fixture corpus: known-good and known-bad files per rule, checked
//! under virtual paths and asserted against exact diagnostic spans.
//! The `fixtures/` directory is excluded from `check`'s walk, so the
//! deliberately bad files never pollute a real run.
//!
//! The `flow_launder_bad` / `flow_const_good` pair is the differential
//! regression for the v1 → v2 untrusted-length migration: the first is
//! a false negative of the identifier-sharing heuristic (v1 silent, v2
//! flags with a trace), the second a false positive (v1 flags, v2
//! silent). Both directions are asserted via the shadow channel.

use rlc_analyze::analyze::analyze_source;
use rlc_analyze::rules;

/// Virtual path of ordinary library code.
const LIB: &str = "crates/demo/src/lib.rs";
/// Virtual path of the one module where unsafe and intrinsics live.
const KERNEL: &str = "crates/core/src/kernel.rs";

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs the full analysis and returns `(line, col, rule)` finding spans.
fn spans(name: &str, virtual_path: &str) -> Vec<(u32, u32, &'static str)> {
    analyze_source(virtual_path, &fixture(name))
        .findings
        .into_iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect()
}

/// Same, for the shadow (v1 differential) channel.
fn shadow_spans(name: &str, virtual_path: &str) -> Vec<(u32, u32, &'static str)> {
    analyze_source(virtual_path, &fixture(name))
        .shadow
        .into_iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect()
}

#[test]
fn unsafe_good_kernel_path_is_clean() {
    assert_eq!(spans("unsafe_good.rs", KERNEL), vec![]);
}

#[test]
fn unsafe_bad_is_flagged_at_the_block() {
    assert_eq!(
        spans("unsafe_bad.rs", LIB),
        vec![(5, 5, rules::UNSAFE_CONFINEMENT)]
    );
}

#[test]
fn intrinsics_good_docs_may_mention_arch() {
    assert_eq!(spans("intrinsics_good.rs", LIB), vec![]);
}

#[test]
fn intrinsics_bad_flags_arch_path_and_feature_detection() {
    assert_eq!(
        spans("intrinsics_bad.rs", LIB),
        vec![
            (4, 11, rules::INTRINSICS_CONFINEMENT),
            (7, 5, rules::INTRINSICS_CONFINEMENT),
        ]
    );
}

#[test]
fn panic_good_tests_may_unwrap() {
    assert_eq!(spans("panic_good.rs", LIB), vec![]);
}

#[test]
fn panic_bad_flags_unwrap_and_todo() {
    assert_eq!(
        spans("panic_bad.rs", LIB),
        vec![
            (5, 31, rules::PANIC_FREE_LIBRARY),
            (10, 5, rules::PANIC_FREE_LIBRARY),
        ]
    );
}

#[test]
fn untrusted_good_checked_len_flow_is_clean_in_both_engines() {
    assert_eq!(spans("untrusted_good.rs", LIB), vec![]);
    assert_eq!(shadow_spans("untrusted_good.rs", LIB), vec![]);
}

#[test]
fn untrusted_bad_flags_every_sink_form() {
    assert_eq!(
        spans("untrusted_bad.rs", LIB),
        vec![
            (6, 24, rules::UNTRUSTED_LENGTH_FLOW),
            (7, 9, rules::UNTRUSTED_LENGTH_FLOW),
            (13, 5, rules::UNTRUSTED_LENGTH_FLOW),
        ]
    );
    // v1 knew with_capacity and vec![_; n] but not Vec::resize.
    assert_eq!(
        shadow_spans("untrusted_bad.rs", LIB),
        vec![
            (6, 24, rules::UNTRUSTED_LENGTH),
            (13, 5, rules::UNTRUSTED_LENGTH),
        ]
    );
}

#[test]
fn laundered_length_is_a_v1_false_negative_v2_catches() {
    // v1: `n` appears inside a checked_len call, so identifier sharing
    // calls the sink sanitized — silence.
    assert_eq!(shadow_spans("flow_launder_bad.rs", LIB), vec![]);
    // v2: the dataflow sees the final `n` rebound from the unchecked
    // `declared`, and reports the provenance chain.
    let report = analyze_source(LIB, &fixture("flow_launder_bad.rs"));
    let flow: Vec<(u32, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect();
    assert_eq!(flow, vec![(13, 5, rules::UNTRUSTED_LENGTH_FLOW)]);
    let trace = &report.findings[0].trace;
    assert!(
        trace.len() >= 2,
        "expected a multi-step provenance trace, got {trace:?}"
    );
    assert!(
        trace
            .iter()
            .any(|s| s.note.contains("`n` derives from tainted `declared`")),
        "trace must name the laundering rebind: {trace:?}"
    );
}

#[test]
fn constant_rebind_is_a_v1_false_positive_v2_accepts() {
    // v1: `count` shares no identifier with a checked_len call — flagged.
    assert_eq!(
        shadow_spans("flow_const_good.rs", LIB),
        vec![(9, 10, rules::UNTRUSTED_LENGTH)]
    );
    // v2: the binding is rebound to a constant before the sink.
    assert_eq!(spans("flow_const_good.rs", LIB), vec![]);
}

#[test]
fn lock_order_good_consistent_order_is_clean() {
    assert_eq!(spans("lock_order_good.rs", LIB), vec![]);
}

#[test]
fn lock_order_bad_reports_the_cycle_with_both_witnesses() {
    let report = analyze_source(LIB, &fixture("lock_order_bad.rs"));
    let got: Vec<(u32, u32, &str)> = report
        .findings
        .iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect();
    assert_eq!(got, vec![(14, 20, rules::LOCK_ORDER)]);
    let f = &report.findings[0];
    assert!(
        f.message.contains("cycle `left` -> `right` -> `left`"),
        "{}",
        f.message
    );
    assert!(f.message.contains("witness 1:"), "{}", f.message);
    assert!(f.message.contains("witness 2:"), "{}", f.message);
    // The forward witness goes through the one-hop call edge.
    assert!(
        f.trace.iter().any(|s| s
            .note
            .contains("`forward` calls `take_right` while holding `left`")),
        "{:?}",
        f.trace
    );
    // The backward witness is the direct nesting.
    assert!(
        f.trace.iter().any(|s| s
            .note
            .contains("`backward` then acquires `left` while holding `right`")),
        "{:?}",
        f.trace
    );
}

#[test]
fn pairing_good_acqrel_seqcst_and_matched_pairs_are_clean() {
    assert_eq!(spans("pairing_good.rs", LIB), vec![]);
}

#[test]
fn pairing_bad_flags_unpaired_release_acquire_and_relaxed() {
    assert_eq!(
        spans("pairing_bad.rs", LIB),
        vec![
            (7, 29, rules::ATOMIC_PAIRING),
            (11, 26, rules::ATOMIC_PAIRING),
            (15, 26, rules::ATOMIC_PAIRING),
        ]
    );
}

#[test]
fn atomic_good_paired_orderings_and_justified_relaxed() {
    let report = analyze_source(LIB, &fixture("atomic_good.rs"));
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.suppressions.len(), 1);
    let (file, s) = &report.suppressions[0];
    assert_eq!(file, LIB);
    assert!(s.used);
    assert_eq!(s.rule, rules::ATOMIC_PAIRING);
}

#[test]
fn atomic_bad_flags_unjustified_relaxed() {
    assert_eq!(
        spans("atomic_bad.rs", LIB),
        vec![(7, 28, rules::ATOMIC_PAIRING)]
    );
}

#[test]
fn deprecated_good_docs_may_name_retired_api() {
    assert_eq!(spans("deprecated_good.rs", LIB), vec![]);
}

#[test]
fn deprecated_bad_flags_attribute_and_retired_name() {
    assert_eq!(
        spans("deprecated_bad.rs", LIB),
        vec![
            (4, 3, rules::DEPRECATED_SURFACE),
            (5, 8, rules::DEPRECATED_SURFACE),
        ]
    );
}

#[test]
fn hygiene_good_directive_discharges_and_is_counted() {
    let report = analyze_source(LIB, &fixture("hygiene_good.rs"));
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.suppressions.len(), 1);
    let (_, s) = &report.suppressions[0];
    assert!(s.used);
    assert_eq!(s.rule, rules::PANIC_FREE_LIBRARY);
    assert_eq!((s.line, s.target_line), (6, 7));
}

#[test]
fn hygiene_bad_flags_typo_missing_reason_unsuppressible_and_stale() {
    assert_eq!(
        spans("hygiene_bad.rs", LIB),
        vec![
            (5, 1, rules::SUPPRESSION_HYGIENE),
            (8, 1, rules::SUPPRESSION_HYGIENE),
            (11, 1, rules::SUPPRESSION_HYGIENE),
            (14, 1, rules::SUPPRESSION_HYGIENE),
        ]
    );
}

#[test]
fn confinement_is_a_property_of_the_path_not_the_text() {
    // The same source that is clean under the kernel path is a violation
    // everywhere else.
    let report = analyze_source(LIB, &fixture("unsafe_good.rs"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == rules::UNSAFE_CONFINEMENT));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == rules::INTRINSICS_CONFINEMENT));
}

/// The corpus-wide contract CI pins: every known-bad fixture produces
/// exactly this many findings, every known-good fixture none.
#[test]
fn corpus_exact_finding_counts() {
    let bad: &[(&str, usize)] = &[
        ("unsafe_bad.rs", 1),
        ("intrinsics_bad.rs", 2),
        ("panic_bad.rs", 2),
        ("untrusted_bad.rs", 3),
        ("flow_launder_bad.rs", 1),
        ("lock_order_bad.rs", 1),
        ("pairing_bad.rs", 3),
        ("atomic_bad.rs", 1),
        ("deprecated_bad.rs", 2),
        ("hygiene_bad.rs", 4),
    ];
    for (name, expect) in bad {
        let got = spans(name, LIB).len();
        assert_eq!(
            got, *expect,
            "{name}: expected {expect} findings, got {got}"
        );
    }
    let good: &[&str] = &[
        "intrinsics_good.rs",
        "panic_good.rs",
        "untrusted_good.rs",
        "flow_const_good.rs",
        "lock_order_good.rs",
        "pairing_good.rs",
        "atomic_good.rs",
        "deprecated_good.rs",
        "hygiene_good.rs",
    ];
    for name in good {
        assert_eq!(spans(name, LIB), vec![], "{name} must be clean");
    }
}
