//! Fixture corpus: one known-good and one known-bad file per rule,
//! checked under virtual paths and asserted against exact diagnostic
//! spans. The `fixtures/` directory is excluded from `check`'s walk, so
//! the deliberately bad files never pollute a real run.

use rlc_analyze::analyze::analyze_source;
use rlc_analyze::rules;

/// Virtual path of ordinary library code.
const LIB: &str = "crates/demo/src/lib.rs";
/// Virtual path of the one module where unsafe and intrinsics live.
const KERNEL: &str = "crates/core/src/kernel.rs";

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs the full per-file analysis and returns `(line, col, rule)` spans.
fn spans(name: &str, virtual_path: &str) -> Vec<(u32, u32, &'static str)> {
    analyze_source(virtual_path, &fixture(name))
        .findings
        .into_iter()
        .map(|f| (f.line, f.col, f.rule))
        .collect()
}

#[test]
fn unsafe_good_kernel_path_is_clean() {
    assert_eq!(spans("unsafe_good.rs", KERNEL), vec![]);
}

#[test]
fn unsafe_bad_is_flagged_at_the_block() {
    assert_eq!(
        spans("unsafe_bad.rs", LIB),
        vec![(5, 5, rules::UNSAFE_CONFINEMENT)]
    );
}

#[test]
fn intrinsics_good_docs_may_mention_arch() {
    assert_eq!(spans("intrinsics_good.rs", LIB), vec![]);
}

#[test]
fn intrinsics_bad_flags_arch_path_and_feature_detection() {
    assert_eq!(
        spans("intrinsics_bad.rs", LIB),
        vec![
            (4, 11, rules::INTRINSICS_CONFINEMENT),
            (7, 5, rules::INTRINSICS_CONFINEMENT),
        ]
    );
}

#[test]
fn panic_good_tests_may_unwrap() {
    assert_eq!(spans("panic_good.rs", LIB), vec![]);
}

#[test]
fn panic_bad_flags_unwrap_and_todo() {
    assert_eq!(
        spans("panic_bad.rs", LIB),
        vec![
            (5, 31, rules::PANIC_FREE_LIBRARY),
            (10, 5, rules::PANIC_FREE_LIBRARY),
        ]
    );
}

#[test]
fn untrusted_good_checked_len_flow_is_clean() {
    assert_eq!(spans("untrusted_good.rs", LIB), vec![]);
}

#[test]
fn untrusted_bad_flags_both_allocation_forms() {
    assert_eq!(
        spans("untrusted_bad.rs", LIB),
        vec![
            (6, 24, rules::UNTRUSTED_LENGTH),
            (13, 5, rules::UNTRUSTED_LENGTH),
        ]
    );
}

#[test]
fn atomic_good_acquire_release_and_justified_relaxed() {
    let report = analyze_source(LIB, &fixture("atomic_good.rs"));
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.suppressions.len(), 1);
    assert!(report.suppressions[0].used);
    assert_eq!(report.suppressions[0].rule, rules::ATOMIC_ORDERING);
}

#[test]
fn atomic_bad_flags_unjustified_relaxed() {
    assert_eq!(
        spans("atomic_bad.rs", LIB),
        vec![(7, 28, rules::ATOMIC_ORDERING)]
    );
}

#[test]
fn deprecated_good_docs_may_name_retired_api() {
    assert_eq!(spans("deprecated_good.rs", LIB), vec![]);
}

#[test]
fn deprecated_bad_flags_attribute_and_retired_name() {
    assert_eq!(
        spans("deprecated_bad.rs", LIB),
        vec![
            (4, 3, rules::DEPRECATED_SURFACE),
            (5, 8, rules::DEPRECATED_SURFACE),
        ]
    );
}

#[test]
fn hygiene_good_directive_discharges_and_is_counted() {
    let report = analyze_source(LIB, &fixture("hygiene_good.rs"));
    assert_eq!(report.findings, vec![]);
    assert_eq!(report.suppressions.len(), 1);
    let s = &report.suppressions[0];
    assert!(s.used);
    assert_eq!(s.rule, rules::PANIC_FREE_LIBRARY);
    assert_eq!((s.line, s.target_line), (6, 7));
}

#[test]
fn hygiene_bad_flags_typo_missing_reason_unsuppressible_and_stale() {
    assert_eq!(
        spans("hygiene_bad.rs", LIB),
        vec![
            (5, 1, rules::SUPPRESSION_HYGIENE),
            (8, 1, rules::SUPPRESSION_HYGIENE),
            (11, 1, rules::SUPPRESSION_HYGIENE),
            (14, 1, rules::SUPPRESSION_HYGIENE),
        ]
    );
}

#[test]
fn confinement_is_a_property_of_the_path_not_the_text() {
    // The same source that is clean under the kernel path is a violation
    // everywhere else.
    let report = analyze_source(LIB, &fixture("unsafe_good.rs"));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == rules::UNSAFE_CONFINEMENT));
    assert!(report
        .findings
        .iter()
        .any(|f| f.rule == rules::INTRINSICS_CONFINEMENT));
}
