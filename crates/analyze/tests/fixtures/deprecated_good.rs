//! Known-good for deprecated-surface: docs may *mention* the retired
//! names — `evaluate_rlc` here is comment text, not an identifier — and
//! the live prepare/execute surface is fine.

pub fn evaluate_prepared_pairs() -> usize {
    0
}
