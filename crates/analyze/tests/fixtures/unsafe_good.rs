//! Known-good for unsafe-confinement and intrinsics-confinement: this
//! file is checked under the virtual path of the kernel module, the one
//! place where `unsafe` and the architecture intrinsics are allowed.

pub fn detect() -> &'static str {
    if is_x86_feature_detected!("avx2") {
        "avx2"
    } else {
        "scalar"
    }
}

#[target_feature(enable = "avx2")]
pub unsafe fn or_words(acc: &mut [u64], words: &[u64]) {
    for (a, w) in acc.iter_mut().zip(words) {
        *a |= *w;
    }
}

pub fn splat(values: &[u32]) -> u32 {
    // Mentioning unsafe in a comment is never a violation.
    unsafe { *values.get_unchecked(0) }
}
