//! Known-bad for suppression-hygiene: every way a directive can go
//! wrong — a typoed rule id, a missing reason, an unsuppressible rule,
//! and a stale directive that discharges nothing.

// rlc-analyze: allow(no-such-rule) — the rule id is a typo
pub fn a() {}

// rlc-analyze: allow(panic-free-library)
pub fn b() {}

// rlc-analyze: allow(unsafe-confinement) — confinement cannot be waived
pub fn c() {}

// rlc-analyze: allow(panic-free-library) — nothing on the next line panics
pub fn d() {}
