//! Adversarial parser fixture: a macro body opens a brace it never
//! closes and a stray closer follows a valid item. The token-tree
//! forest must stay total (unmatched closers become leaves, unmatched
//! openers become groups running to EOF) and must flatten back to the
//! exact lexer token stream.

macro_rules! broken {
    () => {
        { never closed
    };
}

pub fn after() -> u32 {
    1
}

} // stray closer: a leaf, not a parse error
