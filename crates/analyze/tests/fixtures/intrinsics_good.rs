//! Known-good for intrinsics-confinement: SIMD work goes through the
//! kernel dispatcher, and documentation may *mention* `std::arch` or
//! `#[target_feature]` freely — prose is not code.

/// Returns the active kernel name; raw `core::arch` intrinsics stay
/// behind the `rlc_core::kernel` WordOps dispatcher.
pub fn frontier_kernel(kernel: &'static str) -> &'static str {
    kernel
}
