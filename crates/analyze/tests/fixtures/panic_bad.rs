//! Known-bad for panic-free-library: panic paths in non-test library
//! code.

pub fn first(values: &[u32]) -> u32 {
    let head = values.first().unwrap();
    *head
}

pub fn not_done() {
    todo!("finish this")
}
