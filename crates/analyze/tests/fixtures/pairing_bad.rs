//! Known-bad for atomic-pairing: a Release store nothing acquires, an
//! Acquire load nothing releases, and an unjustified Relaxed access.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn publish(flag: &AtomicUsize) {
    flag.store(1, Ordering::Release);
}

pub fn consume(state: &AtomicUsize) -> usize {
    state.load(Ordering::Acquire)
}

pub fn peek(stats: &AtomicUsize) -> usize {
    stats.load(Ordering::Relaxed)
}
