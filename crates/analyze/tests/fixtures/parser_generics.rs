//! Adversarial parser fixture: nested generics whose closing `>>`
//! lexes as two glued `>` tokens, a genuine right-shift that must NOT
//! be treated as generics, and a where clause between the return type
//! and the body.

pub fn nested(rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    rows
}

pub fn shift(x: u64, n: u32) -> u64 {
    x >> n
}

pub fn bounded<T>(items: &[T], bytes: &[u8]) -> usize
where
    T: Clone,
{
    items.len() + bytes.len()
}
