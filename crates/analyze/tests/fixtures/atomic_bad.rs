//! Known-bad for atomic-ordering: a relaxed load in library code,
//! outside the allowlisted sites and without a suppression.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn read(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}
