//! Known-bad for atomic-pairing: a relaxed load in library code
//! without a reasoned suppression.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn read(counter: &AtomicUsize) -> usize {
    counter.load(Ordering::Relaxed)
}
