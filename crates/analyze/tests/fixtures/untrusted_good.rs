//! Known-good for untrusted-length: the decoded count flows through the
//! shared division-form bound check before sizing the allocation, and
//! constant-size allocations are exempt.

use rlc_graph::checked_len;

pub fn from_bytes(bytes: &[u8]) -> Result<Vec<u64>, String> {
    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&bytes[..bytes.len().min(16)]);
    let count = bytes[0] as usize;
    let count = checked_len(count, 8, bytes.len() - 1).map_err(|e| e.to_string())?;
    let mut out = Vec::with_capacity(count);
    out.push(0);
    Ok(out)
}
