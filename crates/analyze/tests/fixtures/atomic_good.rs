//! Known-good for atomic-pairing: the release store and acquire load
//! pair on the same identity, and the one relaxed site carries a
//! suppression with its reason.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn publish(counter: &AtomicUsize) {
    counter.store(1, Ordering::Release);
}

pub fn ready(counter: &AtomicUsize) -> bool {
    counter.load(Ordering::Acquire) == 1
}

pub fn hits(counter: &AtomicUsize) -> usize {
    // rlc-analyze: allow(atomic-pairing) — observational stats counter; nothing synchronizes through it
    counter.load(Ordering::Relaxed)
}
