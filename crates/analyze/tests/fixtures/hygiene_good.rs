//! Known-good for suppression-hygiene: a directive that names a real
//! rule, states a reason, and discharges a real finding on its target
//! line.

pub fn head(values: &[u32]) -> u32 {
    // rlc-analyze: allow(panic-free-library) — callers pass non-empty slices by documented contract
    *values.first().unwrap()
}
