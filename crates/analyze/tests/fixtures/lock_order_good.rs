//! Known-good for lock-order: every path that holds both locks takes
//! `left` before `right`, including the path through one call hop.

use std::sync::Mutex;

pub struct Pair {
    pub left: Mutex<u32>,
    pub right: Mutex<u32>,
}

pub fn both(p: &Pair) -> u32 {
    let a = p.left.lock();
    let b = finish(p);
    drop(a);
    b
}

fn finish(p: &Pair) -> u32 {
    let _b = p.right.lock();
    0
}

pub fn direct(p: &Pair) -> u32 {
    let a = p.left.lock();
    let b = p.right.lock();
    drop(b);
    drop(a);
    0
}
