//! Known-bad for intrinsics-confinement: an arch path and feature
//! detection outside the kernel module.

use core::arch::x86_64::__m256i;

pub fn has_avx2() -> bool {
    is_x86_feature_detected!("avx2")
}
