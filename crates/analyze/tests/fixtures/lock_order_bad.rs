//! Known-bad for lock-order: `forward` takes `left` and then reaches
//! `right` through a call to `take_right` (the one-hop edge), while
//! `backward` takes `right` then `left` directly — a two-node ordering
//! cycle with a witness path in each direction.

use std::sync::Mutex;

pub struct Pair {
    pub left: Mutex<u32>,
    pub right: Mutex<u32>,
}

pub fn forward(p: &Pair) -> u32 {
    let a = p.left.lock();
    let b = take_right(p);
    drop(a);
    b
}

fn take_right(p: &Pair) -> u32 {
    let _b = p.right.lock();
    0
}

pub fn backward(p: &Pair) -> u32 {
    let b = p.right.lock();
    let a = p.left.lock();
    drop(a);
    drop(b);
    0
}
