//! Known-bad the v1 shadow heuristic misses: the tainted length is
//! laundered through a rebinding that shares no identifier with any
//! `checked_len` call, so identifier sharing says "sanitized" while
//! the dataflow sees the sink fed by the raw decoded byte.

use rlc_graph::checked_len;

pub fn from_bytes(bytes: &[u8]) -> Vec<u8> {
    let n = bytes[0] as usize;
    let n = checked_len(n, 1, bytes.len()).unwrap_or(0);
    let declared = bytes[1] as usize;
    let n = declared;
    vec![0u8; n]
}
