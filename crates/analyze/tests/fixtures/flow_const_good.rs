//! Dual of the laundering fixture: v1 false-positives here, because no
//! identifier is shared with a `checked_len` call, while the v2
//! dataflow sees the binding rebound to a constant before it reaches
//! the sink and stays quiet.

pub fn from_bytes(bytes: &[u8]) -> Vec<u8> {
    let count = bytes[0] as usize;
    let count = 16;
    Vec::with_capacity(count)
}
