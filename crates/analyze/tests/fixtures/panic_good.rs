//! Known-good for panic-free-library: library code propagates errors;
//! `#[cfg(test)]` code may unwrap freely.

pub fn first(values: &[u32]) -> Option<u32> {
    values.first().copied()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
