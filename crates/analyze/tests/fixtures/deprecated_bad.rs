//! Known-bad for deprecated-surface: the retired 0.2 evaluator surface
//! creeping back, shim attribute and all.

#[deprecated(note = "use prepare/evaluate_prepared")]
pub fn evaluate_rlc() {}
