//! Known-bad for unsafe-confinement: an `unsafe` block in ordinary
//! library code, outside the kernel module.

pub fn peek(values: &[u32]) -> u32 {
    unsafe { *values.get_unchecked(0) }
}
