//! Known-good for atomic-pairing: an AcqRel read-modify-write pairs
//! with itself, SeqCst is always paired, and the Release/Acquire
//! partners on `gate` satisfy each other.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn bump(shared: &AtomicUsize) -> usize {
    shared.fetch_add(1, Ordering::AcqRel)
}

pub fn snapshot(shared: &AtomicUsize) -> usize {
    shared.load(Ordering::SeqCst)
}

pub fn publish(gate: &AtomicUsize) {
    gate.store(1, Ordering::Release);
}

pub fn wait(gate: &AtomicUsize) -> bool {
    gate.load(Ordering::Acquire) == 1
}
