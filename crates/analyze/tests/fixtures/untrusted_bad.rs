//! Known-bad for untrusted-length-flow: decode functions sizing
//! allocations by raw decoded counts, in every sink form it knows.

pub fn from_bytes(bytes: &[u8]) -> Vec<u64> {
    let count = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as usize;
    let mut out = Vec::with_capacity(count);
    out.resize(count, 0);
    out
}

pub fn from_binary_edges(bytes: &[u8]) -> Vec<u8> {
    let declared = bytes[0] as usize;
    vec![0u8; declared]
}
