//! Parser integrity tests: the token-tree forest must be *total* (every
//! input produces a forest, however malformed) and *lossless* (the
//! flattened forest is exactly the lexer's token stream, in order).
//! Both properties are asserted over every real source file in the
//! workspace and over adversarial fixtures the workspace would never
//! contain.

use rlc_analyze::lexer::lex;
use rlc_analyze::parse::{build_forest, flatten, parse, ItemKind};
use rlc_analyze::walk::workspace_files;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Asserts the forest of `source` flattens back to the identity index
/// sequence, i.e. re-serializing the tree reproduces the lexer's token
/// stream byte-for-byte (same tokens, same order, nothing dropped or
/// duplicated).
fn assert_round_trip(label: &str, source: &str) {
    let lexed = lex(source);
    let forest = build_forest(&lexed.tokens);
    let flat = flatten(&forest);
    let identity: Vec<usize> = (0..lexed.tokens.len()).collect();
    assert_eq!(flat, identity, "{label}: forest does not round-trip");
    // Belt and braces: compare the re-serialized token text stream, not
    // just the indices.
    let reserialized: Vec<&str> = flat
        .iter()
        .map(|&i| lexed.tokens[i].text.as_str())
        .collect();
    let original: Vec<&str> = lexed.tokens.iter().map(|t| t.text.as_str()).collect();
    assert_eq!(reserialized, original, "{label}: token text stream differs");
}

#[test]
fn every_workspace_file_round_trips() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_files(&root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk found only {} files; wrong root?",
        files.len()
    );
    for (rel, abs) in &files {
        let source =
            std::fs::read_to_string(abs).unwrap_or_else(|e| panic!("read {}: {e}", abs.display()));
        assert_round_trip(rel, &source);
    }
}

#[test]
fn unbalanced_macro_braces_stay_total_and_lossless() {
    assert_round_trip("parser_unbalanced.rs", &fixture("parser_unbalanced.rs"));
    // Item extraction still recovers the function after the damage.
    let lexed = lex(&fixture("parser_unbalanced.rs"));
    let parsed = parse(&lexed.tokens);
    assert!(
        parsed
            .fns()
            .any(|(_, name, _, body)| name == "after" && body.is_some()),
        "fn after() not recovered from damaged file"
    );
}

#[test]
fn nested_generics_shifts_and_where_clauses_parse() {
    let source = fixture("parser_generics.rs");
    assert_round_trip("parser_generics.rs", &source);
    let lexed = lex(&source);
    let parsed = parse(&lexed.tokens);
    let fns: Vec<(&str, usize, bool)> = parsed
        .fns()
        .map(|(_, name, params, body)| (name, params.len(), body.is_some()))
        .collect();
    assert_eq!(
        fns,
        vec![
            ("nested", 1, true),
            ("shift", 2, true),
            ("bounded", 2, true)
        ],
        "item extraction disagrees: {fns:?}"
    );
    // The `bytes: &[u8]` param survives the where clause and the `&[T]`
    // param is not misclassified as a byte slice.
    let (_, _, params, _) = parsed
        .fns()
        .find(|(_, name, _, _)| *name == "bounded")
        .expect("fn bounded");
    assert!(!params[0].is_byte_slice, "&[T] is not a byte slice");
    assert!(params[1].is_byte_slice, "&[u8] must be a byte slice");
    assert_eq!(params[1].name, "bytes");
}

#[test]
fn stray_closer_becomes_a_leaf_not_an_error() {
    let lexed = lex("fn a() {} } fn b() {}");
    let forest = build_forest(&lexed.tokens);
    assert_round_trip("stray closer", "fn a() {} } fn b() {}");
    // Both items are still found around the stray token.
    let parsed = parse(&lexed.tokens);
    let names: Vec<&str> = parsed
        .items
        .iter()
        .filter_map(|i| match &i.kind {
            ItemKind::Fn { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(names, vec!["a", "b"], "forest: {forest:?}");
}
