//! Layer 3a of the pipeline: an intra-procedural def-use/taint engine.
//!
//! The engine runs a forward dataflow over one function body in source
//! order, tracking which bindings are *tainted* (derived from a
//! configured source — for the `untrusted-length-flow` rule, the
//! byte-slice parameter of a binary decoder). It understands:
//!
//! * `let` bindings, including typed patterns (`let n: usize = …`),
//!   destructuring (`let (a, b) = …` taints both), `if let`/`while let`
//!   scrutinees, and `for pat in expr` loops;
//! * plain reassignment (`n = expr;`, `self.field = expr;` taints/clears
//!   `field`) — this is what catches the rebinding launder that defeats
//!   the v1 lexical heuristic;
//! * **sanitizers**: an RHS that calls a configured sanitizer
//!   (`checked_len`) produces a *clean* value regardless of its inputs,
//!   so the idiomatic `let n = checked_len(n, 8, buf.remaining())?;`
//!   rebind clears the taint on `n`;
//! * **measurement projections**: `tainted.len()` / `.remaining()` /
//!   `.is_empty()` are clean — the *actual* size of the input is
//!   trustworthy, only integers decoded *from* it are not;
//! * **sinks**: `with_capacity(size)`, `vec![value; size]`, and
//!   `.resize(size, fill)` size operands, checked against the
//!   environment at the moment the sink executes.
//!
//! The flow is linear (no branch joins: a taint set union over both
//! arms would need a CFG; walking arms in source order over-approximates
//! in the same direction — a binding tainted in either arm stays tainted
//! after it, unless the later arm rebinds it clean). Closure bodies are
//! walked inline as part of the enclosing function; `match`-arm bindings
//! are not modeled. Every flow carries a machine-readable trace from the
//! source parameter through each rebinding to the sink.

use crate::lexer::{Token, TokenKind};
use crate::parse::{glued_to_next, glued_to_prev, matching};
use std::collections::HashMap;

/// One step of a dataflow trace (source → propagation → sink).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct TraceStep {
    /// Workspace-relative path the step is in.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What happens at this step.
    pub note: String,
}

/// Taint configuration for one function analysis.
pub struct TaintSpec<'a> {
    /// Workspace-relative path (recorded in trace steps).
    pub file: &'a str,
    /// Enclosing function name (recorded in trace notes).
    pub fn_name: &'a str,
    /// Initially-tainted bindings: `(name, token index of the name)`.
    pub sources: Vec<(String, usize)>,
    /// Calls that produce clean values from any input.
    pub sanitizers: &'a [&'a str],
}

/// Methods whose result is clean even on a tainted receiver: they
/// measure the input we actually hold, not a decoded claim about it.
const MEASUREMENTS: &[&str] = &["len", "is_empty", "remaining"];

/// One tainted value reaching an allocation-size sink.
#[derive(Clone, Debug)]
pub struct Flow {
    /// Token index of the sink head (`with_capacity`, `vec`, `resize`).
    pub sink_idx: usize,
    /// Which sink shape matched.
    pub sink_kind: &'static str,
    /// The tainted identifier observed in the size operand.
    pub ident: String,
    /// Full provenance: source parameter, each rebinding, the sink.
    pub trace: Vec<TraceStep>,
}

/// A tainted environment entry: the provenance chain of the binding.
type Env = HashMap<String, Vec<TraceStep>>;

/// Runs the taint dataflow over one function body (`open`/`close` are the
/// token indexes of the body braces) and returns every source→sink flow.
pub fn taint_fn(tokens: &[Token], open: usize, close: usize, spec: &TaintSpec<'_>) -> Vec<Flow> {
    let mut env: Env = HashMap::new();
    for (name, idx) in &spec.sources {
        let t = &tokens[*idx];
        env.insert(
            name.clone(),
            vec![step(
                spec,
                t,
                format!(
                    "untrusted byte-slice parameter `{name}` enters `{}`",
                    spec.fn_name
                ),
            )],
        );
    }
    let mut flows = Vec::new();
    let close = close.min(tokens.len());
    let mut i = open + 1;
    while i < close {
        let t = &tokens[i];
        if t.is_ident("let") {
            let in_condition =
                i > 0 && (tokens[i - 1].is_ident("if") || tokens[i - 1].is_ident("while"));
            bind_let(tokens, i, close, in_condition, spec, &mut env);
            i += 1;
            continue;
        }
        if t.is_ident("for") {
            bind_for(tokens, i, close, spec, &mut env);
            i += 1;
            continue;
        }
        // Plain reassignment: `name = expr` (also the tail of
        // `self.name = expr`). Compound operators (`==`, `>=`, `+=`,
        // `=>`, …) lex as glued punct pairs and are excluded.
        if t.kind == TokenKind::Ident && is_assign_eq(tokens, i + 1) {
            let rhs_end = scan_extent(tokens, i + 2, close, Stop::Semi);
            let value = eval(tokens, i + 2, rhs_end, spec, &env);
            rebind(
                tokens,
                &[(t.text.clone(), i)],
                value,
                tokens[i].line,
                tokens[i].col,
                spec,
                &mut env,
            );
            i += 1;
            continue;
        }
        // Sinks.
        if t.is_ident("with_capacity") && next_is(tokens, i + 1, '(') {
            let end = matching(tokens, i + 1, '(', ')') - 1;
            record_flow(
                tokens,
                i,
                "with_capacity",
                i + 2,
                end,
                spec,
                &env,
                &mut flows,
            );
        } else if t.is_ident("vec") && next_is(tokens, i + 1, '!') && next_is(tokens, i + 2, '[') {
            let end = matching(tokens, i + 2, '[', ']') - 1;
            if let Some(semi) = top_level_semi(tokens, i + 3, end) {
                record_flow(
                    tokens,
                    i,
                    "vec![_; n]",
                    semi + 1,
                    end,
                    spec,
                    &env,
                    &mut flows,
                );
            }
        } else if t.is_ident("resize")
            && i > 0
            && tokens[i - 1].is_punct('.')
            && next_is(tokens, i + 1, '(')
        {
            let close_paren = matching(tokens, i + 1, '(', ')') - 1;
            let first_arg_end = top_level_comma(tokens, i + 2, close_paren).unwrap_or(close_paren);
            record_flow(
                tokens,
                i,
                ".resize",
                i + 2,
                first_arg_end,
                spec,
                &env,
                &mut flows,
            );
        }
        i += 1;
    }
    flows
}

fn step(spec: &TaintSpec<'_>, at: &Token, note: String) -> TraceStep {
    TraceStep {
        file: spec.file.to_owned(),
        line: at.line,
        col: at.col,
        note,
    }
}

fn next_is(tokens: &[Token], i: usize, ch: char) -> bool {
    tokens.get(i).map(|t| t.is_punct(ch)).unwrap_or(false)
}

/// True when token `i` is a *binding* `=`: a bare punct not glued into a
/// compound operator on either side.
fn is_assign_eq(tokens: &[Token], i: usize) -> bool {
    let Some(t) = tokens.get(i) else {
        return false;
    };
    if !t.is_punct('=') {
        return false;
    }
    // `==`, `>=`, `<=`, `!=`, `+=`, `-=`, … : glued to a previous punct.
    if i > 0
        && tokens[i - 1].kind == TokenKind::Punct
        && glued_to_prev(tokens, i, tokens[i - 1].text.chars().next().unwrap_or(' '))
    {
        return false;
    }
    // `==` (we are the first char) and `=>`.
    if glued_to_next(tokens, i, '=') || glued_to_next(tokens, i, '>') {
        return false;
    }
    true
}

/// What ends an expression extent scan.
enum Stop {
    /// Top-level `;` (plain `let`, assignment).
    Semi,
    /// Top-level `{` (`if let`/`while let` scrutinee, `for` iterator).
    Brace,
}

/// One past the end of an expression starting at `start`: stops at the
/// configured top-level terminator, a dedent past the enclosing group, or
/// `limit`.
fn scan_extent(tokens: &[Token], start: usize, limit: usize, stop: Stop) -> usize {
    let mut depth = 0isize;
    let mut i = start;
    while i < limit {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if t.is_punct('{') {
            if depth == 0 {
                if let Stop::Brace = stop {
                    return i;
                }
            }
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return i;
            }
        } else if t.is_punct(';') && depth == 0 {
            if let Stop::Semi = stop {
                return i;
            }
        }
        i += 1;
    }
    limit
}

/// Finds a `;` at delimiter depth zero within `start..end`.
fn top_level_semi(tokens: &[Token], start: usize, end: usize) -> Option<usize> {
    top_level_punct(tokens, start, end, ';')
}

/// Finds a `,` at delimiter depth zero within `start..end`.
fn top_level_comma(tokens: &[Token], start: usize, end: usize) -> Option<usize> {
    top_level_punct(tokens, start, end, ',')
}

fn top_level_punct(tokens: &[Token], start: usize, end: usize, want: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(end.min(tokens.len()))
        .skip(start)
    {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(want) && depth == 0 {
            return Some(i);
        }
    }
    None
}

/// Handles a `let` binding at token `let_idx`.
fn bind_let(
    tokens: &[Token],
    let_idx: usize,
    limit: usize,
    in_condition: bool,
    spec: &TaintSpec<'_>,
    env: &mut Env,
) {
    // Find the binding `=` at depth 0, cutting the pattern at a typed
    // `let`'s top-level `:` (single colon, not a `::` path).
    let mut depth = 0isize;
    let mut colon = None;
    let mut eq = None;
    let mut j = let_idx + 1;
    while j < limit {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
            if depth < 0 {
                return;
            }
        } else if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        } else if depth == 0 {
            if colon.is_none()
                && t.is_punct(':')
                && !glued_to_prev(tokens, j, ':')
                && !glued_to_next(tokens, j, ':')
            {
                colon = Some(j);
            }
            if is_assign_eq(tokens, j) {
                eq = Some(j);
                break;
            }
        }
        j += 1;
    }
    let Some(eq) = eq else {
        return; // `let pat;` declares without a value: taint state unknown, leave as-is
    };
    let pattern_end = colon.unwrap_or(eq);
    let names = pattern_idents(tokens, let_idx + 1, pattern_end);
    let stop = if in_condition {
        Stop::Brace
    } else {
        Stop::Semi
    };
    let rhs_end = scan_extent(tokens, eq + 1, limit, stop);
    let value = eval(tokens, eq + 1, rhs_end, spec, env);
    let at = &tokens[let_idx];
    rebind(tokens, &names, value, at.line, at.col, spec, env);
}

/// Handles `for pat in expr {` at token `for_idx`.
fn bind_for(tokens: &[Token], for_idx: usize, limit: usize, spec: &TaintSpec<'_>, env: &mut Env) {
    let mut j = for_idx + 1;
    let mut depth = 0isize;
    let mut in_idx = None;
    while j < limit {
        let t = &tokens[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if t.is_punct('{') || t.is_punct(';') {
            break;
        } else if t.is_ident("in") && depth == 0 {
            in_idx = Some(j);
            break;
        }
        j += 1;
    }
    let Some(in_idx) = in_idx else {
        return;
    };
    let names = pattern_idents(tokens, for_idx + 1, in_idx);
    let rhs_end = scan_extent(tokens, in_idx + 1, limit, Stop::Brace);
    let value = eval(tokens, in_idx + 1, rhs_end, spec, env);
    let at = &tokens[for_idx];
    rebind(tokens, &names, value, at.line, at.col, spec, env);
}

/// Binding names in a pattern range: identifiers that are not pattern
/// keywords and not type/variant names (uppercase-initial) — `Some(x)`
/// binds `x`, `(a, b)` binds both.
fn pattern_idents(tokens: &[Token], start: usize, end: usize) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, t) in tokens
        .iter()
        .enumerate()
        .take(end.min(tokens.len()))
        .skip(start)
    {
        if t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "mut" | "ref" | "box" | "_") {
            continue;
        }
        if t.text
            .chars()
            .next()
            .map(char::is_uppercase)
            .unwrap_or(true)
        {
            continue;
        }
        out.push((t.text.clone(), i));
    }
    out
}

/// Evaluates an expression range against the current environment:
/// `Some((ident, its token index, its provenance))` when a tainted value
/// flows out of it, `None` when clean (constant, sanitized, or only
/// measurement projections of tainted values).
fn eval(
    tokens: &[Token],
    start: usize,
    end: usize,
    spec: &TaintSpec<'_>,
    env: &Env,
) -> Option<(String, usize, Vec<TraceStep>)> {
    let end = end.min(tokens.len());
    // A sanitizer call anywhere in the expression makes the whole value
    // clean: the sanitizer's contract is a checked, bounded length.
    for i in start..end {
        if tokens[i].kind == TokenKind::Ident
            && spec.sanitizers.contains(&tokens[i].text.as_str())
            && next_is(tokens, i + 1, '(')
        {
            return None;
        }
    }
    for i in start..end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let Some(chain) = env.get(&t.text) else {
            continue;
        };
        // Measurement projection: `tainted.len()` etc. is clean.
        let measured = next_is(tokens, i + 1, '.')
            && tokens
                .get(i + 2)
                .map(|m| m.kind == TokenKind::Ident && MEASUREMENTS.contains(&m.text.as_str()))
                .unwrap_or(false)
            && next_is(tokens, i + 3, '(');
        if measured {
            continue;
        }
        return Some((t.text.clone(), i, chain.clone()));
    }
    None
}

/// Applies a binding result to the environment: tainted values extend
/// their provenance chain with this binding, clean values clear it.
fn rebind(
    tokens: &[Token],
    names: &[(String, usize)],
    value: Option<(String, usize, Vec<TraceStep>)>,
    line: u32,
    col: u32,
    spec: &TaintSpec<'_>,
    env: &mut Env,
) {
    match value {
        Some((src_ident, src_idx, mut chain)) => {
            let at = &tokens[src_idx];
            for (name, _) in names {
                if *name != src_ident || chain.is_empty() {
                    chain.push(TraceStep {
                        file: spec.file.to_owned(),
                        line,
                        col,
                        note: format!("`{name}` derives from tainted `{src_ident}`"),
                    });
                } else {
                    // Self-rebind (`let n = n + 1;`): note the position
                    // but keep the chain single-headed.
                    chain.push(step(spec, at, format!("`{name}` rebound, still tainted")));
                }
                env.insert(name.clone(), chain.clone());
            }
        }
        None => {
            for (name, _) in names {
                env.remove(name);
            }
        }
    }
}

/// Records a flow when the sink's size operand evaluates tainted.
#[allow(clippy::too_many_arguments)]
fn record_flow(
    tokens: &[Token],
    sink_idx: usize,
    sink_kind: &'static str,
    size_start: usize,
    size_end: usize,
    spec: &TaintSpec<'_>,
    env: &Env,
    flows: &mut Vec<Flow>,
) {
    let Some((ident, _, mut chain)) = eval(tokens, size_start, size_end, spec, env) else {
        return;
    };
    let at = &tokens[sink_idx];
    chain.push(step(
        spec,
        at,
        format!("tainted `{ident}` sizes `{sink_kind}` without a bound check"),
    ));
    flows.push(Flow {
        sink_idx,
        sink_kind,
        ident,
        trace: chain,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::{matching, parse};

    /// Runs the engine over the first fn of `src`, with its byte-slice
    /// params as sources and `checked_len` as the sanitizer.
    fn flows_of(src: &str) -> Vec<Flow> {
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let (_, name, params, body) = parsed.fns().next().expect("one fn");
        let open = body.expect("body");
        let close = matching(&lexed.tokens, open, '{', '}') - 1;
        let spec = TaintSpec {
            file: "test.rs",
            fn_name: name,
            sources: params
                .iter()
                .filter(|p| p.is_byte_slice)
                .map(|p| (p.name.clone(), p.name_idx))
                .collect(),
            sanitizers: &["checked_len"],
        };
        taint_fn(&lexed.tokens, open, close, &spec)
    }

    #[test]
    fn direct_tainted_capacity_flows() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let n = data[0] as usize; let v: Vec<u8> = Vec::with_capacity(n); }",
        );
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].ident, "n");
        assert_eq!(flows[0].sink_kind, "with_capacity");
        assert!(flows[0].trace.len() >= 3, "{:?}", flows[0].trace);
        assert!(flows[0].trace[0].note.contains("parameter `data`"));
    }

    #[test]
    fn sanitizer_rebind_clears_taint() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let n = data[0] as usize; \
             let n = checked_len(n, 8, data.len()).ok().unwrap_or(0); \
             let v: Vec<u8> = Vec::with_capacity(n); }",
        );
        assert!(flows.is_empty(), "{flows:?}");
    }

    #[test]
    fn laundering_rebind_keeps_taint() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let len = data[0] as usize; let n = len; let v = vec![0u8; n]; }",
        );
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].sink_kind, "vec![_; n]");
        let notes: Vec<_> = flows[0].trace.iter().map(|s| s.note.as_str()).collect();
        assert!(
            notes
                .iter()
                .any(|n| n.contains("`n` derives from tainted `len`")),
            "{notes:?}"
        );
    }

    #[test]
    fn measurement_projection_is_clean() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let n = data.len(); let v: Vec<u8> = Vec::with_capacity(n); }",
        );
        assert!(flows.is_empty(), "{flows:?}");
    }

    #[test]
    fn constant_rebind_is_clean() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let fixed = 64usize; let n = fixed; let v = vec![0u8; n]; }",
        );
        assert!(flows.is_empty(), "{flows:?}");
    }

    #[test]
    fn alias_binding_propagates_taint() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let mut buf = data; let k = buf[0] as usize; \
             let v: Vec<u8> = Vec::with_capacity(k); }",
        );
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].ident, "k");
    }

    #[test]
    fn resize_first_argument_is_a_sink() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let n = data[0] as usize; let mut v: Vec<u8> = Vec::new(); v.resize(n, 0); }",
        );
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].sink_kind, ".resize");
    }

    #[test]
    fn resize_fill_argument_is_not_a_sink() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let b = data[0]; let mut v: Vec<u8> = Vec::new(); v.resize(4, b); }",
        );
        assert!(flows.is_empty(), "{flows:?}");
    }

    #[test]
    fn plain_assignment_launders_and_clears() {
        // Assignment of a clean value clears taint; of a tainted one sets it.
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let mut n = data[0] as usize; n = 4; let v = vec![0u8; n]; }",
        );
        assert!(flows.is_empty(), "{flows:?}");
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let mut n = 4usize; n = data[1] as usize; let v = vec![0u8; n]; }",
        );
        assert_eq!(flows.len(), 1);
    }

    #[test]
    fn if_let_scrutinee_taints_binding() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { if let Some(first) = data.first() { \
             let n = *first as usize; let v: Vec<u8> = Vec::with_capacity(n); } }",
        );
        assert_eq!(flows.len(), 1, "{flows:?}");
    }

    #[test]
    fn for_loop_binding_taints() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { for b in data { let v: Vec<u8> = Vec::with_capacity(*b as usize); } }",
        );
        assert_eq!(flows.len(), 1, "{flows:?}");
    }

    #[test]
    fn comparison_is_not_an_assignment() {
        let flows = flows_of(
            "fn from_bytes(data: &[u8]) { let mut n = 1usize; let t = data[0] as usize; \
             if n == t { n = 2; } let v = vec![0u8; n]; }",
        );
        assert!(flows.is_empty(), "{flows:?}");
    }
}
