//! The rule catalog and the lexical rule implementations.
//!
//! Each rule walks the classified token stream of one file and emits
//! [`Finding`]s. Rules never see comment or string-literal text — the
//! lexer already classified those — so, unlike the grep gates these rules
//! replaced, a banned construct mentioned in documentation is not a
//! violation.

use crate::lexer::{Token, TokenKind};
use crate::scope::{FileClass, FnSpan, Scopes};

/// One diagnostic: a rule violated at a source position.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

/// `unsafe` is confined to `crates/core/src/kernel.rs`.
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";
/// Architecture intrinsics are confined to the kernel module.
pub const INTRINSICS_CONFINEMENT: &str = "intrinsics-confinement";
/// Library surfaces are panic-free outside `#[cfg(test)]`.
pub const PANIC_FREE_LIBRARY: &str = "panic-free-library";
/// Decoded lengths must flow through the division-form bound checks.
pub const UNTRUSTED_LENGTH: &str = "untrusted-length";
/// `Ordering::Relaxed` only at allowlisted or justified sites.
pub const ATOMIC_ORDERING: &str = "atomic-ordering";
/// The 0.2 deprecation cycle stays closed.
pub const DEPRECATED_SURFACE: &str = "deprecated-surface";
/// Suppression directives must be well-formed and in use.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// Catalog entry: a rule id and what it enforces.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id (used in diagnostics and `allow(...)` directives).
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Whether `rlc-analyze: allow(...)` directives can discharge it.
    pub suppressible: bool,
}

/// The rule catalog, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: UNSAFE_CONFINEMENT,
        summary: "`unsafe` appears only in crates/core/src/kernel.rs",
        suppressible: false,
    },
    RuleInfo {
        id: INTRINSICS_CONFINEMENT,
        summary: "core::arch/std::arch, feature detection, and #[target_feature] appear only in \
                  crates/core/src/kernel.rs",
        suppressible: false,
    },
    RuleInfo {
        id: PANIC_FREE_LIBRARY,
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
        suppressible: true,
    },
    RuleInfo {
        id: UNTRUSTED_LENGTH,
        summary: "in binary decode functions, allocations sized by decoded integers flow through \
                  the shared division-form bound checks (checked_len)",
        suppressible: true,
    },
    RuleInfo {
        id: ATOMIC_ORDERING,
        summary: "Ordering::Relaxed only at allowlisted sites (kernel dispatch, generation \
                  counter) or with a justifying suppression",
        suppressible: true,
    },
    RuleInfo {
        id: DEPRECATED_SURFACE,
        summary: "the retired 0.2 API surface (evaluate_rlc/evaluate_concat, #[deprecated]) \
                  stays deleted",
        suppressible: false,
    },
    RuleInfo {
        id: SUPPRESSION_HYGIENE,
        summary: "suppression directives parse, name a known rule, state a reason, and discharge \
                  a real finding",
        suppressible: false,
    },
];

/// The ids of all suppressible rules.
pub fn suppressible_rules() -> Vec<&'static str> {
    RULES
        .iter()
        .filter(|r| r.suppressible)
        .map(|r| r.id)
        .collect()
}

/// Everything a rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Path-derived classification.
    pub class: FileClass,
    /// The token stream.
    pub tokens: &'a [Token],
    /// Test and function spans.
    pub scopes: &'a Scopes,
}

impl FileContext<'_> {
    fn finding(&self, token: &Token, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.path.to_owned(),
            line: token.line,
            col: token.col,
            rule,
            message,
        }
    }
}

/// Runs every rule over one file.
pub fn run_rules(ctx: &FileContext<'_>) -> Vec<Finding> {
    let mut findings = Vec::new();
    unsafe_confinement(ctx, &mut findings);
    intrinsics_confinement(ctx, &mut findings);
    panic_free_library(ctx, &mut findings);
    untrusted_length(ctx, &mut findings);
    atomic_ordering(ctx, &mut findings);
    deprecated_surface(ctx, &mut findings);
    findings
}

fn unsafe_confinement(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.class.is_kernel {
        return;
    }
    for token in ctx.tokens {
        if token.is_ident("unsafe") {
            out.push(
                ctx.finding(
                    token,
                    UNSAFE_CONFINEMENT,
                    "`unsafe` outside crates/core/src/kernel.rs; unsafe code is confined to the \
                 kernel module"
                        .to_owned(),
                ),
            );
        }
    }
}

fn intrinsics_confinement(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.class.is_kernel {
        return;
    }
    let tokens = ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let arch_path = token.is_ident("arch")
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && (tokens[i - 3].is_ident("core") || tokens[i - 3].is_ident("std"));
        if arch_path {
            out.push(
                ctx.finding(
                    token,
                    INTRINSICS_CONFINEMENT,
                    "architecture intrinsics path outside the kernel module; go through the \
                 rlc_core::kernel WordOps dispatcher instead"
                        .to_owned(),
                ),
            );
        } else if token.is_ident("is_x86_feature_detected") {
            out.push(
                ctx.finding(
                    token,
                    INTRINSICS_CONFINEMENT,
                    "feature detection outside the kernel module; the runtime dispatcher in \
                 crates/core/src/kernel.rs owns CPU feature decisions"
                        .to_owned(),
                ),
            );
        } else if token.is_ident("target_feature") {
            out.push(
                ctx.finding(
                    token,
                    INTRINSICS_CONFINEMENT,
                    "#[target_feature] outside the kernel module; SIMD entry points live behind \
                 the kernel dispatcher"
                        .to_owned(),
                ),
            );
        }
    }
}

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

fn panic_free_library(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.class.is_library {
        return;
    }
    let tokens = ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || ctx.scopes.in_test(i) {
            continue;
        }
        let next_is = |ch: char| tokens.get(i + 1).map(|t| t.is_punct(ch)).unwrap_or(false);
        if PANIC_MACROS.contains(&token.text.as_str()) && next_is('!') {
            out.push(ctx.finding(
                token,
                PANIC_FREE_LIBRARY,
                format!(
                    "`{}!` in non-test library code; return a Result (QueryError or the \
                     module's error type) instead",
                    token.text
                ),
            ));
        } else if PANIC_METHODS.contains(&token.text.as_str())
            && i > 0
            && tokens[i - 1].is_punct('.')
            && next_is('(')
        {
            out.push(ctx.finding(
                token,
                PANIC_FREE_LIBRARY,
                format!(
                    "`.{}(...)` in non-test library code; propagate the error, or suppress \
                     with a stated reason if the call is genuinely infallible",
                    token.text
                ),
            ));
        }
    }
}

/// True for functions that decode untrusted binary formats: the
/// `from_bytes` loaders of RLC2/ETC1/RSH1 and the `from_binary_*` RLG1
/// loader. The untrusted-length rule runs only inside these.
fn is_decode_fn(name: &str) -> bool {
    name == "from_bytes" || name.starts_with("from_binary")
}

fn untrusted_length(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let decode_fns: Vec<&FnSpan> = ctx
        .scopes
        .fns()
        .iter()
        .filter(|f| is_decode_fn(&f.name))
        .collect();
    for span in decode_fns {
        // Nested decode helpers would be scanned twice via their parent's
        // span; that is harmless (identical findings deduplicate later).
        scan_decode_span(ctx, span, out);
    }
}

fn scan_decode_span(ctx: &FileContext<'_>, span: &FnSpan, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    let mut i = span.start;
    while i < span.end.min(tokens.len()) {
        if ctx.scopes.in_test(i) {
            i += 1;
            continue;
        }
        let token = &tokens[i];
        // `Xyz::with_capacity(args)`
        if token.is_ident("with_capacity")
            && tokens.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
        {
            let close = close_delim(tokens, i + 1, '(', ')');
            check_size_expr(ctx, span, i, &tokens[i + 2..close], out);
            i = close + 1;
            continue;
        }
        // `vec![value; count]`
        if token.is_ident("vec")
            && tokens.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false)
            && tokens.get(i + 2).map(|t| t.is_punct('[')).unwrap_or(false)
        {
            let close = close_delim(tokens, i + 2, '[', ']');
            if let Some(semi) = top_level_semi(tokens, i + 3, close) {
                check_size_expr(ctx, span, i, &tokens[semi + 1..close], out);
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

/// Index of the token closing the delimiter opened at `open` (exclusive
/// bound of the contents).
fn close_delim(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(open_ch) {
            depth += 1;
        } else if tokens[i].is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Finds a `;` at delimiter depth zero within `start..end`.
fn top_level_semi(tokens: &[Token], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, token) in tokens
        .iter()
        .enumerate()
        .take(end.min(tokens.len()))
        .skip(start)
    {
        if token.is_punct('(') || token.is_punct('[') || token.is_punct('{') {
            depth += 1;
        } else if token.is_punct(')') || token.is_punct(']') || token.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if token.is_punct(';') && depth == 0 {
            return Some(i);
        }
    }
    None
}

/// The shared bound-check helper every decoded length must flow through.
const BOUND_HELPER: &str = "checked_len";

fn check_size_expr(
    ctx: &FileContext<'_>,
    span: &FnSpan,
    alloc_idx: usize,
    size_expr: &[Token],
    out: &mut Vec<Finding>,
) {
    let idents: Vec<&str> = size_expr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if idents.is_empty() {
        return; // constant size: `with_capacity(16)` is not untrusted
    }
    // Look for an earlier `checked_len(...)` call in the same function
    // whose arguments mention one of the identifiers sizing this
    // allocation.
    let tokens = ctx.tokens;
    let mut i = span.start;
    while i < alloc_idx.min(tokens.len()) {
        let t = &tokens[i];
        if t.is_ident(BOUND_HELPER) && tokens.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false) {
            let close = close_delim(tokens, i + 1, '(', ')');
            let checked: Vec<&str> = tokens[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            if idents.iter().any(|id| checked.contains(id)) {
                return;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out.push(ctx.finding(
        &tokens[alloc_idx],
        UNTRUSTED_LENGTH,
        format!(
            "allocation sized by `{}` in a binary decode function without a division-form \
             bound check; route the length through {BOUND_HELPER}() first",
            idents.join(" "),
        ),
    ));
}

/// Built-in allowlist for `atomic-ordering`: `(path suffix, identifier
/// required on the same line)`. The kernel module is exempt wholesale (its
/// documented-ordering discipline is enforced by review of one file); the
/// generation counter's relaxed `fetch_add` is the one site outside it
/// that is allowed by design rather than by suppression.
const RELAXED_ALLOWLIST: &[(&str, &str)] = &[("crates/core/src/engine.rs", "NEXT_GENERATION")];

fn atomic_ordering(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.class.is_kernel || !ctx.class.is_library {
        return;
    }
    let tokens = ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let relaxed = token.is_ident("Relaxed")
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && tokens[i - 3].is_ident("Ordering");
        if !relaxed || ctx.scopes.in_test(i) {
            continue;
        }
        let allowlisted = RELAXED_ALLOWLIST.iter().any(|(path, ident)| {
            ctx.path.ends_with(path)
                && tokens
                    .iter()
                    .any(|t| t.line == token.line && t.is_ident(ident))
        });
        if allowlisted {
            continue;
        }
        out.push(
            ctx.finding(
                token,
                ATOMIC_ORDERING,
                "`Ordering::Relaxed` outside the allowlisted sites (kernel dispatch, generation \
             counter); use a stronger ordering or justify with a suppression comment"
                    .to_owned(),
            ),
        );
    }
}

/// The retired API names from the 0.2 deprecation cycle.
const RETIRED_IDENTS: &[&str] = &["evaluate_rlc", "evaluate_concat"];

fn deprecated_surface(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind == TokenKind::Ident && RETIRED_IDENTS.contains(&token.text.as_str()) {
            out.push(ctx.finding(
                token,
                DEPRECATED_SURFACE,
                format!(
                    "`{}` reintroduces the retired 0.2 evaluator surface; the replacement is \
                     ReachabilityEngine::prepare/evaluate_prepared",
                    token.text
                ),
            ));
        }
        // `#[deprecated]` / `#![deprecated]`: the deprecation cycle is
        // closed, shims must not come back.
        if token.is_ident("deprecated") && i >= 1 {
            let attr = tokens[i - 1].is_punct('[')
                && (i >= 2 && (tokens[i - 2].is_punct('#') || tokens[i - 2].is_punct('!')));
            if attr {
                out.push(
                    ctx.finding(
                        token,
                        DEPRECATED_SURFACE,
                        "`#[deprecated]` reintroduced; the workspace ships no transitional shims"
                            .to_owned(),
                    ),
                );
            }
        }
    }
}
