//! The rule catalog and the per-file rule implementations.
//!
//! Each per-file rule walks one file's classified token stream (plus, for
//! the dataflow rules, its parsed structure) and emits [`Finding`]s.
//! Rules never see comment or string-literal text — the lexer already
//! classified those — so, unlike the grep gates these rules replaced, a
//! banned construct mentioned in documentation is not a violation.
//!
//! Two rules need a whole-workspace view (`lock-order`,
//! `atomic-pairing`); their implementations live in [`crate::locks`] and
//! run during [`crate::analyze::resolve`] over the merged facts.
//!
//! The v1 lexical `untrusted-length` heuristic is kept for one release
//! as a **shadow rule**: it still runs and its findings are reported in
//! the `shadow_findings` channel for differential comparison against the
//! taint-tracking `untrusted-length-flow`, but they never fail the check
//! and cannot be suppressed.

use crate::dataflow::{self, TaintSpec, TraceStep};
use crate::lexer::{Token, TokenKind};
use crate::parse::{matching, ParseFile};
use crate::scope::{FileClass, FnSpan, Scopes};

/// One diagnostic: a rule violated at a source position.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule id from [`RULES`].
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
    /// Machine-readable dataflow trace (source → steps → sink); empty
    /// for purely lexical findings.
    pub trace: Vec<TraceStep>,
}

/// `unsafe` is confined to `crates/core/src/kernel.rs`.
pub const UNSAFE_CONFINEMENT: &str = "unsafe-confinement";
/// Architecture intrinsics are confined to the kernel module.
pub const INTRINSICS_CONFINEMENT: &str = "intrinsics-confinement";
/// Library surfaces are panic-free outside `#[cfg(test)]`.
pub const PANIC_FREE_LIBRARY: &str = "panic-free-library";
/// Taint-tracked decoded lengths must be sanitized before sizing allocations.
pub const UNTRUSTED_LENGTH_FLOW: &str = "untrusted-length-flow";
/// The v1 lexical untrusted-length heuristic (shadow only).
pub const UNTRUSTED_LENGTH: &str = "untrusted-length";
/// The global lock-ordering graph is acyclic.
pub const LOCK_ORDER: &str = "lock-order";
/// Release/Acquire atomics pair up; Relaxed carries a reasoned suppression.
pub const ATOMIC_PAIRING: &str = "atomic-pairing";
/// The 0.2 deprecation cycle stays closed.
pub const DEPRECATED_SURFACE: &str = "deprecated-surface";
/// Suppression directives must be well-formed and in use.
pub const SUPPRESSION_HYGIENE: &str = "suppression-hygiene";

/// Catalog entry: a rule id and what it enforces.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable rule id (used in diagnostics and `allow(...)` directives).
    pub id: &'static str,
    /// One-line description.
    pub summary: &'static str,
    /// Whether `rlc-analyze: allow(...)` directives can discharge it.
    pub suppressible: bool,
    /// Shadow rules report differentially (never fail the check, never
    /// suppressible).
    pub shadow: bool,
}

/// The rule catalog, in reporting order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: UNSAFE_CONFINEMENT,
        summary: "`unsafe` appears only in crates/core/src/kernel.rs",
        suppressible: false,
        shadow: false,
    },
    RuleInfo {
        id: INTRINSICS_CONFINEMENT,
        summary: "core::arch/std::arch, feature detection, and #[target_feature] appear only in \
                  crates/core/src/kernel.rs",
        suppressible: false,
        shadow: false,
    },
    RuleInfo {
        id: PANIC_FREE_LIBRARY,
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
        suppressible: true,
        shadow: false,
    },
    RuleInfo {
        id: UNTRUSTED_LENGTH_FLOW,
        summary: "forward taint dataflow in binary decode functions: no allocation sized by a \
                  value derived from the input bytes unless it flowed through checked_len",
        suppressible: true,
        shadow: false,
    },
    RuleInfo {
        id: UNTRUSTED_LENGTH,
        summary: "shadow of the v1 identifier-sharing untrusted-length heuristic, kept one \
                  release for differential comparison against untrusted-length-flow",
        suppressible: false,
        shadow: true,
    },
    RuleInfo {
        id: LOCK_ORDER,
        summary: "the workspace-global lock-ordering graph (per-function nesting plus one \
                  call-graph hop, over static lock identities) has no cycles",
        suppressible: true,
        shadow: false,
    },
    RuleInfo {
        id: ATOMIC_PAIRING,
        summary: "every Release write pairs with an Acquire/SeqCst read of the same identity \
                  somewhere in the workspace (and vice versa); Relaxed requires a reasoned \
                  suppression",
        suppressible: true,
        shadow: false,
    },
    RuleInfo {
        id: DEPRECATED_SURFACE,
        summary: "the retired 0.2 API surface (evaluate_rlc/evaluate_concat, #[deprecated]) \
                  stays deleted",
        suppressible: false,
        shadow: false,
    },
    RuleInfo {
        id: SUPPRESSION_HYGIENE,
        summary: "suppression directives parse, name a known rule, state a reason, and discharge \
                  a real finding",
        suppressible: false,
        shadow: false,
    },
];

/// The ids of all suppressible rules.
pub fn suppressible_rules() -> Vec<&'static str> {
    RULES
        .iter()
        .filter(|r| r.suppressible)
        .map(|r| r.id)
        .collect()
}

/// Everything a per-file rule needs to know about one file.
pub struct FileContext<'a> {
    /// Workspace-relative path.
    pub path: &'a str,
    /// Path-derived classification.
    pub class: FileClass,
    /// The token stream.
    pub tokens: &'a [Token],
    /// Test and function spans.
    pub scopes: &'a Scopes,
    /// Token tree and extracted items.
    pub parsed: &'a ParseFile,
}

impl FileContext<'_> {
    fn finding(&self, token: &Token, rule: &'static str, message: String) -> Finding {
        Finding {
            file: self.path.to_owned(),
            line: token.line,
            col: token.col,
            rule,
            message,
            trace: Vec::new(),
        }
    }
}

/// Runs every per-file rule over one file; returns `(findings, shadow)`.
pub fn run_rules(ctx: &FileContext<'_>) -> (Vec<Finding>, Vec<Finding>) {
    let mut findings = Vec::new();
    let mut shadow = Vec::new();
    unsafe_confinement(ctx, &mut findings);
    intrinsics_confinement(ctx, &mut findings);
    panic_free_library(ctx, &mut findings);
    untrusted_length_flow(ctx, &mut findings);
    untrusted_length(ctx, &mut shadow);
    deprecated_surface(ctx, &mut findings);
    (findings, shadow)
}

fn unsafe_confinement(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.class.is_kernel {
        return;
    }
    for token in ctx.tokens {
        if token.is_ident("unsafe") {
            out.push(
                ctx.finding(
                    token,
                    UNSAFE_CONFINEMENT,
                    "`unsafe` outside crates/core/src/kernel.rs; unsafe code is confined to the \
                 kernel module"
                        .to_owned(),
                ),
            );
        }
    }
}

fn intrinsics_confinement(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if ctx.class.is_kernel {
        return;
    }
    let tokens = ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        let arch_path = token.is_ident("arch")
            && i >= 3
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && (tokens[i - 3].is_ident("core") || tokens[i - 3].is_ident("std"));
        if arch_path {
            out.push(
                ctx.finding(
                    token,
                    INTRINSICS_CONFINEMENT,
                    "architecture intrinsics path outside the kernel module; go through the \
                 rlc_core::kernel WordOps dispatcher instead"
                        .to_owned(),
                ),
            );
        } else if token.is_ident("is_x86_feature_detected") {
            out.push(
                ctx.finding(
                    token,
                    INTRINSICS_CONFINEMENT,
                    "feature detection outside the kernel module; the runtime dispatcher in \
                 crates/core/src/kernel.rs owns CPU feature decisions"
                        .to_owned(),
                ),
            );
        } else if token.is_ident("target_feature") {
            out.push(
                ctx.finding(
                    token,
                    INTRINSICS_CONFINEMENT,
                    "#[target_feature] outside the kernel module; SIMD entry points live behind \
                 the kernel dispatcher"
                        .to_owned(),
                ),
            );
        }
    }
}

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

fn panic_free_library(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    if !ctx.class.is_library {
        return;
    }
    let tokens = ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind != TokenKind::Ident || ctx.scopes.in_test(i) {
            continue;
        }
        let next_is = |ch: char| tokens.get(i + 1).map(|t| t.is_punct(ch)).unwrap_or(false);
        if PANIC_MACROS.contains(&token.text.as_str()) && next_is('!') {
            out.push(ctx.finding(
                token,
                PANIC_FREE_LIBRARY,
                format!(
                    "`{}!` in non-test library code; return a Result (QueryError or the \
                     module's error type) instead",
                    token.text
                ),
            ));
        } else if PANIC_METHODS.contains(&token.text.as_str())
            && i > 0
            && tokens[i - 1].is_punct('.')
            && next_is('(')
        {
            out.push(ctx.finding(
                token,
                PANIC_FREE_LIBRARY,
                format!(
                    "`.{}(...)` in non-test library code; propagate the error, or suppress \
                     with a stated reason if the call is genuinely infallible",
                    token.text
                ),
            ));
        }
    }
}

/// True for functions that decode untrusted binary formats: the
/// `from_bytes` loaders of RLC2/ETC1/RSH1 and the `from_binary_*` RLG1
/// loader. Both untrusted-length rules run only inside these.
fn is_decode_fn(name: &str) -> bool {
    name == "from_bytes" || name.starts_with("from_binary")
}

/// The shared bound-check helper every decoded length must flow through.
const BOUND_HELPER: &str = "checked_len";

/// The v2 rule: forward taint dataflow from the decoder's byte-slice
/// parameter to allocation-size sinks, sanitized only by `checked_len`.
fn untrusted_length_flow(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    for (item, name, params, body) in ctx.parsed.fns() {
        if !is_decode_fn(name) || ctx.scopes.in_test(item.start) {
            continue;
        }
        let Some(open) = body else { continue };
        let sources: Vec<(String, usize)> = params
            .iter()
            .filter(|p| p.is_byte_slice)
            .map(|p| (p.name.clone(), p.name_idx))
            .collect();
        if sources.is_empty() {
            continue;
        }
        let close = matching(ctx.tokens, open, '{', '}') - 1;
        let spec = TaintSpec {
            file: ctx.path,
            fn_name: name,
            sources,
            sanitizers: &[BOUND_HELPER],
        };
        for flow in dataflow::taint_fn(ctx.tokens, open, close, &spec) {
            let sink = &ctx.tokens[flow.sink_idx];
            out.push(Finding {
                file: ctx.path.to_owned(),
                line: sink.line,
                col: sink.col,
                rule: UNTRUSTED_LENGTH_FLOW,
                message: format!(
                    "`{}` sized by `{}`, which derives from the untrusted input of `{name}` \
                     without flowing through {BOUND_HELPER}(); sanitize the length first",
                    flow.sink_kind, flow.ident
                ),
                trace: flow.trace,
            });
        }
    }
}

/// The v1 shadow rule: the identifier-sharing heuristic, unchanged.
fn untrusted_length(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let decode_fns: Vec<&FnSpan> = ctx
        .scopes
        .fns()
        .iter()
        .filter(|f| is_decode_fn(&f.name))
        .collect();
    for span in decode_fns {
        // Nested decode helpers would be scanned twice via their parent's
        // span; that is harmless (identical findings deduplicate later).
        scan_decode_span(ctx, span, out);
    }
}

fn scan_decode_span(ctx: &FileContext<'_>, span: &FnSpan, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    let mut i = span.start;
    while i < span.end.min(tokens.len()) {
        if ctx.scopes.in_test(i) {
            i += 1;
            continue;
        }
        let token = &tokens[i];
        // `Xyz::with_capacity(args)`
        if token.is_ident("with_capacity")
            && tokens.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
        {
            let close = close_delim(tokens, i + 1, '(', ')');
            check_size_expr(ctx, span, i, &tokens[i + 2..close], out);
            i = close + 1;
            continue;
        }
        // `vec![value; count]`
        if token.is_ident("vec")
            && tokens.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false)
            && tokens.get(i + 2).map(|t| t.is_punct('[')).unwrap_or(false)
        {
            let close = close_delim(tokens, i + 2, '[', ']');
            if let Some(semi) = top_level_semi(tokens, i + 3, close) {
                check_size_expr(ctx, span, i, &tokens[semi + 1..close], out);
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
}

/// Index of the token closing the delimiter opened at `open` (exclusive
/// bound of the contents).
fn close_delim(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(open_ch) {
            depth += 1;
        } else if tokens[i].is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// Finds a `;` at delimiter depth zero within `start..end`.
fn top_level_semi(tokens: &[Token], start: usize, end: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, token) in tokens
        .iter()
        .enumerate()
        .take(end.min(tokens.len()))
        .skip(start)
    {
        if token.is_punct('(') || token.is_punct('[') || token.is_punct('{') {
            depth += 1;
        } else if token.is_punct(')') || token.is_punct(']') || token.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if token.is_punct(';') && depth == 0 {
            return Some(i);
        }
    }
    None
}

fn check_size_expr(
    ctx: &FileContext<'_>,
    span: &FnSpan,
    alloc_idx: usize,
    size_expr: &[Token],
    out: &mut Vec<Finding>,
) {
    let idents: Vec<&str> = size_expr
        .iter()
        .filter(|t| t.kind == TokenKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if idents.is_empty() {
        return; // constant size: `with_capacity(16)` is not untrusted
    }
    // Look for an earlier `checked_len(...)` call in the same function
    // whose arguments mention one of the identifiers sizing this
    // allocation.
    let tokens = ctx.tokens;
    let mut i = span.start;
    while i < alloc_idx.min(tokens.len()) {
        let t = &tokens[i];
        if t.is_ident(BOUND_HELPER) && tokens.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false) {
            let close = close_delim(tokens, i + 1, '(', ')');
            let checked: Vec<&str> = tokens[i + 2..close]
                .iter()
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.as_str())
                .collect();
            if idents.iter().any(|id| checked.contains(id)) {
                return;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    out.push(ctx.finding(
        &tokens[alloc_idx],
        UNTRUSTED_LENGTH,
        format!(
            "allocation sized by `{}` in a binary decode function without a division-form \
             bound check; route the length through {BOUND_HELPER}() first",
            idents.join(" "),
        ),
    ));
}

/// The retired API names from the 0.2 deprecation cycle.
const RETIRED_IDENTS: &[&str] = &["evaluate_rlc", "evaluate_concat"];

fn deprecated_surface(ctx: &FileContext<'_>, out: &mut Vec<Finding>) {
    let tokens = ctx.tokens;
    for (i, token) in tokens.iter().enumerate() {
        if token.kind == TokenKind::Ident && RETIRED_IDENTS.contains(&token.text.as_str()) {
            out.push(ctx.finding(
                token,
                DEPRECATED_SURFACE,
                format!(
                    "`{}` reintroduces the retired 0.2 evaluator surface; the replacement is \
                     ReachabilityEngine::prepare/evaluate_prepared",
                    token.text
                ),
            ));
        }
        // `#[deprecated]` / `#![deprecated]`: the deprecation cycle is
        // closed, shims must not come back.
        if token.is_ident("deprecated") && i >= 1 {
            let attr = tokens[i - 1].is_punct('[')
                && (i >= 2 && (tokens[i - 2].is_punct('#') || tokens[i - 2].is_punct('!')));
            if attr {
                out.push(
                    ctx.finding(
                        token,
                        DEPRECATED_SURFACE,
                        "`#[deprecated]` reintroduced; the workspace ships no transitional shims"
                            .to_owned(),
                    ),
                );
            }
        }
    }
}
