//! Suppression directives: `rlc-analyze: allow(<rule>) — <reason>`.
//!
//! A finding can be acknowledged in place with a plain `//` comment either
//! on the offending line or on the line directly above it (its own line).
//! The reason is mandatory: a suppression without a stated justification
//! is itself reported. Only plain line comments carry directives — doc
//! comments (`///`, `//!`) and block comments are documentation, so the
//! syntax can be *described* there without being *interpreted*.
//!
//! Suppressions are first-class output: every one in force is counted and
//! listed by `--json`/`--stats`, and a suppression that no longer matches
//! any finding is flagged as stale so they cannot quietly accumulate.

use crate::lexer::Comment;

/// A parsed, well-formed suppression directive.
#[derive(Clone, Debug)]
pub struct Suppression {
    /// The rule id being suppressed.
    pub rule: String,
    /// The stated justification (non-empty by construction).
    pub reason: String,
    /// 1-based line of the directive comment itself.
    pub line: u32,
    /// 1-based column of the directive comment.
    pub col: u32,
    /// The code line the directive applies to.
    pub target_line: u32,
    /// Set when a finding was discharged by this suppression.
    pub used: bool,
}

/// A directive that failed to parse, with the reason it is malformed.
#[derive(Clone, Debug)]
pub struct MalformedSuppression {
    /// What is wrong with the directive.
    pub problem: String,
    /// 1-based line of the directive comment.
    pub line: u32,
    /// 1-based column of the directive comment.
    pub col: u32,
}

/// Result of scanning one comment.
pub enum Scan {
    /// Not a directive at all (ordinary comment or doc comment).
    NotDirective,
    /// A well-formed directive (target line not yet resolved).
    Directive {
        /// The rule id named in `allow(...)`.
        rule: String,
        /// The stated justification.
        reason: String,
    },
    /// Something that tried to be a directive and failed.
    Malformed(String),
}

/// Scans one comment for a suppression directive.
///
/// `known_rules` is the rule catalog; directives naming an unknown rule
/// are malformed (a typoed rule id must not silently suppress nothing).
pub fn scan_comment(comment: &Comment, known_rules: &[&str]) -> Scan {
    let text = comment.text.as_str();
    let Some(rest) = text.strip_prefix("//") else {
        return Scan::NotDirective;
    };
    if rest.starts_with('/') || rest.starts_with('!') {
        return Scan::NotDirective; // doc comment: documentation, not directive
    }
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("rlc-analyze:") else {
        return Scan::NotDirective;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        return Scan::Malformed(
            "expected `rlc-analyze: allow(<rule>) — <reason>` after the directive prefix"
                .to_owned(),
        );
    };
    let Some(close) = rest.find(')') else {
        return Scan::Malformed("unclosed `allow(` in suppression directive".to_owned());
    };
    let rule = rest[..close].trim();
    if !known_rules.contains(&rule) {
        return Scan::Malformed(format!(
            "unknown rule `{rule}` in suppression directive (known rules: {})",
            known_rules.join(", ")
        ));
    }
    let after = rest[close + 1..].trim_start();
    let reason = after
        .strip_prefix('\u{2014}') // em dash
        .or_else(|| after.strip_prefix("--"))
        .or_else(|| after.strip_prefix('-'))
        .map(str::trim)
        .unwrap_or("");
    if reason.is_empty() {
        return Scan::Malformed(format!(
            "suppression of `{rule}` has no reason; write `rlc-analyze: allow({rule}) — <why \
             this site is sound>`"
        ));
    }
    Scan::Directive {
        rule: rule.to_owned(),
        reason: reason.to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    const KNOWN: &[&str] = &["panic-free-library", "atomic-pairing"];

    fn scan(text: &str) -> Scan {
        let lexed = lex(text);
        scan_comment(&lexed.comments[0], KNOWN)
    }

    #[test]
    fn parses_em_dash_and_ascii_separators() {
        for sep in ["—", "--", "-"] {
            let text = format!("// rlc-analyze: allow(panic-free-library) {sep} poisoning policy");
            match scan(&text) {
                Scan::Directive { rule, reason } => {
                    assert_eq!(rule, "panic-free-library");
                    assert_eq!(reason, "poisoning policy");
                }
                _ => panic!("expected directive for separator {sep:?}"),
            }
        }
    }

    #[test]
    fn doc_comments_are_documentation() {
        let text = "/// `// rlc-analyze: allow(panic-free-library) — example`";
        assert!(matches!(scan(text), Scan::NotDirective));
        let text = "//! rlc-analyze: allow(panic-free-library) — example";
        assert!(matches!(scan(text), Scan::NotDirective));
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let text = "// rlc-analyze: allow(no-such-rule) — whatever";
        assert!(matches!(scan(text), Scan::Malformed(_)));
    }

    #[test]
    fn missing_reason_is_malformed() {
        for text in [
            "// rlc-analyze: allow(panic-free-library)",
            "// rlc-analyze: allow(panic-free-library) —",
            "// rlc-analyze: allow(panic-free-library) -- ",
        ] {
            assert!(matches!(scan(text), Scan::Malformed(_)), "{text}");
        }
    }

    #[test]
    fn ordinary_comments_pass_through() {
        assert!(matches!(scan("// just a comment"), Scan::NotDirective));
    }
}
