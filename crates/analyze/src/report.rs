//! Workspace-level check outcome and its human/JSON renderings.
//!
//! The JSON schema is **version 2**: findings carry a machine-readable
//! `trace` array (source → steps → sink spans) for the dataflow rules,
//! rules carry a `shadow` flag, and the shadow rules' differential
//! findings are reported in a top-level `shadow_findings` array that
//! never affects the exit code.

use crate::rules::{Finding, RULES};

/// A suppression directive in force somewhere in the workspace.
#[derive(Clone, Debug)]
pub struct SuppressionRecord {
    /// Workspace-relative path of the file holding the directive.
    pub file: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// The suppressed rule id.
    pub rule: String,
    /// The stated justification.
    pub reason: String,
    /// Whether the directive discharged a finding.
    pub used: bool,
}

/// The outcome of a whole-workspace check.
#[derive(Debug, Default)]
pub struct CheckOutcome {
    /// Surviving findings across all files, sorted by file/line/col.
    pub findings: Vec<Finding>,
    /// Shadow-rule findings (differential channel; never gate).
    pub shadow_findings: Vec<Finding>,
    /// Every suppression directive encountered.
    pub suppressions: Vec<SuppressionRecord>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl CheckOutcome {
    /// Suppressions that discharged a finding.
    pub fn suppressions_in_force(&self) -> usize {
        self.suppressions.iter().filter(|s| s.used).count()
    }

    /// `true` when the tree is clean (shadow findings do not gate).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One human line per finding: `file:line:col: rule: message`, with
    /// indented trace steps for dataflow findings.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: {}: {}\n",
                f.file, f.line, f.col, f.rule, f.message
            ));
            for step in &f.trace {
                out.push_str(&format!(
                    "    trace: {}:{}:{}: {}\n",
                    step.file, step.line, step.col, step.note
                ));
            }
        }
        out
    }

    /// The `--stats` summary line CI logs show even on a clean tree.
    pub fn render_stats(&self) -> String {
        format!(
            "rlc-analyze: {} files scanned, {} rules run, {} finding{}, {} shadow finding{}, \
             {} suppression{} in force",
            self.files_scanned,
            RULES.len(),
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.shadow_findings.len(),
            if self.shadow_findings.len() == 1 {
                ""
            } else {
                "s"
            },
            self.suppressions_in_force(),
            if self.suppressions_in_force() == 1 {
                ""
            } else {
                "s"
            },
        )
    }

    /// Machine-readable rendering of the whole outcome (schema version 2).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"version\":2,");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str("\"rules\":[");
        for (i, rule) in RULES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"id\":{},\"summary\":{},\"suppressible\":{},\"shadow\":{}}}",
                json_str(rule.id),
                json_str(rule.summary),
                rule.suppressible,
                rule.shadow
            ));
        }
        out.push_str("],\"findings\":[");
        render_findings(&mut out, &self.findings);
        out.push_str("],\"shadow_findings\":[");
        render_findings(&mut out, &self.shadow_findings);
        out.push_str("],\"suppressions\":[");
        for (i, s) in self.suppressions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"reason\":{},\"used\":{}}}",
                json_str(&s.file),
                s.line,
                json_str(&s.rule),
                json_str(&s.reason),
                s.used
            ));
        }
        out.push_str(&format!(
            "],\"summary\":{{\"findings\":{},\"shadow_findings\":{},\"suppressions_in_force\":{}}}}}",
            self.findings.len(),
            self.shadow_findings.len(),
            self.suppressions_in_force()
        ));
        out
    }
}

fn render_findings(out: &mut String, findings: &[Finding]) {
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"rule\":{},\"message\":{},\"trace\":[",
            json_str(&f.file),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message)
        ));
        for (j, step) in f.trace.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"note\":{},\"file\":{},\"line\":{},\"col\":{}}}",
                json_str(&step.note),
                json_str(&step.file),
                step.line,
                step.col
            ));
        }
        out.push_str("]}");
    }
}

/// Escapes a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataflow::TraceStep;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn stats_line_shape() {
        let outcome = CheckOutcome {
            files_scanned: 3,
            ..Default::default()
        };
        let line = outcome.render_stats();
        assert!(line.contains("3 files scanned"));
        assert!(line.contains("0 findings"));
        assert!(line.contains("0 shadow findings"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let outcome = CheckOutcome {
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_owned(),
                line: 3,
                col: 7,
                rule: crate::rules::UNTRUSTED_LENGTH_FLOW,
                message: "msg with \"quotes\"".to_owned(),
                trace: vec![TraceStep {
                    file: "crates/x/src/lib.rs".to_owned(),
                    line: 2,
                    col: 5,
                    note: "untrusted byte-slice parameter `data`".to_owned(),
                }],
            }],
            shadow_findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_owned(),
                line: 3,
                col: 7,
                rule: crate::rules::UNTRUSTED_LENGTH,
                message: "v1 shadow".to_owned(),
                trace: Vec::new(),
            }],
            suppressions: vec![SuppressionRecord {
                file: "crates/x/src/lib.rs".to_owned(),
                line: 9,
                rule: "atomic-pairing".to_owned(),
                reason: "stats counter".to_owned(),
                used: true,
            }],
            files_scanned: 1,
        };
        let json = outcome.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"version\":2,"));
        assert!(json.contains("\"findings\":["));
        assert!(json.contains("\"shadow_findings\":["));
        assert!(json.contains("\"trace\":[{\"note\":"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.contains("\"shadow\":true"));
        assert!(json.contains("\"suppressions_in_force\":1"));
    }

    #[test]
    fn human_rendering_indents_trace_steps() {
        let outcome = CheckOutcome {
            findings: vec![Finding {
                file: "a.rs".to_owned(),
                line: 1,
                col: 1,
                rule: crate::rules::UNTRUSTED_LENGTH_FLOW,
                message: "m".to_owned(),
                trace: vec![TraceStep {
                    file: "a.rs".to_owned(),
                    line: 1,
                    col: 2,
                    note: "n".to_owned(),
                }],
            }],
            ..Default::default()
        };
        let human = outcome.render_human();
        assert!(human.contains("a.rs:1:1: untrusted-length-flow: m"));
        assert!(human.contains("    trace: a.rs:1:2: n"));
    }
}
