//! A hand-rolled Rust lexer producing position-stamped tokens.
//!
//! The analyzer's rules are lexical, so the one job this module must do
//! perfectly is *classification*: an `unsafe` inside a string literal, a
//! doc comment, or a nested block comment is not an `unsafe` keyword, and
//! `'static` is a lifetime while `'s'` is a char literal. The lexer handles
//! line comments, nested block comments, string/char/byte literals,
//! raw strings with arbitrary `#` guards, raw identifiers, lifetimes, and
//! numeric literals. Everything else becomes a single-character punctuation
//! token — the rules only ever match identifier sequences and punctuation,
//! so multi-character operators are not needed.
//!
//! Comments are not tokens: they are returned in a side list so the
//! suppression scanner can read `// rlc-analyze: allow(...)` directives
//! without the rules ever seeing comment text.

/// Classification of a lexed token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish them).
    Ident,
    /// A lifetime such as `'a` or `'static` (text excludes the quote).
    Lifetime,
    /// Numeric literal (integer or float, any radix, with suffix).
    Number,
    /// String literal of any flavor: `"…"`, `r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`. The text is the raw source slice including delimiters.
    Str,
    /// Char or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A single punctuation character.
    Punct,
}

/// One token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// The source text of the token (for [`TokenKind::Punct`], one char).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True if the token is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// True if the token is a punctuation token with exactly this char.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

/// A comment with its 1-based source position (text includes delimiters).
#[derive(Clone, Debug)]
pub struct Comment {
    /// Full comment text including `//` or `/* */` delimiters.
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based column of the comment's first character.
    pub col: u32,
}

/// Lexer output: the token stream plus the comment side-channel.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(source: &str) -> Self {
        Cursor {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let ch = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if ch == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(ch)
    }
}

fn is_ident_start(ch: char) -> bool {
    ch == '_' || ch.is_alphabetic()
}

fn is_ident_continue(ch: char) -> bool {
    ch == '_' || ch.is_alphanumeric()
}

/// Lexes `source`, returning tokens and comments with 1-based positions.
///
/// The lexer is total: malformed input (an unterminated string or comment)
/// consumes to end of file rather than failing, so the analyzer can always
/// report on a file even mid-edit.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor::new(source);
    let mut out = Lexed::default();
    while let Some(ch) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if ch.is_whitespace() {
            cur.bump();
            continue;
        }
        if ch == '/' && cur.peek_at(1) == Some('/') {
            out.comments.push(line_comment(&mut cur, line, col));
            continue;
        }
        if ch == '/' && cur.peek_at(1) == Some('*') {
            out.comments.push(block_comment(&mut cur, line, col));
            continue;
        }
        let token = match ch {
            '"' => string_literal(&mut cur, line, col),
            '\'' => quote_token(&mut cur, line, col),
            'r' | 'b' => prefixed_token(&mut cur, line, col),
            c if is_ident_start(c) => ident(&mut cur, line, col),
            c if c.is_ascii_digit() => number(&mut cur, line, col),
            _ => {
                let mut text = String::new();
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
                Token {
                    kind: TokenKind::Punct,
                    text,
                    line,
                    col,
                }
            }
        };
        out.tokens.push(token);
    }
    out
}

fn line_comment(cur: &mut Cursor, line: u32, col: u32) -> Comment {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if ch == '\n' {
            break;
        }
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    Comment { text, line, col }
}

fn block_comment(cur: &mut Cursor, line: u32, col: u32) -> Comment {
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(ch) = cur.peek() {
        if ch == '/' && cur.peek_at(1) == Some('*') {
            depth += 1;
            text.push('/');
            text.push('*');
            cur.bump();
            cur.bump();
            continue;
        }
        if ch == '*' && cur.peek_at(1) == Some('/') {
            depth = depth.saturating_sub(1);
            text.push('*');
            text.push('/');
            cur.bump();
            cur.bump();
            if depth == 0 {
                break;
            }
            continue;
        }
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    Comment { text, line, col }
}

/// Consumes a `"…"` string with backslash escapes (opening quote at cursor).
fn string_literal(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    if let Some(c) = cur.bump() {
        text.push(c); // opening quote
    }
    while let Some(ch) = cur.peek() {
        if ch == '\\' {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            continue;
        }
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        if ch == '"' {
            break;
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// Consumes a raw string `r"…"` / `r#"…"#` (cursor on the first `#` or `"`
/// after the prefix; `text` already holds the prefix).
fn raw_string(cur: &mut Cursor, mut text: String, line: u32, col: u32) -> Token {
    let mut guards = 0usize;
    while cur.peek() == Some('#') {
        guards += 1;
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    if cur.peek() == Some('"') {
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        while let Some(ch) = cur.bump() {
            text.push(ch);
            if ch == '"' {
                let closing = (0..guards).all(|i| cur.peek_at(i) == Some('#'));
                if closing {
                    for _ in 0..guards {
                        if let Some(c) = cur.bump() {
                            text.push(c);
                        }
                    }
                    break;
                }
            }
        }
    }
    Token {
        kind: TokenKind::Str,
        text,
        line,
        col,
    }
}

/// Disambiguates tokens starting with `r` or `b`: raw strings (`r"`,
/// `r#"`), byte strings (`b"`, `br"`, `br#"`), byte chars (`b'x'`), raw
/// identifiers (`r#ident`), or plain identifiers.
fn prefixed_token(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let first = cur.peek().unwrap_or('r');
    let mut offset = 1;
    if first == 'b' && cur.peek_at(1) == Some('r') {
        offset = 2;
    }
    // How the prefix continues decides the token class.
    let mut guard_end = offset;
    while cur.peek_at(guard_end) == Some('#') {
        guard_end += 1;
    }
    let after_guards = cur.peek_at(guard_end);
    let raw_prefix = offset == 2 || first == 'r';
    if raw_prefix && after_guards == Some('"') {
        let mut text = String::new();
        for _ in 0..offset {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
        }
        return raw_string(cur, text, line, col);
    }
    if first == 'b' && cur.peek_at(1) == Some('"') {
        let mut text = String::new();
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        let inner = string_literal(cur, line, col);
        text.push_str(&inner.text);
        return Token {
            kind: TokenKind::Str,
            text,
            line,
            col,
        };
    }
    if first == 'b' && cur.peek_at(1) == Some('\'') {
        let mut text = String::new();
        if let Some(c) = cur.bump() {
            text.push(c);
        }
        let inner = quote_token(cur, line, col);
        text.push_str(&inner.text);
        return Token {
            kind: TokenKind::Char,
            text,
            line,
            col,
        };
    }
    if first == 'r' && cur.peek_at(1) == Some('#') && after_guards.map(is_ident_start) == Some(true)
    {
        // Raw identifier `r#ident`: skip the prefix, lex the identifier.
        cur.bump();
        cur.bump();
        let mut token = ident(cur, line, col);
        token.text = format!("r#{}", token.text);
        return token;
    }
    ident(cur, line, col)
}

/// Disambiguates `'…`: a lifetime (`'a`, `'static`, `'_`) or a char
/// literal (`'x'`, `'\n'`, `'''`). Cursor is on the opening quote.
fn quote_token(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    if let Some(c) = cur.bump() {
        text.push(c); // opening quote
    }
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume the escape, then to the close.
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            while let Some(ch) = cur.bump() {
                text.push(ch);
                if ch == '\'' {
                    break;
                }
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            }
        }
        Some(c) if is_ident_start(c) => {
            // `'x'` is a char literal; `'x` followed by anything else is a
            // lifetime. One character of lookahead past the ident char
            // decides.
            if cur.peek_at(1) == Some('\'') {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
                return Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                    col,
                };
            }
            let mut name = String::new();
            while let Some(ch) = cur.peek() {
                if !is_ident_continue(ch) {
                    break;
                }
                if let Some(c) = cur.bump() {
                    name.push(c);
                }
            }
            Token {
                kind: TokenKind::Lifetime,
                text: name,
                line,
                col,
            }
        }
        Some(_) => {
            // Non-identifier char literal such as `'%'` or `'('`.
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            if cur.peek() == Some('\'') {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            Token {
                kind: TokenKind::Char,
                text,
                line,
                col,
            }
        }
        None => Token {
            kind: TokenKind::Char,
            text,
            line,
            col,
        },
    }
}

fn ident(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if !is_ident_continue(ch) {
            break;
        }
        if let Some(c) = cur.bump() {
            text.push(c);
        }
    }
    Token {
        kind: TokenKind::Ident,
        text,
        line,
        col,
    }
}

fn number(cur: &mut Cursor, line: u32, col: u32) -> Token {
    let mut text = String::new();
    while let Some(ch) = cur.peek() {
        if is_ident_continue(ch) {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            continue;
        }
        // A `.` continues the number only when followed by a digit, so
        // range expressions like `0..n` stay three tokens.
        if ch == '.' && cur.peek_at(1).map(|c| c.is_ascii_digit()) == Some(true) {
            if let Some(c) = cur.bump() {
                text.push(c);
            }
            continue;
        }
        break;
    }
    Token {
        kind: TokenKind::Number,
        text,
        line,
        col,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<(TokenKind, String)> {
        lex(source)
            .tokens
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts_with_positions() {
        let lexed = lex("fn main() {\n    let x = 1;\n}\n");
        let t = &lexed.tokens;
        assert!(t[0].is_ident("fn"));
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert!(t[1].is_ident("main"));
        assert_eq!((t[1].line, t[1].col), (1, 4));
        let let_tok = t.iter().find(|t| t.is_ident("let")).unwrap();
        assert_eq!((let_tok.line, let_tok.col), (2, 5));
    }

    #[test]
    fn line_and_block_comments_are_side_channel() {
        let lexed = lex("// unsafe here\nlet a = 1; /* unsafe { } */ let b = 2;\n");
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(lexed.comments[0].text, "// unsafe here");
        assert_eq!(lexed.comments[1].text, "/* unsafe { } */");
        assert_eq!(lexed.comments[1].line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let lexed = lex("/* outer /* inner unsafe */ still comment */ let x = 1;");
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("let")));
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed.comments[0].text.ends_with("still comment */"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let lexed = lex(r#"let s = "unsafe { panic!() }"; let t = 1;"#);
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("panic")));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.contains("unsafe")));
    }

    #[test]
    fn raw_strings_with_guards() {
        let source = r###"let s = r#"embedded "quote" and unsafe"#; let x = 1;"###;
        let lexed = lex(source);
        let raw = lexed
            .tokens
            .iter()
            .find(|t| t.kind == TokenKind::Str)
            .unwrap();
        assert_eq!(raw.text, r###"r#"embedded "quote" and unsafe"#"###);
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("unsafe")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("x")));
    }

    #[test]
    fn raw_string_spanning_lines_keeps_later_positions_honest() {
        let lexed = lex("let s = r\"line one\nline two\";\nlet y = 1;");
        let y = lexed.tokens.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (3, 5));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let lexed = lex(r##"let a = b"unsafe"; let c = b'x'; let d = br#"raw"#;"##);
        assert!(lexed.tokens.iter().all(|t| !t.is_ident("unsafe")));
        let strs: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Char));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let lexed = lex("fn f<'a>(x: &'a str, y: &'static str) { let c = 's'; let d = '\\''; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a", "static"]);
        let chars: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(chars, vec!["'s'", "'\\''"]);
    }

    #[test]
    fn underscore_lifetime_and_wildcard() {
        let lexed = lex("fn f(x: &'_ str) {}");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Lifetime && t.text == "_"));
    }

    #[test]
    fn raw_identifiers() {
        let got = kinds("let r#fn = 1;");
        assert!(got.contains(&(TokenKind::Ident, "r#fn".to_owned())));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let got = kinds("for i in 0..10 { let f = 1.5e3; let h = 0xFF_u32; }");
        assert!(got.contains(&(TokenKind::Number, "0".to_owned())));
        assert!(got.contains(&(TokenKind::Number, "10".to_owned())));
        assert!(got.contains(&(TokenKind::Number, "0xFF_u32".to_owned())));
    }

    #[test]
    fn unterminated_string_consumes_to_eof_without_panicking() {
        let lexed = lex("let s = \"never closed\nfn g() {}");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokenKind::Str));
    }
}
