//! Per-file analysis: lex, classify, run rules, apply suppressions.

use crate::lexer::{lex, Token};
use crate::rules::{self, FileContext, Finding, SUPPRESSION_HYGIENE};
use crate::scope::{classify, Scopes};
use crate::suppress::{scan_comment, Scan, Suppression};

/// The outcome of analyzing one file.
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression, in source order.
    pub findings: Vec<Finding>,
    /// Every well-formed suppression directive in the file (used or not).
    pub suppressions: Vec<Suppression>,
}

/// Resolves the code line a directive on `line` applies to: the same line
/// when code shares it (trailing comment), otherwise the next line that
/// holds a token.
fn target_line(tokens: &[Token], line: u32) -> u32 {
    if tokens.iter().any(|t| t.line == line) {
        return line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > line)
        .min()
        .unwrap_or(line)
}

/// Analyzes one file's source under its workspace-relative path.
///
/// The path drives classification (library vs test vs kernel), so tests
/// can exercise any rule by choosing a virtual path for fixture content.
pub fn analyze_source(path: &str, source: &str) -> FileReport {
    let lexed = lex(source);
    let scopes = Scopes::compute(&lexed.tokens);
    let ctx = FileContext {
        path,
        class: classify(path),
        tokens: &lexed.tokens,
        scopes: &scopes,
    };
    let mut raw = rules::run_rules(&ctx);
    raw.sort();
    raw.dedup();

    // Collect directives, reporting malformed ones as hygiene findings.
    let known: Vec<&str> = rules::RULES.iter().map(|r| r.id).collect();
    let suppressible = rules::suppressible_rules();
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut hygiene: Vec<Finding> = Vec::new();
    for comment in &lexed.comments {
        match scan_comment(comment, &known) {
            Scan::NotDirective => {}
            Scan::Malformed(problem) => hygiene.push(Finding {
                file: path.to_owned(),
                line: comment.line,
                col: comment.col,
                rule: SUPPRESSION_HYGIENE,
                message: problem,
            }),
            Scan::Directive { rule, reason } => {
                if !suppressible.contains(&rule.as_str()) {
                    hygiene.push(Finding {
                        file: path.to_owned(),
                        line: comment.line,
                        col: comment.col,
                        rule: SUPPRESSION_HYGIENE,
                        message: format!(
                            "rule `{rule}` cannot be suppressed; fix the violation instead"
                        ),
                    });
                    continue;
                }
                suppressions.push(Suppression {
                    target_line: target_line(&lexed.tokens, comment.line),
                    rule,
                    reason,
                    line: comment.line,
                    col: comment.col,
                    used: false,
                });
            }
        }
    }

    // Discharge findings against suppressions.
    let mut findings: Vec<Finding> = Vec::new();
    for finding in raw {
        let slot = suppressions
            .iter_mut()
            .find(|s| s.rule == finding.rule && s.target_line == finding.line);
        match slot {
            Some(suppression) => suppression.used = true,
            None => findings.push(finding),
        }
    }

    // A directive that discharged nothing is stale and must go.
    for suppression in &suppressions {
        if !suppression.used {
            hygiene.push(Finding {
                file: path.to_owned(),
                line: suppression.line,
                col: suppression.col,
                rule: SUPPRESSION_HYGIENE,
                message: format!(
                    "suppression of `{}` does not match any finding on line {}; remove the \
                     stale directive",
                    suppression.rule, suppression.target_line
                ),
            });
        }
    }

    findings.extend(hygiene);
    findings.sort();
    FileReport {
        findings,
        suppressions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    #[test]
    fn trailing_suppression_discharges_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"set\") \
                   // rlc-analyze: allow(panic-free-library) — checked by caller\n}\n";
        let report = analyze_source(LIB, src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressions.len(), 1);
        assert!(report.suppressions[0].used);
    }

    #[test]
    fn preceding_line_suppression_discharges_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // rlc-analyze: allow(panic-free-library) — checked by caller\n    \
                   x.unwrap()\n}\n";
        let report = analyze_source(LIB, src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.suppressions[0].used);
    }

    #[test]
    fn stale_suppression_is_reported() {
        let src = "// rlc-analyze: allow(panic-free-library) — nothing here\nfn f() {}\n";
        let report = analyze_source(LIB, src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, SUPPRESSION_HYGIENE);
    }

    #[test]
    fn unsuppressible_rule_rejects_directive() {
        let src = "// rlc-analyze: allow(unsafe-confinement) — trust me\nfn f() {}\n";
        let report = analyze_source(LIB, src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("cannot be suppressed"));
    }

    #[test]
    fn wrong_rule_does_not_discharge() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // rlc-analyze: allow(atomic-ordering) — wrong rule\n    x.unwrap()\n}\n";
        let report = analyze_source(LIB, src);
        // The unwrap finding stays, and the directive is stale: two findings.
        assert_eq!(report.findings.len(), 2);
    }
}
