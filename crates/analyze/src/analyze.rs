//! Two-phase analysis: per-file rules + fact extraction, then a
//! workspace-level resolve that runs the global rules and discharges
//! suppressions.
//!
//! Phase one ([`analyze_file`]) lexes, parses, and classifies one file,
//! runs every per-file rule, extracts its concurrency facts, and scans
//! its comments for suppression directives. Phase two ([`resolve`]) runs
//! the workspace-global rules ([`crate::locks::lock_order`],
//! [`crate::locks::atomic_pairing`]) over the merged facts, then
//! discharges findings against suppressions per file and flags stale
//! directives. [`analyze_source`] is the single-file convenience wrapper
//! (a one-file workspace), which keeps fixture tests hermetic.

use crate::lexer::{lex, Token};
use crate::locks::{self, FileFacts};
use crate::parse;
use crate::rules::{self, FileContext, Finding, SUPPRESSION_HYGIENE};
use crate::scope::{classify, Scopes};
use crate::suppress::{scan_comment, Scan, Suppression};

/// Phase-one output for one file: findings not yet suppression-resolved.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Workspace-relative path.
    pub path: String,
    /// Per-file rule findings (pre-suppression).
    pub findings: Vec<Finding>,
    /// Shadow-rule findings (differential channel, never gate).
    pub shadow: Vec<Finding>,
    /// Well-formed suppression directives found in the file.
    pub suppressions: Vec<Suppression>,
    /// Hygiene findings from malformed/unsuppressible directives.
    pub hygiene: Vec<Finding>,
    /// Concurrency facts for the workspace-global rules.
    pub facts: FileFacts,
}

/// The suppression-resolved outcome of analyzing one file (or, via
/// [`resolve`], the concatenation over a whole workspace).
#[derive(Debug, Default)]
pub struct FileReport {
    /// Findings that survived suppression, in source order.
    pub findings: Vec<Finding>,
    /// Shadow-rule findings (reported, never gate, not suppressible).
    pub shadow: Vec<Finding>,
    /// Every well-formed suppression directive (used or not), paired
    /// with the path holding it.
    pub suppressions: Vec<(String, Suppression)>,
}

/// Resolves the code line a directive on `line` applies to: the same line
/// when code shares it (trailing comment), otherwise the next line that
/// holds a token.
fn target_line(tokens: &[Token], line: u32) -> u32 {
    if tokens.iter().any(|t| t.line == line) {
        return line;
    }
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > line)
        .min()
        .unwrap_or(line)
}

/// Phase one: analyzes one file's source under its workspace-relative
/// path.
///
/// The path drives classification (library vs test vs kernel), so tests
/// can exercise any rule by choosing a virtual path for fixture content.
pub fn analyze_file(path: &str, source: &str) -> FileAnalysis {
    let lexed = lex(source);
    let scopes = Scopes::compute(&lexed.tokens);
    let parsed = parse::parse(&lexed.tokens);
    let class = classify(path);
    let ctx = FileContext {
        path,
        class,
        tokens: &lexed.tokens,
        scopes: &scopes,
        parsed: &parsed,
    };
    let (mut findings, mut shadow) = rules::run_rules(&ctx);
    findings.sort();
    findings.dedup();
    shadow.sort();
    shadow.dedup();
    let facts = locks::extract(path, class, &lexed.tokens, &scopes, &parsed);

    // Collect directives, reporting malformed ones as hygiene findings.
    let known: Vec<&str> = rules::RULES.iter().map(|r| r.id).collect();
    let suppressible = rules::suppressible_rules();
    let mut suppressions: Vec<Suppression> = Vec::new();
    let mut hygiene: Vec<Finding> = Vec::new();
    for comment in &lexed.comments {
        match scan_comment(comment, &known) {
            Scan::NotDirective => {}
            Scan::Malformed(problem) => hygiene.push(Finding {
                file: path.to_owned(),
                line: comment.line,
                col: comment.col,
                rule: SUPPRESSION_HYGIENE,
                message: problem,
                trace: Vec::new(),
            }),
            Scan::Directive { rule, reason } => {
                if !suppressible.contains(&rule.as_str()) {
                    hygiene.push(Finding {
                        file: path.to_owned(),
                        line: comment.line,
                        col: comment.col,
                        rule: SUPPRESSION_HYGIENE,
                        message: format!(
                            "rule `{rule}` cannot be suppressed; fix the violation instead"
                        ),
                        trace: Vec::new(),
                    });
                    continue;
                }
                suppressions.push(Suppression {
                    target_line: target_line(&lexed.tokens, comment.line),
                    rule,
                    reason,
                    line: comment.line,
                    col: comment.col,
                    used: false,
                });
            }
        }
    }

    FileAnalysis {
        path: path.to_owned(),
        findings,
        shadow,
        suppressions,
        hygiene,
        facts,
    }
}

/// Phase two: runs the workspace-global rules over the merged facts,
/// then discharges findings against suppressions per file.
pub fn resolve(mut files: Vec<FileAnalysis>) -> FileReport {
    // Global rules over the merged fact base.
    let facts: Vec<FileFacts> = files.iter().map(|f| f.facts.clone()).collect();
    let mut global = locks::lock_order(&facts);
    global.extend(locks::atomic_pairing(&facts));
    for finding in global {
        if let Some(file) = files.iter_mut().find(|f| f.path == finding.file) {
            file.findings.push(finding);
        }
    }

    let mut report = FileReport::default();
    for file in &mut files {
        file.findings.sort();
        file.findings.dedup();

        // Discharge findings against suppressions.
        let mut kept: Vec<Finding> = Vec::new();
        for finding in file.findings.drain(..) {
            let slot = file
                .suppressions
                .iter_mut()
                .find(|s| s.rule == finding.rule && s.target_line == finding.line);
            match slot {
                Some(suppression) => suppression.used = true,
                None => kept.push(finding),
            }
        }

        // A directive that discharged nothing is stale and must go.
        let mut hygiene = std::mem::take(&mut file.hygiene);
        for suppression in &file.suppressions {
            if !suppression.used {
                hygiene.push(Finding {
                    file: file.path.clone(),
                    line: suppression.line,
                    col: suppression.col,
                    rule: SUPPRESSION_HYGIENE,
                    message: format!(
                        "suppression of `{}` does not match any finding on line {}; remove the \
                         stale directive",
                        suppression.rule, suppression.target_line
                    ),
                    trace: Vec::new(),
                });
            }
        }

        kept.extend(hygiene);
        kept.sort();
        report.findings.extend(kept);
        report.shadow.append(&mut file.shadow);
        report
            .suppressions
            .extend(file.suppressions.drain(..).map(|s| (file.path.clone(), s)));
    }
    report.findings.sort();
    report.shadow.sort();
    report
}

/// Analyzes one file as a one-file workspace: per-file rules, the global
/// rules restricted to this file's facts, and suppression resolution.
pub fn analyze_source(path: &str, source: &str) -> FileReport {
    resolve(vec![analyze_file(path, source)])
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: &str = "crates/demo/src/lib.rs";

    #[test]
    fn trailing_suppression_discharges_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.expect(\"set\") \
                   // rlc-analyze: allow(panic-free-library) — checked by caller\n}\n";
        let report = analyze_source(LIB, src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressions.len(), 1);
        assert!(report.suppressions[0].1.used);
    }

    #[test]
    fn preceding_line_suppression_discharges_finding() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // rlc-analyze: allow(panic-free-library) — checked by caller\n    \
                   x.unwrap()\n}\n";
        let report = analyze_source(LIB, src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.suppressions[0].1.used);
    }

    #[test]
    fn stale_suppression_is_reported() {
        let src = "// rlc-analyze: allow(panic-free-library) — nothing here\nfn f() {}\n";
        let report = analyze_source(LIB, src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, SUPPRESSION_HYGIENE);
    }

    #[test]
    fn unsuppressible_rule_rejects_directive() {
        let src = "// rlc-analyze: allow(unsafe-confinement) — trust me\nfn f() {}\n";
        let report = analyze_source(LIB, src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("cannot be suppressed"));
    }

    #[test]
    fn shadow_rule_rejects_directive() {
        let src = "// rlc-analyze: allow(untrusted-length) — shadow rules never gate\nfn f() {}\n";
        let report = analyze_source(LIB, src);
        assert_eq!(report.findings.len(), 1);
        assert!(report.findings[0].message.contains("cannot be suppressed"));
    }

    #[test]
    fn wrong_rule_does_not_discharge() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // rlc-analyze: allow(atomic-pairing) — wrong rule\n    x.unwrap()\n}\n";
        let report = analyze_source(LIB, src);
        // The unwrap finding stays, and the directive is stale: two findings.
        assert_eq!(report.findings.len(), 2);
    }

    #[test]
    fn global_atomic_finding_is_suppressible_per_line() {
        let src = "fn bump(&self) {\n    \
                   // rlc-analyze: allow(atomic-pairing) — observational counter, no ordering needed\n    \
                   self.hits.fetch_add(1, Ordering::Relaxed);\n}\n";
        let report = analyze_source(LIB, src);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert!(report.suppressions[0].1.used);
    }

    #[test]
    fn shadow_findings_do_not_gate() {
        // v1 flags this (no checked_len sharing an ident), v2 also flags
        // it; the v1 copy must land in `shadow`, the v2 copy in `findings`.
        let src = "fn from_bytes(data: &[u8]) -> Vec<u8> {\n    let n = data[0] as usize;\n    \
                   vec![0u8; n]\n}\n";
        let report = analyze_source(LIB, src);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, crate::rules::UNTRUSTED_LENGTH_FLOW);
        assert_eq!(report.shadow.len(), 1);
        assert_eq!(report.shadow[0].rule, crate::rules::UNTRUSTED_LENGTH);
    }
}
