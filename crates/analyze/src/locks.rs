//! Layer 3b of the pipeline: workspace-global concurrency rules.
//!
//! This module extracts per-file *concurrency facts* — lock acquisition
//! sites, call sites, atomic operations — and runs the two rules that
//! need a whole-workspace view over the merged facts:
//!
//! * **`lock-order`**: build a global lock-ordering digraph and report
//!   every cycle as a potential deadlock, with a witness path for each
//!   edge of the cycle.
//! * **`atomic-pairing`**: every `Ordering::Release` store must have a
//!   matching `Acquire`/`SeqCst` load of the same identity somewhere in
//!   the workspace (and vice versa), and every `Ordering::Relaxed` site
//!   must carry a reasoned suppression.
//!
//! ## How lock identities are derived
//!
//! A lock site is either a zero-argument `.lock()` method call or a call
//! to a configured *lock primitive* (`lock_recover`, `lock_shard` — the
//! workspace's poison-recovering wrappers). The identity is the **final
//! path segment** of the receiver (for `.lock()`) or of the first
//! argument (for primitives), with subscripts and call parentheses
//! stripped: `self.state.pending` → `pending`, `self.shards[i]` →
//! `shards`, `lock_recover(&gate)` → `gate`. Identities are *static*: two
//! runtime instances behind the same field name share one node, so
//! self-edges (`A → A`) are excluded from cycle reporting — sharded
//! same-field locking is ubiquitous and ordered by disjointness, not
//! acquisition order. The bodies of the lock primitives themselves are
//! skipped (their `mutex.lock()` would otherwise conflate every caller
//! under one generic identity), and only library non-test code
//! contributes facts.
//!
//! The ordering edges come from two places: two acquisitions in the same
//! function (`A` then `B` ⇒ `A → B`), and one call-graph hop — a
//! function that acquires `A` and then calls `g`, for every workspace
//! function named `g` that acquires `B` (`A → B`). The call graph is a
//! by-name approximation from the parser layer.

use crate::dataflow::TraceStep;
use crate::lexer::{Token, TokenKind};
use crate::parse::{call_sites, matching, ParseFile};
use crate::rules::{Finding, ATOMIC_PAIRING, LOCK_ORDER};
use crate::scope::{FileClass, Scopes};
use std::collections::{BTreeMap, BTreeSet};

/// Functions whose *call* is itself a lock acquisition and whose bodies
/// are skipped during extraction.
pub const LOCK_PRIMITIVES: &[&str] = &["lock_recover", "lock_shard"];

/// One lock acquisition site.
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Derived static lock identity.
    pub identity: String,
    /// Token index of the site (for ordering within the function).
    pub pos: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// What an atomic operation does to its memory location.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AtomicKind {
    /// `.load(...)`.
    Load,
    /// `.store(...)`.
    Store,
    /// Read-modify-write: `fetch_*`, `swap`, `compare_exchange*`.
    Rmw,
}

/// One atomic operation site with its ordering.
#[derive(Clone, Debug)]
pub struct AtomicSite {
    /// Derived identity (final path segment of the receiver).
    pub identity: String,
    /// Load, store, or RMW.
    pub kind: AtomicKind,
    /// The `Ordering::` variant named in the arguments.
    pub ordering: String,
    /// 1-based line of the `Ordering::X` token.
    pub line: u32,
    /// 1-based column of the `Ordering::X` token.
    pub col: u32,
}

/// The acquisitions and outgoing calls of one function.
#[derive(Clone, Debug, Default)]
pub struct FnFacts {
    /// The function's name (call-graph node key).
    pub name: String,
    /// Lock acquisitions in source order.
    pub acquisitions: Vec<LockSite>,
    /// Outgoing calls: `(callee name, token index)`.
    pub calls: Vec<(String, usize)>,
}

/// Concurrency facts extracted from one file.
#[derive(Clone, Debug, Default)]
pub struct FileFacts {
    /// Workspace-relative path.
    pub path: String,
    /// Per-function lock/call facts.
    pub fns: Vec<FnFacts>,
    /// Atomic operation sites.
    pub atomics: Vec<AtomicSite>,
}

const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Extracts the concurrency facts of one file. Only library non-test
/// code contributes; other files yield empty facts.
pub fn extract(
    path: &str,
    class: FileClass,
    tokens: &[Token],
    scopes: &Scopes,
    parsed: &ParseFile,
) -> FileFacts {
    if !class.is_library {
        return FileFacts {
            path: path.to_owned(),
            ..Default::default()
        };
    }
    // Body ranges of named fns, innermost-attribution: a token belongs to
    // the smallest enclosing body. Lock-primitive bodies are excluded
    // wholesale.
    struct FnRange {
        name: String,
        open: usize,
        end: usize,
        primitive: bool,
    }
    let mut ranges: Vec<FnRange> = Vec::new();
    for (item, name, _, body) in parsed.fns() {
        let Some(open) = body else { continue };
        ranges.push(FnRange {
            name: name.to_owned(),
            open,
            end: item.end,
            primitive: LOCK_PRIMITIVES.contains(&name),
        });
    }
    let innermost = |idx: usize| -> Option<usize> {
        ranges
            .iter()
            .enumerate()
            .filter(|(_, r)| r.open < idx && idx < r.end)
            .min_by_key(|(_, r)| r.end - r.open)
            .map(|(i, _)| i)
    };

    let mut fns: Vec<FnFacts> = ranges
        .iter()
        .map(|r| FnFacts {
            name: r.name.clone(),
            ..Default::default()
        })
        .collect();
    let mut atomics = Vec::new();

    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || scopes.in_test(i) {
            continue;
        }
        let owner = innermost(i);
        let in_primitive = owner.map(|o| ranges[o].primitive).unwrap_or(false);
        let next_is_paren = tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if !next_is_paren {
            continue;
        }
        let after_dot = i > 0 && tokens[i - 1].is_punct('.');

        // `.lock()` with no arguments: a std Mutex/RwLock-style acquire.
        if t.text == "lock" && after_dot && !in_primitive {
            let close = matching(tokens, i + 1, '(', ')') - 1;
            if close == i + 2 {
                if let Some(identity) = receiver_identity(tokens, i - 1) {
                    if let Some(o) = owner {
                        fns[o].acquisitions.push(LockSite {
                            identity,
                            pos: i,
                            line: t.line,
                            col: t.col,
                        });
                    }
                }
                continue;
            }
        }

        // A call to a lock primitive: identity from the first argument.
        if LOCK_PRIMITIVES.contains(&t.text.as_str()) && !in_primitive {
            let close = matching(tokens, i + 1, '(', ')') - 1;
            if let Some(identity) = argument_identity(tokens, i + 2, close) {
                if let Some(o) = owner {
                    fns[o].acquisitions.push(LockSite {
                        identity,
                        pos: i,
                        line: t.line,
                        col: t.col,
                    });
                }
            }
            continue;
        }

        // Atomic operations: `.method(…, Ordering::X, …)`.
        if after_dot && ATOMIC_METHODS.contains(&t.text.as_str()) {
            let close = matching(tokens, i + 1, '(', ')') - 1;
            let ordering = (i + 2..close).find_map(|j| {
                let ord = tokens[j].kind == TokenKind::Ident
                    && j >= 3
                    && tokens[j - 1].is_punct(':')
                    && tokens[j - 2].is_punct(':')
                    && tokens[j - 3].is_ident("Ordering");
                ord.then(|| tokens[j].clone())
            });
            if let (Some(ord), Some(identity)) = (ordering, receiver_identity(tokens, i - 1)) {
                let kind = match t.text.as_str() {
                    "load" => AtomicKind::Load,
                    "store" => AtomicKind::Store,
                    _ => AtomicKind::Rmw,
                };
                atomics.push(AtomicSite {
                    identity,
                    kind,
                    ordering: ord.text.clone(),
                    line: ord.line,
                    col: ord.col,
                });
            }
        }
    }

    // Call sites, attributed innermost, primitives excluded (their call
    // is an acquisition, recorded above).
    for call in call_sites(tokens, 0, tokens.len()) {
        if LOCK_PRIMITIVES.contains(&call.callee.as_str()) || scopes.in_test(call.pos) {
            continue;
        }
        if let Some(o) = innermost(call.pos) {
            if !ranges[o].primitive {
                fns[o].calls.push((call.callee, call.pos));
            }
        }
    }

    FileFacts {
        path: path.to_owned(),
        fns,
        atomics,
    }
}

/// The final path segment of the receiver ending at the `.` at `dot_idx`:
/// walks left over trailing `(...)`/`[...]` groups and returns the first
/// identifier (`self.shards[i].lock()` → `shards`).
fn receiver_identity(tokens: &[Token], dot_idx: usize) -> Option<String> {
    let mut j = dot_idx;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_punct(')') || t.is_punct(']') {
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 0usize;
            loop {
                let u = &tokens[j];
                if u.is_punct(close) {
                    depth += 1;
                } else if u.is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            continue;
        }
        if t.kind == TokenKind::Ident {
            if matches!(t.text.as_str(), "self" | "Self") {
                return None;
            }
            return Some(t.text.clone());
        }
        return None;
    }
    None
}

/// The final path segment of a primitive's first argument: the last
/// identifier of the first top-level-comma-delimited argument
/// (`lock_recover(&self.state.pending)` → `pending`).
fn argument_identity(tokens: &[Token], start: usize, end: usize) -> Option<String> {
    let mut depth = 0usize;
    let mut last = None;
    for t in tokens.iter().take(end.min(tokens.len())).skip(start) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct(',') && depth == 0 {
            break;
        } else if depth == 0
            && t.kind == TokenKind::Ident
            && !matches!(t.text.as_str(), "mut" | "self" | "Self" | "ref")
        {
            last = Some(t.text.clone());
        }
    }
    last
}

/// One ordering edge `from → to` with its witness path.
#[derive(Clone, Debug)]
struct Edge {
    witness: Vec<TraceStep>,
}

/// Runs the `lock-order` rule over the merged workspace facts.
pub fn lock_order(files: &[FileFacts]) -> Vec<Finding> {
    // fns by name for the one-hop expansion.
    let mut by_name: BTreeMap<&str, Vec<(&str, &FnFacts)>> = BTreeMap::new();
    for file in files {
        for f in &file.fns {
            by_name.entry(&f.name).or_default().push((&file.path, f));
        }
    }

    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    let mut add_edge = |from: &LockSite, to_id: &str, witness: Vec<TraceStep>| {
        edges
            .entry((from.identity.clone(), to_id.to_owned()))
            .or_insert(Edge { witness });
    };

    for file in files {
        for f in &file.fns {
            // Intra-function ordering: A acquired, then B while A held.
            for (i, a) in f.acquisitions.iter().enumerate() {
                for b in &f.acquisitions[i + 1..] {
                    if a.identity == b.identity {
                        continue;
                    }
                    add_edge(
                        a,
                        &b.identity,
                        vec![
                            trace(
                                &file.path,
                                a,
                                format!("`{}` acquires `{}`", f.name, a.identity),
                            ),
                            trace(
                                &file.path,
                                b,
                                format!(
                                    "`{}` then acquires `{}` while holding `{}`",
                                    f.name, b.identity, a.identity
                                ),
                            ),
                        ],
                    );
                }
            }
            // One call-graph hop: A acquired, then a call to g which
            // acquires B.
            for (callee, call_pos) in &f.calls {
                let Some(targets) = by_name.get(callee.as_str()) else {
                    continue;
                };
                for a in &f.acquisitions {
                    if a.pos >= *call_pos {
                        continue;
                    }
                    for (callee_path, g) in targets {
                        for b in &g.acquisitions {
                            if a.identity == b.identity {
                                continue;
                            }
                            add_edge(
                                a,
                                &b.identity,
                                vec![
                                    trace(
                                        &file.path,
                                        a,
                                        format!("`{}` acquires `{}`", f.name, a.identity),
                                    ),
                                    TraceStep {
                                        file: file.path.clone(),
                                        line: a.line,
                                        col: a.col,
                                        note: format!(
                                            "`{}` calls `{}` while holding `{}`",
                                            f.name, callee, a.identity
                                        ),
                                    },
                                    trace(
                                        callee_path,
                                        b,
                                        format!("`{}` acquires `{}`", g.name, b.identity),
                                    ),
                                ],
                            );
                        }
                    }
                }
            }
        }
    }

    // Cycle detection: for each node (in order), BFS for the shortest
    // path back to itself; report the cycle once, anchored at its
    // lexicographically smallest member.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().insert(to);
    }
    let mut findings = Vec::new();
    for start in adj.keys().copied().collect::<Vec<_>>() {
        let Some(cycle) = shortest_cycle(&adj, start) else {
            continue;
        };
        if cycle.iter().any(|n| *n < start) {
            continue; // reported anchored at the smaller node
        }
        let mut message = format!("potential deadlock: lock-order cycle `{}`", cycle[0]);
        for n in &cycle[1..] {
            message.push_str(&format!(" -> `{n}`"));
        }
        message.push_str(&format!(" -> `{}`", cycle[0]));
        let mut steps = Vec::new();
        for w in 0..cycle.len() {
            let from = cycle[w];
            let to = cycle[(w + 1) % cycle.len()];
            if let Some(edge) = edges.get(&(from.to_owned(), to.to_owned())) {
                message.push_str(&format!(
                    "; witness {}: {}",
                    w + 1,
                    witness_summary(&edge.witness)
                ));
                steps.extend(edge.witness.iter().cloned());
            }
        }
        let head = steps.first().cloned();
        findings.push(Finding {
            file: head.as_ref().map(|s| s.file.clone()).unwrap_or_default(),
            line: head.as_ref().map(|s| s.line).unwrap_or(1),
            col: head.as_ref().map(|s| s.col).unwrap_or(1),
            rule: LOCK_ORDER,
            message,
            trace: steps,
        });
    }
    findings
}

fn trace(file: &str, site: &LockSite, note: String) -> TraceStep {
    TraceStep {
        file: file.to_owned(),
        line: site.line,
        col: site.col,
        note,
    }
}

fn witness_summary(witness: &[TraceStep]) -> String {
    witness
        .iter()
        .map(|s| format!("{} ({}:{})", s.note, s.file, s.line))
        .collect::<Vec<_>>()
        .join(", then ")
}

/// Shortest cycle through `start` (BFS over successors), as the node
/// sequence starting at `start`, or `None` when start is acyclic.
fn shortest_cycle<'a>(
    adj: &BTreeMap<&'a str, BTreeSet<&'a str>>,
    start: &'a str,
) -> Option<Vec<&'a str>> {
    let mut prev: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    while let Some(node) = queue.pop_front() {
        for succ in adj.get(node).into_iter().flatten() {
            if *succ == start {
                // Reconstruct start → … → node, then the closing edge.
                let mut path = vec![node];
                let mut cur = node;
                while cur != start {
                    cur = prev[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if !prev.contains_key(succ) && *succ != start {
                prev.insert(succ, node);
                queue.push_back(succ);
            }
        }
    }
    None
}

/// Runs the `atomic-pairing` rule over the merged workspace facts.
pub fn atomic_pairing(files: &[FileFacts]) -> Vec<Finding> {
    let all: Vec<(&str, &AtomicSite)> = files
        .iter()
        .flat_map(|f| f.atomics.iter().map(move |s| (f.path.as_str(), s)))
        .collect();
    let has_partner = |identity: &str, want_kind: &[AtomicKind], want_ord: &[&str]| {
        all.iter().any(|(_, s)| {
            s.identity == identity
                && want_kind.contains(&s.kind)
                && want_ord.contains(&s.ordering.as_str())
        })
    };
    let mut findings = Vec::new();
    for (path, site) in &all {
        let problem = match site.ordering.as_str() {
            "Relaxed" => Some(format!(
                "`Ordering::Relaxed` on `{}`: unordered atomic access needs a reasoned \
                 suppression stating why no cross-thread ordering is required",
                site.identity
            )),
            "Release" => (!has_partner(
                &site.identity,
                &[AtomicKind::Load, AtomicKind::Rmw],
                &["Acquire", "AcqRel", "SeqCst"],
            ))
            .then(|| {
                format!(
                    "`Ordering::Release` write to `{}` has no matching Acquire/SeqCst read of \
                     `{}` anywhere in the workspace; nothing can synchronize with this write",
                    site.identity, site.identity
                )
            }),
            "Acquire" => (!has_partner(
                &site.identity,
                &[AtomicKind::Store, AtomicKind::Rmw],
                &["Release", "AcqRel", "SeqCst"],
            ))
            .then(|| {
                format!(
                    "`Ordering::Acquire` read of `{}` has no matching Release/SeqCst write to \
                     `{}` anywhere in the workspace; this read synchronizes with nothing",
                    site.identity, site.identity
                )
            }),
            // AcqRel RMWs pair with each other; SeqCst is always paired.
            _ => None,
        };
        if let Some(message) = problem {
            findings.push(Finding {
                file: (*path).to_owned(),
                line: site.line,
                col: site.col,
                rule: ATOMIC_PAIRING,
                message,
                trace: vec![TraceStep {
                    file: (*path).to_owned(),
                    line: site.line,
                    col: site.col,
                    note: format!(
                        "atomic {:?} of `{}` with Ordering::{}",
                        site.kind, site.identity, site.ordering
                    ),
                }],
            });
        }
    }
    findings.sort();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parse::parse;
    use crate::scope::{classify, Scopes};

    fn facts(path: &str, src: &str) -> FileFacts {
        let lexed = lex(src);
        let scopes = Scopes::compute(&lexed.tokens);
        let parsed = parse(&lexed.tokens);
        extract(path, classify(path), &lexed.tokens, &scopes, &parsed)
    }

    const LIB: &str = "crates/demo/src/lib.rs";

    #[test]
    fn method_lock_identity_is_final_segment() {
        let f = facts(LIB, "fn f(&self) { let g = self.state.pool.lock(); }");
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].acquisitions.len(), 1);
        assert_eq!(f.fns[0].acquisitions[0].identity, "pool");
    }

    #[test]
    fn subscripted_receiver_drops_the_index() {
        let f = facts(
            LIB,
            "fn f(&self, i: usize) { let g = self.shards[i].lock(); }",
        );
        assert_eq!(f.fns[0].acquisitions[0].identity, "shards");
    }

    #[test]
    fn primitive_call_takes_argument_identity() {
        let f = facts(
            LIB,
            "fn f(&self) { let a = lock_recover(&self.state.pending); let b = lock_shard(shard); }",
        );
        let ids: Vec<_> = f.fns[0]
            .acquisitions
            .iter()
            .map(|a| a.identity.clone())
            .collect();
        assert_eq!(ids, vec!["pending", "shard"]);
    }

    #[test]
    fn primitive_bodies_are_skipped() {
        let f = facts(
            LIB,
            "fn lock_recover(mutex: &Mutex<u32>) -> Guard { mutex.lock().unwrap_or_else(p) }",
        );
        assert!(f.fns.iter().all(|g| g.acquisitions.is_empty()), "{f:?}");
    }

    #[test]
    fn test_code_contributes_no_facts() {
        let f = facts(
            LIB,
            "#[cfg(test)] mod tests { fn f(&self) { let g = self.a.lock(); } }",
        );
        assert!(f.fns.iter().all(|g| g.acquisitions.is_empty()));
    }

    #[test]
    fn two_fn_cycle_is_reported_with_both_witnesses() {
        let a = facts(
            LIB,
            "fn forward(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }",
        );
        let b = facts(
            "crates/demo/src/other.rs",
            "fn backward(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); }",
        );
        let findings = lock_order(&[a, b]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        let f = &findings[0];
        assert_eq!(f.rule, LOCK_ORDER);
        assert!(
            f.message.contains("witness 1") && f.message.contains("witness 2"),
            "{}",
            f.message
        );
        assert!(f.trace.len() >= 4, "{:?}", f.trace);
    }

    #[test]
    fn call_graph_hop_builds_edges() {
        let a = facts(
            LIB,
            "fn outer(&self) { let g = self.alpha.lock(); helper(self); }\n\
             fn helper(&self) { let g = self.beta.lock(); }\n\
             fn reverse(&self) { let g = self.beta.lock(); let h = self.alpha.lock(); }",
        );
        let findings = lock_order(&[a]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("`alpha` -> `beta` -> `alpha`")
                || findings[0].message.contains("`beta` -> `alpha` -> `beta`")
        );
    }

    #[test]
    fn same_identity_nesting_is_not_a_cycle() {
        let a = facts(
            LIB,
            "fn f(&self, i: usize, j: usize) { let g = self.shards[i].lock(); let h = self.shards[j].lock(); }",
        );
        assert!(lock_order(&[a]).is_empty());
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = facts(
            LIB,
            "fn f(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }\n\
             fn g(&self) { let g = self.alpha.lock(); let h = self.beta.lock(); }",
        );
        assert!(lock_order(&[a]).is_empty());
    }

    #[test]
    fn unpaired_release_and_acquire_are_reported() {
        let f = facts(
            LIB,
            "fn f(&self) { self.gen.store(1, Ordering::Release); self.other.load(Ordering::Acquire); }",
        );
        let findings = atomic_pairing(&[f]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("no matching"));
    }

    #[test]
    fn release_acquire_pair_across_files_is_clean() {
        let a = facts(LIB, "fn w(&self) { self.gen.store(1, Ordering::Release); }");
        let b = facts(
            "crates/demo/src/reader.rs",
            "fn r(&self) -> u64 { self.gen.load(Ordering::Acquire) }",
        );
        assert!(atomic_pairing(&[a, b]).is_empty());
    }

    #[test]
    fn seqcst_partner_satisfies_release() {
        let a = facts(
            LIB,
            "fn w(&self) { self.gen.store(1, Ordering::Release); }\n\
             fn r(&self) -> u64 { self.gen.load(Ordering::SeqCst) }",
        );
        assert!(atomic_pairing(&[a]).is_empty());
    }

    #[test]
    fn relaxed_always_requires_suppression() {
        let f = facts(
            LIB,
            "fn f(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }",
        );
        let findings = atomic_pairing(&[f]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("reasoned suppression"));
        assert_eq!(findings[0].rule, ATOMIC_PAIRING);
    }

    #[test]
    fn seqcst_alone_is_clean() {
        let f = facts(
            LIB,
            "fn f(&self) { self.n.fetch_add(1, Ordering::SeqCst); }",
        );
        assert!(atomic_pairing(&[f]).is_empty());
    }
}
