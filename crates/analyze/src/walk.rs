//! Workspace file discovery.
//!
//! The analyzer covers the workspace's own sources: `crates/`, `src/`,
//! `tests/`, and `examples/` under the root. `vendor/` is out of scope
//! (stand-in code for external crates), `target/` is build output, and
//! any directory named `fixtures` holds deliberately-violating analyzer
//! test corpora.
//!
//! Two hardening guarantees:
//!
//! * **symlink cycles terminate**: directories are tracked by
//!   canonicalized path and each real directory is visited once, so a
//!   symlink loop (`a/loop -> a`) cannot recurse forever or scan a file
//!   twice under different names;
//! * **non-UTF-8 names are skipped explicitly**: a file name that is not
//!   valid UTF-8 cannot be reported in diagnostics faithfully, so it is
//!   excluded from the scan rather than lossy-converted into a path that
//!   does not exist.

use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory roots scanned relative to the workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Directory names skipped wherever they appear.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Collects every `.rs` file under the scan roots, returning
/// `(workspace-relative path with forward slashes, absolute path)` pairs
/// in sorted order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let mut visited = HashSet::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect(&dir, scan_root, &mut files, &mut visited)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(
    dir: &Path,
    rel: &str,
    files: &mut Vec<(String, PathBuf)>,
    visited: &mut HashSet<PathBuf>,
) -> io::Result<()> {
    // Symlink-cycle guard: canonicalize and visit each real directory
    // once. A dir that fails to canonicalize (dangling symlink, raced
    // removal) is skipped rather than recursed into.
    let Ok(real) = fs::canonicalize(dir) else {
        return Ok(());
    };
    if !visited.insert(real) {
        return Ok(());
    }
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue; // non-UTF-8 name: cannot be reported faithfully
        };
        if name.starts_with('.') {
            continue;
        }
        let path = entry.path();
        let rel_child = format!("{rel}/{name}");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            collect(&path, &rel_child, files, visited)?;
        } else if name.ends_with(".rs") {
            files.push((rel_child, path));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("rlc-analyze-walk-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.join("crates/demo/src")).expect("mkdir");
        fs::write(dir.join("crates/demo/src/lib.rs"), "fn x() {}\n").expect("write");
        dir
    }

    #[test]
    #[cfg(unix)]
    fn symlink_cycle_terminates_and_scans_once() {
        let dir = temp_dir("cycle");
        // crates/demo/loop -> crates/demo: a directory cycle.
        std::os::unix::fs::symlink(dir.join("crates/demo"), dir.join("crates/demo/loop"))
            .expect("symlink");
        let files = workspace_files(&dir).expect("walk");
        let names: Vec<&str> = files.iter().map(|(rel, _)| rel.as_str()).collect();
        assert_eq!(names, vec!["crates/demo/src/lib.rs"], "{names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg(unix)]
    fn non_utf8_names_are_skipped() {
        use std::ffi::OsStr;
        use std::os::unix::ffi::OsStrExt;
        let dir = temp_dir("nonutf8");
        let bad = dir
            .join("crates/demo/src")
            .join(OsStr::from_bytes(b"bad\xffname.rs"));
        fs::write(&bad, "fn y() {}\n").expect("write non-utf8");
        let files = workspace_files(&dir).expect("walk");
        let names: Vec<&str> = files.iter().map(|(rel, _)| rel.as_str()).collect();
        assert_eq!(names, vec!["crates/demo/src/lib.rs"], "{names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    #[cfg(unix)]
    fn dangling_symlink_is_skipped() {
        let dir = temp_dir("dangling");
        std::os::unix::fs::symlink(dir.join("no-such-dir"), dir.join("crates/gone"))
            .expect("symlink");
        let files = workspace_files(&dir).expect("walk");
        assert_eq!(files.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
