//! Workspace file discovery.
//!
//! The analyzer covers the workspace's own sources: `crates/`, `src/`,
//! `tests/`, and `examples/` under the root. `vendor/` is out of scope
//! (stand-in code for external crates), `target/` is build output, and
//! any directory named `fixtures` holds deliberately-violating analyzer
//! test corpora.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory roots scanned relative to the workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Directory names skipped wherever they appear.
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Collects every `.rs` file under the scan roots, returning
/// `(workspace-relative path with forward slashes, absolute path)` pairs
/// in sorted order.
pub fn workspace_files(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect(&dir, scan_root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect(dir: &Path, rel: &str, files: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') {
            continue;
        }
        let path = entry.path();
        let rel_child = format!("{rel}/{name}");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            collect(&path, &rel_child, files)?;
        } else if name.ends_with(".rs") {
            files.push((rel_child, path));
        }
    }
    Ok(())
}
