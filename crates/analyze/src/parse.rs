//! Layer 2 of the pipeline: a token-tree parser over the lexer.
//!
//! The lexer (layer 1) produces a flat, position-stamped token stream;
//! this module gives it *structure* without ever failing:
//!
//! * a **token tree** — `{}`/`()`/`[]` nesting as a forest of groups over
//!   token indexes, total on malformed input (an unmatched closer stays a
//!   leaf, an unmatched opener's group runs to end of file), and
//!   round-trippable: flattening the tree re-serializes the exact token
//!   stream the lexer produced;
//! * **item extraction** — `fn` items (with parsed parameter lists and
//!   body spans), `impl` blocks, and `mod` blocks, each with token-index
//!   spans;
//! * **statement segmentation** — the direct children of a `{}` group cut
//!   into statement spans at top-level `;` and after statement-ending
//!   `{}` groups (`if`/`match`/`loop` bodies), which the dataflow engine
//!   walks in source order;
//! * a **call-graph approximation** — every `name(...)` / `.name(...)`
//!   call site inside a function body, by callee name only (one level,
//!   intra-workspace; generic instantiations and trait dispatch are
//!   approximated by name identity).
//!
//! Generics are *not* delimiters here: `Vec<Vec<u64>>` lexes as plain
//! punctuation (`<`, `<`, `>`, `>`), so shift-vs-generics ambiguity
//! cannot unbalance the tree. Where the parser must skip a generic
//! parameter list (between a function's name and its parameter parens) it
//! counts angle brackets locally instead.

use crate::lexer::{Token, TokenKind};

/// One node of the token tree: a plain token or a delimited group.
#[derive(Debug)]
pub enum TokenTree {
    /// A single non-delimiter token (index into the lexed token stream).
    Leaf(usize),
    /// A `{}`/`()`/`[]` group.
    Group(Group),
}

/// A delimited group of the token tree.
#[derive(Debug)]
pub struct Group {
    /// The opening delimiter: `{`, `(`, or `[`.
    pub delim: char,
    /// Token index of the opening delimiter.
    pub open: usize,
    /// Token index of the closing delimiter, or `None` when the group is
    /// unterminated (runs to end of file).
    pub close: Option<usize>,
    /// Child nodes between the delimiters, in source order.
    pub children: Vec<TokenTree>,
}

fn closer_for(open: char) -> char {
    match open {
        '{' => '}',
        '(' => ')',
        _ => ']',
    }
}

/// Builds the token-tree forest for a token stream.
///
/// Total on malformed input: a closing delimiter with no matching opener
/// becomes a [`TokenTree::Leaf`]; an opener with no closer produces a
/// [`Group`] with `close: None` holding everything to end of file.
pub fn build_forest(tokens: &[Token]) -> Vec<TokenTree> {
    // Stack of (group-in-progress); the bottom pseudo-level collects the
    // forest roots.
    let mut stack: Vec<Group> = vec![Group {
        delim: ' ',
        open: usize::MAX,
        close: None,
        children: Vec::new(),
    }];
    for (i, token) in tokens.iter().enumerate() {
        let ch = if token.kind == TokenKind::Punct {
            token.text.chars().next().unwrap_or(' ')
        } else {
            ' '
        };
        match ch {
            '{' | '(' | '[' => stack.push(Group {
                delim: ch,
                open: i,
                close: None,
                children: Vec::new(),
            }),
            '}' | ')' | ']' => {
                let matches_top = stack
                    .last()
                    .map(|g| closer_for(g.delim) == ch)
                    .unwrap_or(false);
                if matches_top && stack.len() > 1 {
                    let mut group = match stack.pop() {
                        Some(group) => group,
                        None => continue, // unreachable: len > 1 checked
                    };
                    group.close = Some(i);
                    push_child(&mut stack, TokenTree::Group(group));
                } else {
                    // Unmatched closer: keep it as a leaf so the
                    // round-trip stays exact.
                    push_child(&mut stack, TokenTree::Leaf(i));
                }
            }
            _ => push_child(&mut stack, TokenTree::Leaf(i)),
        }
    }
    // Unterminated groups: fold them into their parents, closeless.
    while stack.len() > 1 {
        let group = match stack.pop() {
            Some(group) => group,
            None => break, // unreachable: len > 1 checked
        };
        push_child(&mut stack, TokenTree::Group(group));
    }
    stack.pop().map(|g| g.children).unwrap_or_default()
}

fn push_child(stack: &mut [Group], child: TokenTree) {
    if let Some(top) = stack.last_mut() {
        top.children.push(child);
    }
}

/// Flattens a forest back into token indexes, in source order.
///
/// For any forest built by [`build_forest`] this re-serializes the exact
/// token stream: `flatten(&build_forest(&t)) == [0, 1, …, t.len() - 1]`.
pub fn flatten(forest: &[TokenTree]) -> Vec<usize> {
    let mut out = Vec::new();
    flatten_into(forest, &mut out);
    out
}

fn flatten_into(forest: &[TokenTree], out: &mut Vec<usize>) {
    for node in forest {
        match node {
            TokenTree::Leaf(i) => out.push(*i),
            TokenTree::Group(g) => {
                out.push(g.open);
                flatten_into(&g.children, out);
                if let Some(close) = g.close {
                    out.push(close);
                }
            }
        }
    }
}

/// A parsed function parameter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Param {
    /// The binding name (first non-`mut`/`ref` identifier of the pattern).
    pub name: String,
    /// Token index of the name.
    pub name_idx: usize,
    /// True when the declared type contains a `[u8]` slice (`&[u8]`,
    /// `&mut &[u8]`, …) — the shape of every untrusted decode input.
    pub is_byte_slice: bool,
}

/// What kind of item a span describes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ItemKind {
    /// A named `fn` item with its parameter list.
    Fn {
        /// The function name.
        name: String,
        /// Parsed parameters, in declaration order.
        params: Vec<Param>,
        /// Token index of the body's `{` (None for bodiless trait fns).
        body_open: Option<usize>,
    },
    /// An `impl` block (`name` is the implemented type's head identifier).
    Impl {
        /// Head identifier of the self type (e.g. `RlcIndex`).
        name: String,
    },
    /// A `mod` block or declaration.
    Mod {
        /// The module name.
        name: String,
    },
}

/// One extracted item with its token span.
#[derive(Clone, Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// Token index of the introducing keyword (`fn`/`impl`/`mod`).
    pub start: usize,
    /// One past the token index of the item's closing brace (or `;`).
    pub end: usize,
}

/// A parsed file: the token tree plus extracted items.
#[derive(Debug, Default)]
pub struct ParseFile {
    /// The token-tree forest.
    pub forest: Vec<TokenTree>,
    /// All `fn`/`impl`/`mod` items, in source order (nested items appear
    /// after their parents).
    pub items: Vec<Item>,
}

/// Function items only, in source order.
impl ParseFile {
    /// Iterates the `fn` items of the file.
    pub fn fns(&self) -> impl Iterator<Item = (&Item, &str, &[Param], Option<usize>)> {
        self.items.iter().filter_map(|item| match &item.kind {
            ItemKind::Fn {
                name,
                params,
                body_open,
            } => Some((item, name.as_str(), params.as_slice(), *body_open)),
            _ => None,
        })
    }
}

/// Parses a token stream into its tree and item structure.
pub fn parse(tokens: &[Token]) -> ParseFile {
    let forest = build_forest(tokens);
    let mut items = Vec::new();
    extract_items(tokens, &mut items);
    ParseFile { forest, items }
}

/// Skips a generic parameter list starting at `<` (returns the index one
/// past the matching `>`). `>>` lexes as two `>` tokens, so plain angle
/// counting is exact; `(`/`)` inside bounds (e.g. `Fn(u32) -> u32`) do
/// not disturb the count because `->`'s `>` is always preceded by `-`,
/// which we detect by column adjacency.
fn skip_generics(tokens: &[Token], start: usize) -> usize {
    let mut depth = 0isize;
    let mut i = start;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') && !glued_to_prev(tokens, i, '-') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

/// True when token `i` is glued (no whitespace) to a previous token whose
/// text is `prev` — used to tell `->` / `=>` / `>=` apart from bare `>`
/// and `=`, which the lexer emits as single punctuation characters.
pub fn glued_to_prev(tokens: &[Token], i: usize, prev: char) -> bool {
    if i == 0 {
        return false;
    }
    let p = &tokens[i - 1];
    let t = &tokens[i];
    p.kind == TokenKind::Punct
        && p.text.len() == prev.len_utf8()
        && p.text.starts_with(prev)
        && p.line == t.line
        && p.col + 1 == t.col
}

/// True when the token after `i` is glued (no whitespace) to token `i`
/// and is the punctuation `next` — `i` must be a single-char punct.
pub fn glued_to_next(tokens: &[Token], i: usize, next: char) -> bool {
    match tokens.get(i + 1) {
        Some(n) => n.is_punct(next) && n.line == tokens[i].line && n.col == tokens[i].col + 1,
        None => false,
    }
}

/// Index one past the token that closes the delimiter opened at `open`.
/// Returns `tokens.len()` when unbalanced.
pub fn matching(tokens: &[Token], open: usize, open_ch: char, close_ch: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        if tokens[i].is_punct(open_ch) {
            depth += 1;
        } else if tokens[i].is_punct(close_ch) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    tokens.len()
}

fn extract_items(tokens: &[Token], items: &mut Vec<Item>) {
    let mut i = 0;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_ident("fn")
            && tokens
                .get(i + 1)
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false)
        {
            let (item, next) = parse_fn_item(tokens, i);
            items.push(item);
            // Continue *inside* the signature and body so nested items
            // (closures' inner fns, impls in fn bodies) are found too.
            i = next;
            continue;
        }
        if t.is_ident("impl") {
            if let Some((item, _)) = parse_braced_item(tokens, i, "impl") {
                items.push(item);
            }
            i += 1;
            continue;
        }
        if t.is_ident("mod")
            && tokens
                .get(i + 1)
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false)
        {
            if let Some((item, _)) = parse_braced_item(tokens, i, "mod") {
                items.push(item);
            }
            i += 1;
            continue;
        }
        i += 1;
    }
}

/// Parses a `fn` item starting at the `fn` keyword; returns the item and
/// the index to resume scanning from (just past the parameter list, so
/// nested items inside the body are still visited).
fn parse_fn_item(tokens: &[Token], fn_idx: usize) -> (Item, usize) {
    let name = tokens[fn_idx + 1].text.clone();
    let mut j = fn_idx + 2;
    if tokens.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
        j = skip_generics(tokens, j);
    }
    // Parameter list.
    let mut params = Vec::new();
    let mut after_params = j;
    if tokens.get(j).map(|t| t.is_punct('(')).unwrap_or(false) {
        let close = matching(tokens, j, '(', ')');
        params = parse_params(tokens, j + 1, close.saturating_sub(1));
        after_params = close;
    }
    // Scan past the return type / where clause for the body `{` or a
    // bodiless `;`, tracking paren/bracket depth so `[u8; 4]` defaults or
    // `Fn(A) -> B` bounds cannot end the item early.
    let mut depth = 0usize;
    let mut k = after_params;
    let mut body_open = None;
    let mut end = tokens.len();
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('{') && depth == 0 {
            body_open = Some(k);
            end = matching(tokens, k, '{', '}');
            break;
        } else if t.is_punct(';') && depth == 0 {
            end = k + 1;
            break;
        }
        k += 1;
    }
    (
        Item {
            kind: ItemKind::Fn {
                name,
                params,
                body_open,
            },
            start: fn_idx,
            end,
        },
        after_params.max(fn_idx + 2),
    )
}

/// Parses an `impl`/`mod` item: name is the first identifier after the
/// keyword (skipping generics for `impl<T>`), span runs to the matching
/// `}` of the first top-level `{` (or the `;` of `mod name;`).
fn parse_braced_item(tokens: &[Token], kw_idx: usize, kw: &str) -> Option<(Item, usize)> {
    let mut j = kw_idx + 1;
    if tokens.get(j).map(|t| t.is_punct('<')).unwrap_or(false) {
        j = skip_generics(tokens, j);
    }
    let name = tokens
        .iter()
        .skip(j)
        .take(24)
        .find(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "dyn")
        .map(|t| t.text.clone())
        .unwrap_or_default();
    let mut depth = 0usize;
    let mut k = j;
    while k < tokens.len() {
        let t = &tokens[k];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('{') && depth == 0 {
            let end = matching(tokens, k, '{', '}');
            let kind = if kw == "impl" {
                ItemKind::Impl { name }
            } else {
                ItemKind::Mod { name }
            };
            return Some((
                Item {
                    kind,
                    start: kw_idx,
                    end,
                },
                k,
            ));
        } else if t.is_punct(';') && depth == 0 {
            let kind = if kw == "impl" {
                ItemKind::Impl { name }
            } else {
                ItemKind::Mod { name }
            };
            return Some((
                Item {
                    kind,
                    start: kw_idx,
                    end: k + 1,
                },
                k,
            ));
        }
        k += 1;
    }
    None
}

/// Splits a parameter-list token range on top-level commas and parses
/// each parameter's binding name and byte-slice-ness.
fn parse_params(tokens: &[Token], start: usize, end: usize) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut param_start = start;
    let mut i = start;
    let end = end.min(tokens.len());
    while i <= end {
        let at_end = i == end;
        let is_sep = !at_end && tokens[i].is_punct(',') && depth == 0;
        if !at_end {
            let t = &tokens[i];
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                depth += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                depth = depth.saturating_sub(1);
            }
        }
        if is_sep || at_end {
            if let Some(param) = parse_one_param(tokens, param_start, i) {
                params.push(param);
            }
            param_start = i + 1;
        }
        if at_end {
            break;
        }
        i += 1;
    }
    params
}

fn parse_one_param(tokens: &[Token], start: usize, end: usize) -> Option<Param> {
    let range = &tokens[start..end.min(tokens.len())];
    if range.is_empty() {
        return None;
    }
    // Binding name: first identifier that is not a pattern keyword.
    let (offset, name_tok) = range.iter().enumerate().find(|(_, t)| {
        t.kind == TokenKind::Ident && !matches!(t.text.as_str(), "mut" | "ref" | "box")
    })?;
    // The type follows the top-level `:` (absent for `self` receivers).
    let colon = range.iter().enumerate().position(|(i, t)| {
        t.is_punct(':') && !glued_to_prev(range, i, ':') && !glued_to_next(range, i, ':')
    });
    let is_byte_slice = match colon {
        Some(c) => type_is_byte_slice(&range[c + 1..]),
        None => false,
    };
    Some(Param {
        name: name_tok.text.clone(),
        name_idx: start + offset,
        is_byte_slice,
    })
}

/// True when a type token sequence contains a `[u8]` slice.
fn type_is_byte_slice(ty: &[Token]) -> bool {
    ty.windows(3)
        .any(|w| w[0].is_punct('[') && w[1].is_ident("u8") && w[2].is_punct(']'))
}

/// A statement span inside a `{}` body: token indexes `start..end`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StmtSpan {
    /// Index of the statement's first token.
    pub start: usize,
    /// One past the statement's last token (includes a trailing `;`).
    pub end: usize,
    /// True when the statement begins with `let`.
    pub is_let: bool,
}

/// Segments the *direct* token range of a `{}` body (open/close exclusive)
/// into statements: a statement ends at a top-level `;`, or after a
/// top-level `{}` group that is not continued by `else`, an operator, or
/// method/field access (so `if c { … }` and `match x { … }` end
/// statements, while `let x = if c { 1 } else { 2 };` stays one).
pub fn statements(tokens: &[Token], open: usize, close: usize) -> Vec<StmtSpan> {
    let mut out = Vec::new();
    let close = close.min(tokens.len());
    let mut start = open + 1;
    let mut depth = 0usize;
    let mut i = start;
    while i < close {
        let t = &tokens[i];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if t.is_punct('{') && depth == 0 {
            // Skip the whole nested group, then decide whether the
            // statement ends here.
            let group_end = matching(tokens, i, '{', '}');
            let continues = tokens
                .get(group_end)
                .map(|next| {
                    next.is_ident("else")
                        || (next.kind == TokenKind::Punct
                            && !matches!(
                                next.text.chars().next().unwrap_or(' '),
                                '{' | '}' | '(' | '[' // a new statement can open with these
                            )
                            && !next.is_punct('#'))
                })
                .unwrap_or(false);
            if continues {
                i = group_end;
                continue;
            }
            push_stmt(tokens, &mut out, start, group_end);
            // A trailing `;` after a block (`let x = … };` handled above;
            // bare `};` folds into the span) — consume it if present.
            start = group_end;
            i = group_end;
            continue;
        } else if t.is_punct('{') {
            // Inside parens/brackets: delimiter-matched, not a statement
            // boundary.
            let group_end = matching(tokens, i, '{', '}');
            i = group_end;
            continue;
        } else if t.is_punct(';') && depth == 0 {
            push_stmt(tokens, &mut out, start, i + 1);
            start = i + 1;
        }
        i += 1;
    }
    push_stmt(tokens, &mut out, start, close);
    out
}

fn push_stmt(tokens: &[Token], out: &mut Vec<StmtSpan>, start: usize, end: usize) {
    if start >= end {
        return;
    }
    let is_let = tokens
        .get(start)
        .map(|t| t.is_ident("let"))
        .unwrap_or(false);
    out.push(StmtSpan { start, end, is_let });
}

/// Keywords that look like calls when followed by `(` but are not.
const NOT_CALLEES: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "as", "move", "let", "else",
    "unsafe", "impl", "where", "pub", "use", "mod", "crate", "super", "self", "Self", "dyn",
    "break", "continue", "ref", "mut", "await",
];

/// One call site: the callee's bare name and its token index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// The callee name (last path segment; method name for `.name(...)`).
    pub callee: String,
    /// Token index of the callee name.
    pub pos: usize,
}

/// Extracts call sites by callee name within `start..end`: `name(...)`,
/// `path::name(...)`, and `.name(...)`. Macro invocations (`name!(...)`)
/// and definitions (`fn name(...)`) are excluded.
pub fn call_sites(tokens: &[Token], start: usize, end: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let end = end.min(tokens.len());
    for i in start..end {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident || NOT_CALLEES.contains(&t.text.as_str()) {
            continue;
        }
        let next_is_paren = tokens.get(i + 1).map(|n| n.is_punct('(')).unwrap_or(false);
        if !next_is_paren {
            continue;
        }
        if i > 0 && (tokens[i - 1].is_ident("fn") || tokens[i - 1].is_punct('!')) {
            continue;
        }
        out.push(CallSite {
            callee: t.text.clone(),
            pos: i,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn roundtrips(src: &str) {
        let lexed = lex(src);
        let forest = build_forest(&lexed.tokens);
        let flat = flatten(&forest);
        let expect: Vec<usize> = (0..lexed.tokens.len()).collect();
        assert_eq!(flat, expect, "round-trip failed for {src:?}");
    }

    #[test]
    fn forest_round_trips_nested_delimiters() {
        roundtrips("fn f(a: [u8; 4]) -> Vec<Vec<u64>> { if x { y(z[0]) } else { w } }");
    }

    #[test]
    fn forest_round_trips_unbalanced_input() {
        roundtrips("fn f() { } } extra closer");
        roundtrips("fn f() { never closed (");
        roundtrips(") { ] ( [ }");
    }

    #[test]
    fn fn_item_with_params_and_body() {
        let lexed = lex("pub fn from_bytes(data: &[u8], n: usize) -> X { body() }");
        let parsed = parse(&lexed.tokens);
        let (item, name, params, body) = parsed.fns().next().expect("one fn");
        assert_eq!(name, "from_bytes");
        assert!(body.is_some());
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name, "data");
        assert!(params[0].is_byte_slice);
        assert_eq!(params[1].name, "n");
        assert!(!params[1].is_byte_slice);
        assert_eq!(item.end, lexed.tokens.len());
    }

    #[test]
    fn generic_fn_with_fn_bound_finds_real_params() {
        let lexed =
            lex("fn apply<F: Fn(u32) -> u32>(input: &[u8], f: F) -> u32 { f(input[0] as u32) }");
        let parsed = parse(&lexed.tokens);
        let (_, name, params, _) = parsed.fns().next().expect("one fn");
        assert_eq!(name, "apply");
        assert_eq!(params.len(), 2);
        assert_eq!(params[0].name, "input");
        assert!(params[0].is_byte_slice);
        assert_eq!(params[1].name, "f");
    }

    #[test]
    fn where_clause_does_not_truncate_the_body() {
        let src = "fn f<T>(x: T) -> usize where T: IntoIterator<Item = u8> { x.into_iter().count() } fn g() {}";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let names: Vec<_> = parsed.fns().map(|(_, n, _, _)| n.to_owned()).collect();
        assert_eq!(names, vec!["f", "g"]);
        let (item_f, _, _, body) = parsed.fns().next().expect("f");
        let open = body.expect("f has a body");
        assert!(lexed.tokens[open].is_punct('{'));
        assert!(lexed.tokens[item_f.end - 1].is_punct('}'));
    }

    #[test]
    fn impl_and_mod_items_are_extracted_with_spans() {
        let src = "impl<T> Foo<T> { fn m(&self) {} } mod bar { fn inner() {} } mod decl;";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let kinds: Vec<_> = parsed
            .items
            .iter()
            .map(|i| match &i.kind {
                ItemKind::Fn { name, .. } => format!("fn {name}"),
                ItemKind::Impl { name } => format!("impl {name}"),
                ItemKind::Mod { name } => format!("mod {name}"),
            })
            .collect();
        assert_eq!(
            kinds,
            vec!["impl Foo", "fn m", "mod bar", "fn inner", "mod decl"]
        );
    }

    #[test]
    fn statement_segmentation_cuts_at_semis_and_blocks() {
        let src = "fn f() { let a = 1; if c { g(); } let b = Foo { x: 1 }; match v { _ => 0 }; }";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let (_, _, _, body) = parsed.fns().next().expect("fn");
        let open = body.expect("body");
        let close = matching(&lexed.tokens, open, '{', '}') - 1;
        let stmts = statements(&lexed.tokens, open, close);
        let first_tokens: Vec<_> = stmts
            .iter()
            .map(|s| lexed.tokens[s.start].text.clone())
            .collect();
        assert_eq!(first_tokens, vec!["let", "if", "let", "match"]);
        assert!(stmts[0].is_let && !stmts[1].is_let);
    }

    #[test]
    fn if_else_chains_stay_one_statement() {
        let src = "fn f() { let x = if c { 1 } else { 2 }; done(); }";
        let lexed = lex(src);
        let parsed = parse(&lexed.tokens);
        let (_, _, _, body) = parsed.fns().next().expect("fn");
        let open = body.expect("body");
        let close = matching(&lexed.tokens, open, '{', '}') - 1;
        let stmts = statements(&lexed.tokens, open, close);
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].is_let);
    }

    #[test]
    fn call_sites_by_name_excluding_macros_and_keywords() {
        let src = "fn f() { g(); h.m(1); path::to::q(2); vec![0; 3]; if (a) { } panic!(\"x\"); }";
        let lexed = lex(src);
        let calls = call_sites(&lexed.tokens, 0, lexed.tokens.len());
        let names: Vec<_> = calls.iter().map(|c| c.callee.clone()).collect();
        assert_eq!(names, vec!["g", "m", "q"]);
    }

    #[test]
    fn unterminated_group_is_total_and_round_trips() {
        let src = "macro_rules! bad { (x) => { { unbalanced };";
        roundtrips(src);
        let lexed = lex(src);
        let forest = build_forest(&lexed.tokens);
        assert!(!forest.is_empty());
    }
}
