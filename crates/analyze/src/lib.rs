//! # rlc-analyze
//!
//! Workspace-aware static analysis enforcing the repo's safety
//! invariants. Six PRs of hardening discipline — `unsafe` confined to
//! `crates/core/src/kernel.rs`, panic-free library surfaces,
//! division-form bound checks on every untrusted length, atomics with
//! documented orderings, a closed deprecation cycle — were enforced by
//! grep gates and reviewer memory; this crate turns them into checked
//! tooling.
//!
//! The analyzer is a hand-rolled Rust lexer (comments, nested block
//! comments, string/char/raw-string literals, lifetimes — so a banned
//! construct in documentation is *not* a violation) feeding a small rule
//! engine that walks every `.rs` file under `crates/`, `src/`, `tests/`,
//! and `examples/` and emits `file:line:col` diagnostics with rule ids.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p rlc-analyze -- check --stats
//! cargo run -p rlc-analyze -- check --json
//! cargo run -p rlc-analyze -- rules
//! ```
//!
//! The rule catalog lives in [`rules::RULES`]; findings can be
//! acknowledged in place with `rlc-analyze: allow(<rule>) — <reason>`
//! suppression directives (see [`suppress`]), which are themselves
//! counted, reported, and flagged when stale.

#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analyze;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scope;
pub mod suppress;
pub mod walk;

use std::io;
use std::path::Path;

pub use analyze::{analyze_source, FileReport};
pub use report::{CheckOutcome, SuppressionRecord};
pub use rules::{Finding, RULES};

/// Analyzes every workspace source file under `root`.
///
/// I/O errors (unreadable file, missing root) surface as `Err`; rule
/// findings are data, not errors.
pub fn run_check(root: &Path) -> io::Result<CheckOutcome> {
    let files = walk::workspace_files(root)?;
    let mut outcome = CheckOutcome {
        files_scanned: files.len(),
        ..Default::default()
    };
    for (rel, abs) in files {
        let source = std::fs::read_to_string(&abs)?;
        let report = analyze_source(&rel, &source);
        outcome.findings.extend(report.findings);
        outcome
            .suppressions
            .extend(report.suppressions.into_iter().map(|s| SuppressionRecord {
                file: rel.clone(),
                line: s.line,
                rule: s.rule,
                reason: s.reason,
                used: s.used,
            }));
    }
    outcome.findings.sort();
    Ok(outcome)
}
